#include "analysis/symbols.h"

#include <set>

namespace zkt::analysis {

namespace {

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::punct && t.text == s;
}
bool is_ident(const Token& t) { return t.kind == Tok::ident; }
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == Tok::ident && t.text == s;
}

/// Keywords that can never start a declaration's type.
const std::set<std::string>& non_type_keywords() {
  static const std::set<std::string> kw = {
      "return",   "if",       "else",    "for",      "while",    "do",
      "switch",   "case",     "default", "break",    "continue", "goto",
      "delete",   "throw",    "new",     "using",    "typedef",  "namespace",
      "struct",   "class",    "enum",    "union",    "try",      "catch",
      "public",   "private",  "protected", "template", "sizeof", "operator",
      "co_return", "co_await", "co_yield", "friend",  "extern",  "export",
  };
  return kw;
}

bool is_decl_specifier(const Token& t) {
  return is_ident(t) &&
         (t.text == "static" || t.text == "constexpr" || t.text == "const" ||
          t.text == "thread_local" || t.text == "inline" ||
          t.text == "mutable" || t.text == "register" ||
          t.text == "volatile");
}

/// Skip a balanced `<...>` starting at `i` (pointing at '<'); returns the
/// index just past the matching '>', or `i` when it does not look like a
/// template argument list (bails on ';' and '{').
size_t skip_angles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "<")) ++depth;
    if (is_punct(t, ">")) {
      if (--depth == 0) return j + 1;
    }
    if (is_punct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
    if (is_punct(t, ";") || is_punct(t, "{")) break;
  }
  return i;
}

/// Parse one declaration starting at token `s` (a statement start). On
/// success appends the declared name(s) and returns the index just past the
/// statement's ';' (or the last token examined); returns `s` when the
/// tokens do not form a declaration.
size_t parse_decl(const std::vector<Token>& toks, size_t s, size_t limit,
                  std::vector<LocalDecl>* out) {
  size_t i = s;
  bool is_const = false;
  bool is_pointer = false;
  while (i < limit && is_decl_specifier(toks[i])) {
    if (toks[i].text == "const" || toks[i].text == "constexpr") {
      is_const = true;
    }
    ++i;
  }
  if (i >= limit || !is_ident(toks[i]) ||
      non_type_keywords().count(toks[i].text)) {
    return s;
  }

  // Structured binding: auto [a, b] = ...
  if (is_ident(toks[i], "auto")) {
    size_t j = i + 1;
    while (j < limit && (is_punct(toks[j], "&") || is_punct(toks[j], "&&"))) {
      ++j;
    }
    if (j < limit && is_punct(toks[j], "[")) {
      const size_t close = match_forward(toks, j);
      for (size_t k = j + 1; k < close && k < limit; ++k) {
        if (is_ident(toks[k])) {
          out->push_back(LocalDecl{toks[k].text, toks[k].line, k, is_const,
                                   false, false});
        }
      }
      return close < limit ? close : s;
    }
  }

  // Consume the type-and-name chain; the declared name is the last ident,
  // provided something type-ish precedes it and it is not `::`-qualified
  // (which would make this a qualified call, not a declaration).
  size_t idents = 0;
  size_t last_ident = 0;
  while (i < limit) {
    const Token& t = toks[i];
    if (is_ident(t)) {
      if (non_type_keywords().count(t.text)) return s;
      if (t.text == "const" || t.text == "constexpr") {
        is_const = true;
        ++i;
        continue;
      }
      ++idents;
      last_ident = i;
      ++i;
      continue;
    }
    if (is_punct(t, "::")) {
      ++i;
      continue;
    }
    if (is_punct(t, "<")) {
      const size_t past = skip_angles(toks, i);
      if (past == i) return s;
      i = past;
      continue;
    }
    if (is_punct(t, "*")) {
      is_pointer = true;
      ++i;
      continue;
    }
    if (is_punct(t, "&") || is_punct(t, "&&")) {
      ++i;
      continue;
    }
    break;
  }
  if (i >= limit || idents < 2 || last_ident + 1 != i) return s;
  if (last_ident > 0 && is_punct(toks[last_ident - 1], "::")) return s;
  const Token& after = toks[i];
  if (!(is_punct(after, "=") || is_punct(after, ";") ||
        is_punct(after, "(") || is_punct(after, "{") ||
        is_punct(after, "[") || is_punct(after, ",") ||
        is_punct(after, ":"))) {
    return s;
  }

  out->push_back(LocalDecl{toks[last_ident].text, toks[last_ident].line,
                           last_ident, is_const, is_pointer, false});

  // Further declarators of the same type: `int a = 1, b = 2;`.
  int depth = 0;
  for (size_t j = i; j < limit; ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) --depth;
    if (depth < 0 || is_punct(t, ";")) return j;
    if (depth == 0 && is_punct(t, ",") && j + 1 < limit &&
        is_ident(toks[j + 1]) && j + 2 < limit &&
        (is_punct(toks[j + 2], "=") || is_punct(toks[j + 2], ";") ||
         is_punct(toks[j + 2], ","))) {
      out->push_back(LocalDecl{toks[j + 1].text, toks[j + 1].line, j + 1,
                               is_const, is_pointer, false});
    }
  }
  return limit;
}

/// Parse the parameter list between `open` ('(') and its matching ')'.
void collect_params(const std::vector<Token>& toks, size_t open,
                    std::vector<LocalDecl>* out) {
  const size_t close = match_forward(toks, open);
  size_t seg_begin = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i <= close && i < toks.size(); ++i) {
    const Token& t = toks[i];
    const bool seg_end =
        i == close || (depth == 0 && is_punct(t, ","));
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") ||
        is_punct(t, "<")) {
      ++depth;
    }
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") ||
        is_punct(t, ">")) {
      --depth;
    }
    if (!seg_end) continue;
    // The parameter name is the last ident before '=' (default argument)
    // or the segment end; `void` / unnamed parameters yield nothing.
    size_t name = 0;
    bool has_name = false;
    bool is_const = false;
    bool is_pointer = false;
    for (size_t j = seg_begin; j < i; ++j) {
      if (is_punct(toks[j], "=")) break;
      if (is_ident(toks[j], "const")) is_const = true;
      if (is_punct(toks[j], "*")) is_pointer = true;
      if (is_ident(toks[j]) && toks[j].text != "const" &&
          toks[j].text != "void") {
        name = j;
        has_name = true;
      }
    }
    // A single bare ident is a type, not a name (e.g. `(BytesView)`).
    if (has_name && name > seg_begin) {
      out->push_back(LocalDecl{toks[name].text, toks[name].line, name,
                               is_const, is_pointer, true});
    }
    seg_begin = i + 1;
  }
}

/// Collect block-scoped declarations between body_begin and body_end.
void collect_body_locals(const std::vector<Token>& toks, size_t body_begin,
                         size_t body_end, std::vector<LocalDecl>* out) {
  bool at_stmt_start = true;
  for (size_t i = body_begin + 1; i < body_end; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) {
      at_stmt_start = true;
      continue;
    }
    // The init clause of for/if/while/switch is also a declaration site.
    if (is_punct(t, "(") && i > 0 &&
        (is_ident(toks[i - 1], "for") || is_ident(toks[i - 1], "if") ||
         is_ident(toks[i - 1], "while") || is_ident(toks[i - 1], "switch"))) {
      at_stmt_start = true;
      continue;
    }
    if (!at_stmt_start) continue;
    at_stmt_start = false;
    const size_t past = parse_decl(toks, i, body_end, out);
    if (past > i) i = past - 1;  // loop ++ lands on the terminator
  }
}

}  // namespace

size_t match_forward(const std::vector<Token>& toks, size_t open) {
  if (open >= toks.size() || toks[open].kind != Tok::punct) {
    return toks.size();
  }
  const std::string& o = toks[open].text;
  std::string c;
  if (o == "(") {
    c = ")";
  } else if (o == "[") {
    c = "]";
  } else if (o == "{") {
    c = "}";
  } else {
    return toks.size();
  }
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], o)) ++depth;
    if (is_punct(toks[i], c)) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

bool lambda_intro_at(const std::vector<Token>& toks, size_t i) {
  if (i >= toks.size() || !is_punct(toks[i], "[")) return false;
  // [[attribute]] — either bracket.
  if (i + 1 < toks.size() && is_punct(toks[i + 1], "[")) return false;
  if (i > 0 && is_punct(toks[i - 1], "[")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  // After a value (ident, literal, ')' or ']') a '[' is a subscript or an
  // array declarator — except after keywords that end an expression slot.
  if (prev.kind == Tok::number || prev.kind == Tok::str ||
      prev.kind == Tok::chr) {
    return false;
  }
  if (prev.kind == Tok::ident) {
    return prev.text == "return" || prev.text == "co_return" ||
           prev.text == "co_yield" || prev.text == "case";
  }
  if (is_punct(prev, ")") || is_punct(prev, "]")) return false;
  return true;
}

bool parse_lambda(const std::vector<Token>& toks, size_t intro,
                  LambdaInfo* out) {
  if (!lambda_intro_at(toks, intro)) return false;
  const size_t close = match_forward(toks, intro);
  if (close >= toks.size()) return false;

  LambdaInfo info;
  info.intro = intro;

  // Capture list: split on top-level commas.
  size_t seg_begin = intro + 1;
  int depth = 0;
  for (size_t i = intro + 1; i <= close; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) --depth;
    const bool seg_end = i == close || (depth == 0 && is_punct(t, ","));
    if (!seg_end) continue;
    const size_t b = seg_begin;
    const size_t e = i;  // [b, e)
    seg_begin = i + 1;
    if (b >= e) continue;
    Capture cap;
    cap.line = toks[b].line;
    if (e == b + 1 && is_punct(toks[b], "&")) {
      cap.kind = Capture::Kind::ref_default;
      info.ref_default = true;
      info.captures_this = true;
    } else if (e == b + 1 && is_punct(toks[b], "=")) {
      cap.kind = Capture::Kind::value_default;
      info.value_default = true;
    } else if (is_ident(toks[b], "this")) {
      cap.kind = Capture::Kind::this_ptr;
      info.captures_this = true;
    } else if (is_punct(toks[b], "*") && b + 1 < e &&
               is_ident(toks[b + 1], "this")) {
      cap.kind = Capture::Kind::star_this;
    } else if (is_punct(toks[b], "&") && b + 1 < e && is_ident(toks[b + 1])) {
      cap.name = toks[b + 1].text;
      cap.kind = (b + 2 < e && is_punct(toks[b + 2], "="))
                     ? Capture::Kind::init_ref
                     : Capture::Kind::ref;
    } else if (is_ident(toks[b])) {
      cap.name = toks[b].text;
      cap.kind = (b + 1 < e && (is_punct(toks[b + 1], "=") ||
                                is_punct(toks[b + 1], "{")))
                     ? Capture::Kind::init_value
                     : Capture::Kind::value;
    } else {
      continue;  // parameter packs and other exotica
    }
    info.captures.push_back(std::move(cap));
  }

  // After ']': optional template intro, parameter list, specifiers,
  // trailing return type — then the '{' body.
  size_t j = close + 1;
  if (j < toks.size() && is_punct(toks[j], "<")) {
    const size_t past = skip_angles(toks, j);
    if (past == j) return false;
    j = past;
  }
  int scan_depth = 0;
  size_t guard = 0;
  while (j < toks.size() && guard++ < 4096) {
    const Token& t = toks[j];
    if (scan_depth == 0 && is_punct(t, "{")) break;
    if (is_punct(t, "(") || is_punct(t, "<")) ++scan_depth;
    if (is_punct(t, ")") || is_punct(t, ">")) {
      if (scan_depth == 0) return false;  // e.g. `[x]` inside a call
      --scan_depth;
    }
    if (scan_depth == 0 &&
        (is_punct(t, ";") || is_punct(t, ",") || is_punct(t, "]") ||
         is_punct(t, "}") || is_punct(t, "="))) {
      return false;  // array declarator / subscript, not a lambda
    }
    ++j;
  }
  if (j >= toks.size() || !is_punct(toks[j], "{")) return false;
  info.body_begin = j;
  info.body_end = match_forward(toks, j);
  if (info.body_end >= toks.size()) return false;
  *out = info;
  return true;
}

std::vector<FunctionScope> find_functions(const std::vector<Token>& toks) {
  std::vector<FunctionScope> out;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "{") || i == 0) continue;

    // Header: tokens since the last statement/body boundary.
    size_t h = i;
    while (h > 0 && !is_punct(toks[h - 1], ";") &&
           !is_punct(toks[h - 1], "{") && !is_punct(toks[h - 1], "}")) {
      --h;
    }

    // A function body's '{' follows ')' or a function specifier / trailing
    // return type, and its header contains a parameter list. Everything
    // else (class/namespace/enum bodies, initializer lists) is descended
    // into so methods inside class bodies are still found.
    bool has_parens = false;
    for (size_t j = h; j < i; ++j) {
      if (is_punct(toks[j], "(")) {
        has_parens = true;
        break;
      }
    }
    if (!has_parens) continue;
    const Token& prev = toks[i - 1];
    const bool fn_tail =
        is_punct(prev, ")") || is_ident(prev, "const") ||
        is_ident(prev, "noexcept") || is_ident(prev, "override") ||
        is_ident(prev, "final") || is_ident(prev, "mutable") ||
        // trailing return type: `) -> Foo {`, `) -> std::pair<A, B> {`
        prev.kind == Tok::ident || is_punct(prev, ">") ||
        is_punct(prev, "*") || is_punct(prev, "&");
    if (!fn_tail) continue;
    if (h < i && (is_ident(toks[h], "class") || is_ident(toks[h], "struct") ||
                  is_ident(toks[h], "enum") || is_ident(toks[h], "union") ||
                  is_ident(toks[h], "namespace") ||
                  is_ident(toks[h], "using"))) {
      continue;
    }

    FunctionScope fn;
    fn.header_begin = h;
    fn.body_begin = i;
    fn.body_end = match_forward(toks, i);
    fn.line = toks[i].line;
    if (fn.body_end >= toks.size()) continue;
    for (size_t j = h; j < i; ++j) {
      if (is_punct(toks[j], "(")) {
        fn.params_begin = j;
        if (j > 0 && is_ident(toks[j - 1])) fn.name = toks[j - 1].text;
        break;
      }
    }
    if (fn.params_begin != 0) {
      collect_params(toks, fn.params_begin, &fn.locals);
    }
    collect_body_locals(toks, fn.body_begin, fn.body_end, &fn.locals);
    out.push_back(std::move(fn));
    i = fn.body_end;  // outermost bodies only
  }
  return out;
}

}  // namespace zkt::analysis
