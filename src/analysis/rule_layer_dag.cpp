// layer-dag: the #include graph must respect the module DAG.
//
// The layering is what keeps guest-reachable code auditable: if netflow/ or
// zvm/ ever grew an include of core/ or sim/, host-side machinery (clocks,
// threads, stores) would silently become guest-reachable and the
// guest-determinism closure would stop meaning anything. The DAG is data:
// `[rule.layer-dag.allow]` in .zkt-lint.toml maps each module (second path
// component under src/) to the modules it may include. Files outside src/
// (tools, tests, bench, examples) sit above the DAG and may include
// anything. Violations print the offending edge.
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace zkt::analysis {

namespace {

constexpr const char* kRule = "layer-dag";

/// Module of a repo-relative path: "src/<module>/..." -> "<module>",
/// else "" (unconstrained).
std::string module_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return {};
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

/// Module of an include target "module/header.h" -> "module".
std::string include_module(const std::string& inc) {
  const size_t slash = inc.find('/');
  if (slash == std::string::npos) return {};
  return inc.substr(0, slash);
}

}  // namespace

void check_layer_dag(const LintContext& ctx, std::vector<Finding>& findings) {
  const Config& cfg = *ctx.config;
  const std::vector<std::string> modules = cfg.keys("rule.layer-dag.allow");
  if (modules.empty()) return;  // not configured for this tree

  for (const AnalyzedFile& file : ctx.files) {
    const std::string mod = module_of(file.path);
    if (mod.empty()) continue;           // tools/tests/bench: unconstrained
    bool known = false;
    for (const std::string& m : modules) known = known || m == mod;
    if (!known) {
      findings.push_back(Finding{
          kRule, file.path, 1,
          "module '" + mod +
              "' is not declared in [rule.layer-dag.allow]; add it with its "
              "allowed dependencies"});
      continue;
    }
    const std::vector<std::string> allowed =
        cfg.strs("rule.layer-dag.allow", mod);

    for (const IncludeDirective& inc : file.lexed.includes) {
      if (inc.angled) continue;
      const std::string target = include_module(inc.path);
      if (target.empty() || target == mod) continue;
      // Only project modules are constrained.
      bool target_known = false;
      for (const std::string& m : modules) {
        target_known = target_known || m == target;
      }
      if (!target_known) continue;
      bool ok = false;
      for (const std::string& a : allowed) ok = ok || a == target;
      if (!ok) {
        findings.push_back(Finding{
            kRule, file.path, inc.line,
            "forbidden layer edge " + mod + " -> " + target + " (src/" + mod +
                " may not include \"" + inc.path + "\")"});
      }
    }
  }
}

}  // namespace zkt::analysis
