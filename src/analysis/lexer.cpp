#include "analysis/token.h"

#include <array>
#include <cctype>
#include <string_view>

namespace zkt::analysis {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first (maximal munch).
constexpr std::array<std::string_view, 24> kPuncts = {
    "<=>", "...", "->*", "<<=", ">>=", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "++", "--", "+=", "-=", "*=", "/=", "%=",
    "|=",  "&=",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (const size_t prefix = raw_prefix_len(); prefix != 0) {
        raw_string(prefix);
        continue;
      }
      if (c == '"') {
        string_literal('"', Tok::str);
        continue;
      }
      if (c == '\'') {
        string_literal('\'', Tok::chr);
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        pp_number();
        continue;
      }
      punctuator();
    }
    out_.tokens.push_back(Token{Tok::eof, "", "", line_});
    return std::move(out_);
  }

 private:
  char peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(Tok kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), "", line});
  }

  void emit_literal(Tok kind, std::string value, int line) {
    out_.tokens.push_back(Token{kind, "", std::move(value), line});
  }

  void line_comment() {
    const size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    scan_suppression(src_.substr(start, pos_ - start), line_);
  }

  void block_comment() {
    const int start_line = line_;
    const size_t start = pos_;
    pos_ += 2;
    while (pos_ + 1 < src_.size() &&
           !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = pos_ + 1 < src_.size() ? pos_ + 2 : src_.size();
    scan_suppression(src_.substr(start, pos_ - start), start_line);
  }

  /// Parse `zkt-lint:` markers inside a comment: `allow(rule, ...)` /
  /// `allow-file(rule, ...)` suppressions, or one of the flow annotations
  /// (`shared`, `guarded_by`, `remove-after`).
  void scan_suppression(std::string_view comment, int line) {
    const size_t tag = comment.find("zkt-lint:");
    if (tag == std::string_view::npos) return;
    std::string_view rest = comment.substr(tag + 9);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    bool whole_file = false;
    if (rest.rfind("allow-file(", 0) == 0) {
      whole_file = true;
      rest.remove_prefix(11);
    } else if (rest.rfind("allow(", 0) == 0) {
      rest.remove_prefix(6);
    } else {
      scan_annotation(rest, line);
      return;
    }
    const size_t close = rest.find(')');
    if (close == std::string_view::npos) return;
    std::string_view list = rest.substr(0, close);
    size_t i = 0;
    while (i <= list.size()) {
      size_t comma = list.find(',', i);
      if (comma == std::string_view::npos) comma = list.size();
      std::string_view name = list.substr(i, comma - i);
      while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
      while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
      if (!name.empty()) {
        if (whole_file) {
          out_.allow_file.insert(std::string(name));
        } else {
          out_.allow_lines[line].insert(std::string(name));
        }
      }
      i = comma + 1;
    }
  }

  /// Parse a flow annotation after the `zkt-lint:` tag. The argument runs to
  /// the comment's *last* `)` so a justification may itself contain parens,
  /// e.g. `// zkt-lint: shared(merged under join (indices never overlap))`.
  void scan_annotation(std::string_view rest, int line) {
    constexpr std::array<std::string_view, 3> kKinds = {"shared", "guarded_by",
                                                        "remove-after"};
    for (std::string_view kind : kKinds) {
      if (rest.size() <= kind.size() || rest[kind.size()] != '(' ||
          rest.compare(0, kind.size(), kind) != 0) {
        continue;
      }
      rest.remove_prefix(kind.size() + 1);
      const size_t close = rest.rfind(')');
      if (close == std::string_view::npos) return;
      std::string_view arg = rest.substr(0, close);
      while (!arg.empty() && arg.front() == ' ') arg.remove_prefix(1);
      while (!arg.empty() && arg.back() == ' ') arg.remove_suffix(1);
      out_.annotations[line].push_back(
          Annotation{std::string(kind), std::string(arg), line});
      return;
    }
  }

  /// Preprocessor directive: record #include targets; lex other directives
  /// normally so banned tokens inside macro definitions are still seen.
  void directive() {
    at_line_start_ = false;
    ++pos_;  // consume '#'
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) {
      ++pos_;
    }
    size_t name_start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    const std::string_view name = src_.substr(name_start, pos_ - name_start);
    if (name != "include") return;  // tokens of the directive lex as usual
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) {
      ++pos_;
    }
    if (pos_ >= src_.size()) return;
    const char open = src_[pos_];
    if (open != '<' && open != '"') return;
    const char close = open == '<' ? '>' : '"';
    ++pos_;
    const size_t target_start = pos_;
    while (pos_ < src_.size() && src_[pos_] != close && src_[pos_] != '\n') {
      ++pos_;
    }
    IncludeDirective inc;
    inc.path = std::string(src_.substr(target_start, pos_ - target_start));
    inc.angled = open == '<';
    inc.line = line_;
    out_.includes.push_back(std::move(inc));
    if (pos_ < src_.size() && src_[pos_] == close) ++pos_;
    // The rest of the line is lexed normally so a trailing
    // `// zkt-lint: allow(...)` comment still registers as a suppression.
  }

  /// Length of a raw-string encoding prefix (`R`, `LR`, `uR`, `UR`, `u8R`)
  /// starting at pos_ and followed by `"`, or 0 when the next token is not a
  /// raw string. Recognising the prefixed forms matters for line accuracy:
  /// lexed as identifier-plus-ordinary-string, a multi-line `u8R"(...)"`
  /// would stop at the first newline and desync every later line number.
  size_t raw_prefix_len() const {
    size_t i = pos_;
    if (src_[i] == 'u' && peek(1) == '8') {
      i += 2;
    } else if (src_[i] == 'L' || src_[i] == 'u' || src_[i] == 'U') {
      i += 1;
    }
    const bool is_raw = i < src_.size() && src_[i] == 'R' &&
                        i + 1 < src_.size() && src_[i + 1] == '"';
    return is_raw ? i - pos_ + 1 : 0;
  }

  void raw_string(size_t prefix_len) {
    const int start_line = line_;
    pos_ += prefix_len + 1;  // prefix through the opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string terminator = ")" + delim + "\"";
    const size_t end = src_.find(terminator, pos_);
    const size_t body_end = end == std::string_view::npos ? src_.size() : end;
    for (size_t i = pos_; i < body_end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    std::string value(src_.substr(pos_, body_end - pos_));
    pos_ = end == std::string_view::npos ? src_.size()
                                         : end + terminator.size();
    emit_literal(Tok::str, std::move(value), start_line);
  }

  void string_literal(char quote, Tok kind) {
    const int start_line = line_;
    ++pos_;
    const size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != quote && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        ++pos_;
        // A line-continuation inside the literal still advances the file's
        // line count, or every later suppression attaches one line short.
        if (src_[pos_] == '\n') ++line_;
      }
      ++pos_;
    }
    std::string value(src_.substr(start, pos_ - start));
    if (pos_ < src_.size() && src_[pos_] == quote) ++pos_;
    emit_literal(kind, std::move(value), start_line);
  }

  void identifier() {
    const size_t start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    emit(Tok::ident, std::string(src_.substr(start, pos_ - start)), line_);
  }

  void pp_number() {
    const size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        // Exponent signs belong to the number: 1e+9, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek(1) == '+' || peek(1) == '-')) {
          pos_ += 2;
          continue;
        }
        ++pos_;
        continue;
      }
      break;
    }
    emit(Tok::number, std::string(src_.substr(start, pos_ - start)), line_);
  }

  void punctuator() {
    for (std::string_view p : kPuncts) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        emit(Tok::punct, std::string(p), line_);
        pos_ += p.size();
        return;
      }
    }
    emit(Tok::punct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace zkt::analysis
