// untrusted-taint: adversarial bytes must pass through bounds-checked
// parsing before anything re-interprets them. The verifier/auditor side of
// the system parses the most hostile input in the deployment (NetFlow
// packets off the wire, ZKTRCPT1 receipt files, WAL frames, store tables),
// so this rule tracks "tainted" buffers intraprocedurally and flags the
// dangerous operations on them — `reinterpret_cast`, raw memcpy/memmove,
// pointer arithmetic, container indexing — anywhere outside the sanctioned
// parse TUs. Inside a sanctioned TU the same operations are legal only when
// dominated by a visible bounds check (need()/remaining()/size() or a
// relational guard), which is what makes the sanctioned parsers auditable:
// the check is in the same function as the access.
//
// Taint seeds, per function:
//   - parameters whose name contains a `tainted_params` substring
//     (packet, payload, frame, ... — the tree's naming convention for
//     wire-origin bytes);
//   - locals initialized from a `sources` call (socket/file reads);
//   - in sanctioned TUs, members named in `tainted_members` (a parser
//     cursor's underlying buffer).
// Taint propagates through initialization and assignment.
//
// Config ([rule.untrusted-taint]):
//   paths           — prefixes the rule applies to (default "src").
//   sources         — call names whose result is tainted.
//   tainted_params  — parameter-name substrings seeding taint.
//   tainted_members — member names treated as tainted inside sink TUs.
//   sinks           — repo-relative files sanctioned to parse raw bytes.
#include <set>
#include <string>

#include "analysis/lint.h"
#include "analysis/symbols.h"

namespace zkt::analysis {

namespace {

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::punct && t.text == s;
}

bool under_any(const std::string& path,
               const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (path.rfind(p, 0) == 0) return true;
  }
  return false;
}

bool contains_any(const std::string& name,
                  const std::vector<std::string>& subs) {
  for (const std::string& s : subs) {
    if (name.find(s) != std::string::npos) return true;
  }
  return false;
}

/// Relational tokens that actually guard something: those inside the
/// parenthesized condition of an if/while/for. A bare `<` elsewhere is more
/// often a template argument list (`static_cast<uint16_t>`) than a bound.
std::set<size_t> guard_relationals(const std::vector<Token>& toks,
                                   size_t body_begin, size_t body_end) {
  std::set<size_t> out;
  for (size_t i = body_begin; i < body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::ident ||
        (t.text != "if" && t.text != "while" && t.text != "for")) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    const size_t close = match_forward(toks, i + 1);
    for (size_t j = i + 2; j < close && j < body_end; ++j) {
      if (toks[j].kind == Tok::punct &&
          (toks[j].text == "<" || toks[j].text == "<=" ||
           toks[j].text == ">" || toks[j].text == ">=")) {
        out.insert(j);
      }
    }
  }
  return out;
}

/// True when a bounds check dominates token `use`: scanning backward at
/// relative brace depth <= 0 within the enclosing body, a size/remaining
/// style call or a guarding comparison appears. (A for-loop bound `i < n`
/// counts — that is exactly the guard indexed access rides on.)
bool bounds_check_dominates(const std::vector<Token>& toks, size_t use,
                            size_t body_begin,
                            const std::set<size_t>& guards) {
  static const std::set<std::string> kChecks = {
      "need",  "remaining", "size",   "empty", "length",
      "check", "ok",        "bounds", "ensure"};
  int rel = 0;
  for (size_t j = use; j > body_begin; --j) {
    const Token& t = toks[j - 1];
    if (is_punct(t, "}")) ++rel;
    if (is_punct(t, "{")) --rel;
    if (rel > 0) continue;
    if (t.kind == Tok::ident && kChecks.count(t.text)) return true;
    if (guards.count(j - 1)) return true;
  }
  return false;
}

struct TaintScan {
  const AnalyzedFile* file = nullptr;
  const FunctionScope* fn = nullptr;
  bool is_sink = false;
  std::set<std::string> tainted;
};

/// Does the token span [b, e) mention a tainted name or a source call?
bool span_tainted(const std::vector<Token>& toks, size_t b, size_t e,
                  const std::set<std::string>& tainted,
                  const std::vector<std::string>& sources) {
  for (size_t k = b; k < e && k < toks.size(); ++k) {
    if (toks[k].kind != Tok::ident) continue;
    if (tainted.count(toks[k].text)) return true;
    for (const std::string& s : sources) {
      if (toks[k].text == s && k + 1 < toks.size() &&
          is_punct(toks[k + 1], "(")) {
        return true;
      }
    }
  }
  return false;
}

/// End of the statement containing `i` (index of its ';' at depth 0).
size_t stmt_end(const std::vector<Token>& toks, size_t i, size_t limit) {
  int depth = 0;
  for (size_t j = i; j < limit; ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
      if (--depth < 0) return j;
    }
    if (depth == 0 && is_punct(t, ";")) return j;
  }
  return limit;
}

}  // namespace

void check_untrusted_taint(const LintContext& ctx,
                           std::vector<Finding>& findings) {
  const std::string section = "rule.untrusted-taint";
  std::vector<std::string> paths = ctx.config->strs(section, "paths");
  if (paths.empty()) paths = {"src"};
  const std::vector<std::string> sources = ctx.config->strs(section, "sources");
  const std::vector<std::string> tainted_params =
      ctx.config->strs(section, "tainted_params");
  const std::vector<std::string> tainted_members =
      ctx.config->strs(section, "tainted_members");
  const std::vector<std::string> sinks = ctx.config->strs(section, "sinks");

  for (const AnalyzedFile& file : ctx.files) {
    if (!under_any(file.path, paths)) continue;
    bool is_sink = false;
    for (const std::string& s : sinks) {
      if (file.path == s) {
        is_sink = true;
        break;
      }
    }
    const auto& toks = file.lexed.tokens;
    for (const FunctionScope& fn : find_functions(toks)) {
      std::set<std::string> tainted;
      std::set<std::string> tainted_ptrs;  // subset declared as pointers
      for (const LocalDecl& d : fn.locals) {
        if (d.is_param && contains_any(d.name, tainted_params)) {
          tainted.insert(d.name);
          if (d.is_pointer) tainted_ptrs.insert(d.name);
        }
      }
      if (is_sink) {
        for (const std::string& m : tainted_members) {
          tainted.insert(m);
          tainted_ptrs.insert(m);
        }
      }

      // Propagate through initializations and assignments. Two passes give
      // simple chains (a = b; c = a;) a chance to converge regardless of
      // collection order quirks; loops beyond that are out of scope.
      for (int pass = 0; pass < 2; ++pass) {
        for (const LocalDecl& d : fn.locals) {
          if (tainted.count(d.name) || d.is_param) continue;
          const size_t e = stmt_end(toks, d.tok, fn.body_end);
          if (span_tainted(toks, d.tok + 1, e, tainted, sources)) {
            tainted.insert(d.name);
            if (d.is_pointer) tainted_ptrs.insert(d.name);
          }
        }
        for (size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
          if (toks[i].kind != Tok::ident || !is_punct(toks[i + 1], "=")) {
            continue;
          }
          if (tainted.count(toks[i].text)) continue;
          const size_t e = stmt_end(toks, i + 1, fn.body_end);
          if (span_tainted(toks, i + 2, e, tainted, sources)) {
            tainted.insert(toks[i].text);
          }
        }
      }
      if (tainted.empty()) continue;

      // Flag the dangerous operations.
      const std::set<size_t> guards =
          is_sink ? guard_relationals(toks, fn.body_begin, fn.body_end)
                  : std::set<size_t>{};
      std::set<std::pair<int, std::string>> seen;  // one per line and op
      auto flag = [&](size_t at, const std::string& what,
                      const std::string& name) {
        if (is_sink &&
            bounds_check_dominates(toks, at, fn.body_begin, guards)) {
          return;
        }
        if (!seen.insert({toks[at].line, what + name}).second) return;
        std::string msg = what + " on tainted '" + name + "'";
        msg += is_sink
                   ? " without a dominating bounds check; guard it with "
                     "need()/remaining()/size() before touching the bytes"
                   : " outside the sanctioned parse TUs; route the bytes "
                     "through zkt::Reader or a declared sink";
        findings.push_back(
            Finding{"untrusted-taint", file.path, toks[at].line, msg});
      };

      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        const Token& t = toks[i];
        // reinterpret_cast<T>(expr-with-taint)
        if (t.kind == Tok::ident && t.text == "reinterpret_cast") {
          size_t j = i + 1;
          int angle = 0;
          while (j < fn.body_end) {
            if (is_punct(toks[j], "<")) ++angle;
            if (is_punct(toks[j], ">") && --angle == 0) break;
            ++j;
          }
          if (j + 1 < fn.body_end && is_punct(toks[j + 1], "(")) {
            const size_t close = match_forward(toks, j + 1);
            if (span_tainted(toks, j + 2, close, tainted, {})) {
              flag(i, "reinterpret_cast", "buffer");
            }
          }
          continue;
        }
        // memcpy / memmove with a tainted argument
        if (t.kind == Tok::ident &&
            (t.text == "memcpy" || t.text == "memmove") &&
            i + 1 < fn.body_end && is_punct(toks[i + 1], "(")) {
          const size_t close = match_forward(toks, i + 1);
          if (span_tainted(toks, i + 2, close, tainted, {})) {
            flag(i, "raw " + t.text, "buffer");
          }
          continue;
        }
        if (t.kind != Tok::ident || !tainted.count(t.text)) continue;
        // skip `other.name` member accesses (same-named field elsewhere);
        // the scan tracks this function's names only
        if (i > 0 && (is_punct(toks[i - 1], ".") ||
                      is_punct(toks[i - 1], "->") ||
                      is_punct(toks[i - 1], "::"))) {
          continue;
        }
        // tainted[expr] — container/pointer indexing
        if (i + 1 < fn.body_end && is_punct(toks[i + 1], "[")) {
          flag(i, "indexing", t.text);
          continue;
        }
        // tainted.data() + n  /  tainted_ptr + n — pointer arithmetic
        if (i + 4 < fn.body_end && is_punct(toks[i + 1], ".") &&
            toks[i + 2].kind == Tok::ident && toks[i + 2].text == "data" &&
            is_punct(toks[i + 3], "(") && is_punct(toks[i + 4], ")") &&
            i + 5 < fn.body_end &&
            (is_punct(toks[i + 5], "+") || is_punct(toks[i + 5], "-"))) {
          flag(i, "pointer arithmetic", t.text);
          continue;
        }
        if (tainted_ptrs.count(t.text) && i + 1 < fn.body_end &&
            (is_punct(toks[i + 1], "+") || is_punct(toks[i + 1], "-") ||
             is_punct(toks[i + 1], "+=") || is_punct(toks[i + 1], "++"))) {
          flag(i, "pointer arithmetic", t.text);
          continue;
        }
      }
    }
  }
}

}  // namespace zkt::analysis
