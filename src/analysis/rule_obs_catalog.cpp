// obs-catalog: the metric catalog in docs/OBSERVABILITY.md is checked like
// code, both directions. Every metric-name string literal passed to an
// obs::Registry factory (`.counter("...")`, `.gauge("...")`,
// `.histogram("...")`) must appear in the catalog's markdown tables, and
// every exact catalog entry must correspond to a name the code actually
// registers — so the document operators page against cannot silently drift
// from the binaries.
//
// Catalog entries are backticked names inside `|`-delimited table rows.
// An entry containing `<...>`, `{...}` or `*` is a wildcard (e.g.
// `crypto.sha256.blocks.<backend>`): it matches dynamically-built names in
// the forward direction and is exempt from the reverse (unused-entry)
// check, since the code side only ever shows a string prefix.
//
// Config ([rule.obs-catalog]):
//   catalog        — repo-relative path of the catalog markdown (the CLI
//                    loads it automatically; tests pass it explicitly).
//   registry_calls — method names treated as metric factories
//                    (default counter/gauge/histogram).
//   paths          — path prefixes whose registrations are checked
//                    (default "src").
#include <map>
#include <set>
#include <string>

#include "analysis/lint.h"
#include "analysis/symbols.h"

namespace zkt::analysis {

namespace {

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::punct && t.text == s;
}

bool under_any(const std::string& path,
               const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (path.rfind(p, 0) == 0) return true;
  }
  return false;
}

struct CatalogEntry {
  std::string name;
  int line = 0;
  bool wildcard = false;
};

bool metric_name_char(char c, bool wildcard_ok) {
  if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
      c == '_') {
    return true;
  }
  return wildcard_ok &&
         (c == '<' || c == '>' || c == '{' || c == '}' || c == '*');
}

/// Extract backticked metric names from `|`-rows of the catalog markdown.
std::vector<CatalogEntry> parse_catalog(const std::string& content) {
  std::vector<CatalogEntry> out;
  int line_no = 1;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string_view line(content.data() + pos, eol - pos);
    pos = eol + 1;
    const int this_line = line_no++;
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string_view::npos || line[b] != '|') continue;
    // Backtick spans within the row.
    size_t i = 0;
    while ((i = line.find('`', i)) != std::string_view::npos) {
      const size_t close = line.find('`', i + 1);
      if (close == std::string_view::npos) break;
      std::string_view span = line.substr(i + 1, close - i - 1);
      i = close + 1;
      bool ok = !span.empty();
      bool wildcard = false;
      bool has_dot = false;
      for (char c : span) {
        if (!metric_name_char(c, true)) {
          ok = false;
          break;
        }
        if (c == '.') has_dot = true;
        if (c == '<' || c == '{' || c == '*') wildcard = true;
      }
      // Only dotted names are metrics; other backticked spans in tables
      // (units, types, code refs) are ignored.
      if (!ok || !has_dot) continue;
      out.push_back(CatalogEntry{std::string(span), this_line, wildcard});
    }
  }
  return out;
}

/// Glob match where '*' (the normalized wildcard) matches any non-empty
/// sequence. `<...>` / `{...}` placeholder segments are normalized to '*'.
std::string normalize_pattern(const std::string& entry) {
  std::string out;
  size_t i = 0;
  while (i < entry.size()) {
    const char c = entry[i];
    if (c == '<' || c == '{') {
      const char close = c == '<' ? '>' : '}';
      const size_t end = entry.find(close, i);
      out += '*';
      i = end == std::string::npos ? entry.size() : end + 1;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

bool glob_match(std::string_view pat, std::string_view s) {
  if (pat.empty()) return s.empty();
  if (pat.front() == '*') {
    for (size_t skip = 1; skip <= s.size(); ++skip) {
      if (glob_match(pat.substr(1), s.substr(skip))) return true;
    }
    return false;
  }
  if (s.empty() || pat.front() != s.front()) return false;
  return glob_match(pat.substr(1), s.substr(1));
}

}  // namespace

void check_obs_catalog(const LintContext& ctx,
                       std::vector<Finding>& findings) {
  const std::string section = "rule.obs-catalog";
  const std::string catalog_path =
      ctx.config->str(section, "catalog", "docs/OBSERVABILITY.md");
  std::vector<std::string> calls = ctx.config->strs(section, "registry_calls");
  if (calls.empty()) calls = {"counter", "gauge", "histogram"};
  std::vector<std::string> paths = ctx.config->strs(section, "paths");
  if (paths.empty()) paths = {"src"};

  const int cat_idx = ctx.find(catalog_path);
  if (cat_idx < 0) return;  // no catalog among the inputs: rule is inert
  const std::vector<CatalogEntry> entries =
      parse_catalog(ctx.files[cat_idx].content);

  const std::set<std::string> call_set(calls.begin(), calls.end());

  // Forward: every literal name registered in code must be catalogued.
  struct Use {
    std::string name;
    const AnalyzedFile* file;
    int line;
  };
  std::vector<Use> uses;
  for (const AnalyzedFile& file : ctx.files) {
    if (!under_any(file.path, paths) || file.path == catalog_path) continue;
    const auto& toks = file.lexed.tokens;
    for (size_t i = 1; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != Tok::ident || !call_set.count(toks[i].text)) {
        continue;
      }
      if (!(is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      if (!is_punct(toks[i + 1], "(")) continue;
      // Collect every string literal in the first argument — this covers
      // both `counter("x")` and the `counter(cond ? "a" : "b")` form.
      // Literals adjacent to '+' are only fragments of a dynamically-built
      // name (`"span." + path`) and are not checkable.
      const size_t close = match_forward(toks, i + 1);
      int depth = 0;
      for (size_t k = i + 2; k < close; ++k) {
        const Token& t = toks[k];
        if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
        if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) --depth;
        if (depth == 0 && is_punct(t, ",")) break;  // first argument only
        if (t.kind != Tok::str) continue;
        if (k + 1 < close && is_punct(toks[k + 1], "+")) continue;
        if (k > 0 && is_punct(toks[k - 1], "+")) continue;
        uses.push_back(Use{t.value, &file, t.line});
      }
    }
  }

  for (const Use& use : uses) {
    bool found = false;
    for (const CatalogEntry& e : entries) {
      if (e.wildcard ? glob_match(normalize_pattern(e.name), use.name)
                     : e.name == use.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      findings.push_back(Finding{
          "obs-catalog", use.file->path, use.line,
          "metric '" + use.name + "' is not in the " + catalog_path +
              " catalog; document it (or fix the name)"});
    }
  }

  // Reverse: every exact catalog entry must match a registered name.
  // Wildcard entries are exempt (their names are built at runtime), and the
  // reverse check only runs when the lint inputs actually contained
  // registrations — linting a subtree must not condemn the whole catalog.
  if (uses.empty()) return;
  for (const CatalogEntry& e : entries) {
    if (e.wildcard) continue;
    bool found = false;
    for (const Use& use : uses) {
      if (use.name == e.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      findings.push_back(Finding{
          "obs-catalog", catalog_path, e.line,
          "catalog entry '" + e.name +
              "' matches no metric registered in code; delete the row or "
              "fix the name"});
    }
  }
}

}  // namespace zkt::analysis
