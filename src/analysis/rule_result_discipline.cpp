// result-discipline: recoverable errors must not be silently dropped.
//
// Two checks:
//
// 1. Discarded calls. A statement consisting solely of a call to a function
//    the project declares as returning Result<T> or Status throws the error
//    away — the exact bug class PR 2 fixed in pending_windows(). The rule is
//    project-aware: a first pass collects every function name declared with
//    a Result/Status return type anywhere in the analyzed tree, a second
//    pass flags statement-level calls to those names. Names that are ALSO
//    declared with a non-Result return somewhere (e.g. Writer::fixed is void
//    while Reader::fixed is Status) are ambiguous at the token level and are
//    left to the compiler's [[nodiscard]] diagnostics instead.
//
// 2. Unchecked .value(). `x.value()` asserts in debug builds and is UB-ish
//    in release when !x.ok(); every use must be dominated by an ok() /
//    has_value() / boolean test of x in the enclosing scope. The dominance
//    check is a conservative token scan of the enclosing top-level block —
//    heuristic by design, with `// zkt-lint: allow(result-discipline)` as
//    the escape hatch for the cases it cannot see.
#include <set>
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace zkt::analysis {

namespace {

constexpr const char* kRule = "result-discipline";

bool is_ident(const Token& t) { return t.kind == Tok::ident; }

/// Collect function names by declared return type: `Status name(` and
/// `Result<...> name(` into `result_names`, `void name(` into `other_names`.
void collect_declared_names(const std::vector<Token>& toks,
                            std::set<std::string>& result_names,
                            std::set<std::string>& other_names) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!is_ident(t)) continue;
    if (t.text == "void" && is_ident(toks[i + 1]) && i + 2 < toks.size() &&
        toks[i + 2].text == "(") {
      other_names.insert(toks[i + 1].text);
      continue;
    }
    if (t.text == "Status" && is_ident(toks[i + 1]) && i + 2 < toks.size() &&
        toks[i + 2].text == "(") {
      result_names.insert(toks[i + 1].text);
      continue;
    }
    if (t.text == "Result" && toks[i + 1].text == "<") {
      // Skip the template argument list.
      int depth = 0;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") {
          if (--depth == 0) break;
        }
        if (toks[j].text == ">>") {
          depth -= 2;
          if (depth <= 0) break;
        }
        if (toks[j].text == ";" || toks[j].text == "{") {
          j = toks.size();
          break;
        }
      }
      if (j + 2 < toks.size() && is_ident(toks[j + 1]) &&
          toks[j + 2].text == "(") {
        result_names.insert(toks[j + 1].text);
      }
    }
  }
}

/// Statement-start tokens: a call directly after one of these is a
/// standalone expression statement. `:` is deliberately absent — it appears
/// mid-expression in ternaries far more often than in case labels.
bool stmt_start(const std::string& t) {
  return t == ";" || t == "{" || t == "}";
}

/// From a call at `toks[i]` (the callee identifier, with `(` at i+1 or after
/// a member chain), return the index one past the closing `)` if the
/// statement is exactly `callee(...) ;`, else -1.
int statement_call_end(const std::vector<Token>& toks, size_t open_paren) {
  int depth = 0;
  for (size_t j = open_paren; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    if (toks[j].text == ")") {
      if (--depth == 0) {
        return (j + 1 < toks.size() && toks[j + 1].text == ";")
                   ? static_cast<int>(j + 1)
                   : -1;
      }
    }
    if (depth == 0 && toks[j].text == ";") return -1;
  }
  return -1;
}

/// True when `toks[i]` (identifier `var`) is used as a boolean check of the
/// Result/Status: `var.ok()`, `var.has_value()`, `!var`, `(var)`,
/// `var &&` / `var ||`, or `ZKT_TRY(... var ...)` / assertion macros.
bool is_check_of(const std::vector<Token>& toks, size_t i,
                 const std::string& var) {
  if (!is_ident(toks[i]) || toks[i].text != var) return false;
  const std::string next = i + 1 < toks.size() ? toks[i + 1].text : "";
  const std::string next2 = i + 2 < toks.size() ? toks[i + 2].text : "";
  const std::string prev = i > 0 ? toks[i - 1].text : "";
  if (next == "." && (next2 == "ok" || next2 == "has_value")) return true;
  if (prev == "!") return true;
  // Contextual bool: surrounded by condition punctuation on both sides.
  const bool bool_before = prev == "(" || prev == "&&" || prev == "||";
  const bool bool_after = next == ")" || next == "&&" || next == "||";
  if (bool_before && bool_after) return true;
  return false;
}

/// True when `var` is visibly Result-typed before token `use`: declared as
/// `Result<...> var` / `Status var`, or initialized with
/// `auto var = [chain.]name(...)` where `name` is Result-returning. The
/// `auto` form may use the full (pre-disambiguation) name set: a void
/// overload cannot initialize a variable, so assignment resolves the
/// ambiguity that defeats the discarded-call check.
bool result_typed_var(const std::vector<Token>& toks, size_t use,
                      const std::string& var,
                      const std::set<std::string>& result_names) {
  for (size_t j = 0; j + 1 < use; ++j) {
    if (!is_ident(toks[j]) || toks[j].text != var) continue;
    // `... Result > var` or `Status var` (declaration).
    if (j >= 1) {
      const std::string& p1 = toks[j - 1].text;
      if (p1 == "Status") return true;
      if (p1 == ">" || p1 == ">>") {
        // Walk back over the template argument list to its head.
        int depth = 0;
        for (size_t k = j; k-- > 0;) {
          if (toks[k].text == ">") ++depth;
          if (toks[k].text == ">>") depth += 2;
          if (toks[k].text == "<" && --depth == 0) {
            if (k >= 1 && toks[k - 1].text == "Result") return true;
            break;
          }
          if (toks[k].text == ";") break;
        }
      }
    }
    // `auto var = chain(...)`: find the callee name before the first `(`.
    if (j >= 1 && toks[j - 1].text == "auto" && j + 1 < use &&
        toks[j + 1].text == "=") {
      for (size_t k = j + 2; k + 1 < use && toks[k].text != ";"; ++k) {
        if (is_ident(toks[k]) && toks[k + 1].text == "(") {
          if (result_names.count(toks[k].text)) return true;
          break;
        }
      }
    }
  }
  return false;
}

/// Dominance approximation: walk backwards from `use`; a check of `var`
/// counts only while the walk sits in a scope enclosing the use (relative
/// brace depth <= 0). Checks inside already-closed sibling blocks — other
/// functions, earlier if-bodies — have positive relative depth and are
/// ignored, so `if (c) { x.ok(); } x.value();` is still flagged while both
/// `if (x.ok()) { x.value(); }` and `if (!x.ok()) return; x.value();` pass.
bool dominated_by_check(const std::vector<Token>& toks, size_t use,
                        const std::string& var) {
  int rel = 0;
  for (size_t j = use; j-- > 0;) {
    if (toks[j].text == "}") ++rel;
    if (toks[j].text == "{") --rel;
    if (rel <= 0 && is_check_of(toks, j, var)) return true;
  }
  return false;
}

}  // namespace

void check_result_discipline(const LintContext& ctx,
                             std::vector<Finding>& findings) {
  const Config& cfg = *ctx.config;

  // Pass 1: project-wide declared-name collection. `result_names_all` keeps
  // every Result/Status-returning name (used to type `auto v = name(...)`
  // variables); `result_names` drops the ones that also have a void overload
  // somewhere (Writer::fixed vs Reader::fixed) — those stay ambiguous for
  // the discarded-call check and are left to [[nodiscard]].
  std::set<std::string> result_names_all;
  std::set<std::string> other_names;
  for (const AnalyzedFile& file : ctx.files) {
    collect_declared_names(file.lexed.tokens, result_names_all, other_names);
  }
  for (const std::string& extra : cfg.strs("rule.result-discipline",
                                           "extra_result_names")) {
    result_names_all.insert(extra);
  }
  for (const std::string& name :
       cfg.strs("rule.result-discipline", "ignore_names")) {
    result_names_all.erase(name);
  }
  std::set<std::string> result_names = result_names_all;
  for (const std::string& name : other_names) result_names.erase(name);

  // Pass 2: flag discarded calls and unchecked .value().
  for (const AnalyzedFile& file : ctx.files) {
    const std::vector<Token>& toks = file.lexed.tokens;
    for (size_t i = 1; i + 2 < toks.size(); ++i) {
      // ---- Discarded call: [stmt-start] chain . name ( ... ) ;
      if (stmt_start(toks[i - 1].text) && is_ident(toks[i])) {
        // Walk a member chain a.b->c to the final callee name.
        size_t j = i;
        while (j + 2 < toks.size() && is_ident(toks[j]) &&
               (toks[j + 1].text == "." || toks[j + 1].text == "->" ||
                toks[j + 1].text == "::") &&
               is_ident(toks[j + 2])) {
          j += 2;
        }
        if (is_ident(toks[j]) && j + 1 < toks.size() &&
            toks[j + 1].text == "(" && result_names.count(toks[j].text) &&
            statement_call_end(toks, j + 1) >= 0) {
          findings.push_back(Finding{
              kRule, file.path, toks[j].line,
              "discarded Result/Status from call to '" + toks[j].text +
                  "' (check it, ZKT_TRY it, or cast to void with a reason)"});
        }
      }

      // ---- Unchecked .value(): var . value ( ) with no dominating check.
      if (is_ident(toks[i]) && toks[i + 1].text == "." &&
          toks[i + 2].text == "value" && i + 4 < toks.size() &&
          toks[i + 3].text == "(" && toks[i + 4].text == ")") {
        const std::string& var = toks[i].text;
        // Only consider plain variables (skip `).value()` chains — the
        // temporary case is unverifiable at token level).
        const std::string prev = toks[i - 1].text;
        if (prev == "." || prev == "->" || prev == "::") continue;
        // Only variables we can see being declared as a Result: either
        // `Result<...> var` or `auto var = [chain.]name(...)` with `name`
        // declared Result-returning somewhere. Anything else (accessors
        // like obs::Counter::value(), std::optional in non-Result code) is
        // out of scope for this rule.
        if (!result_typed_var(toks, i, var, result_names_all)) continue;
        if (!dominated_by_check(toks, i, var)) {
          findings.push_back(Finding{
              kRule, file.path, toks[i].line,
              "'" + var +
                  ".value()' is not dominated by an ok()/has_value() check "
                  "in this scope"});
        }
      }
    }
  }
}

}  // namespace zkt::analysis
