// zkt-lint engine: project-invariant static analysis.
//
// The soundness story of the paper's system rests on properties that no
// compiler flag checks for us: guest programs must be deterministic,
// replayable functions of their Env input (Errc paths included), recoverable
// errors must never be silently dropped, secret comparisons must be constant
// time, and the module layering must stay acyclic so guest-reachable code
// cannot grow host-side dependencies. Each rule here machine-checks one of
// those invariants at the token / include-graph level; see docs/ANALYSIS.md
// for the rationale behind every rule.
//
// Rules (all configured via .zkt-lint.toml, suppressed per finding with
// `// zkt-lint: allow(<rule>)`):
//   guest-determinism    — no clocks, randomness, floats, threads, ambient
//                          I/O or unordered-container iteration in
//                          translation units reachable from the guest roots.
//   result-discipline    — no discarded Result/Status calls; no .value()
//                          that is not dominated by an ok()/has_value()
//                          check.
//   secret-hygiene       — no memcmp/==/!= on digest or key material inside
//                          src/crypto; use crypto::ct_equal.
//   layer-dag            — #include edges must respect the module DAG.
//   untrusted-taint      — adversarial bytes (socket/file/store reads) may
//                          only be cast, copied or indexed inside the
//                          sanctioned parse TUs, which must themselves be
//                          bounds-check dominated.
//   concurrency-capture  — lambdas handed to common::ThreadPool may not
//                          capture mutable state by reference without a
//                          `shared(<why>)` annotation; `guarded_by(mu)`
//                          fields may only be touched under their mutex.
//   deprecation-lifecycle — every [[deprecated]] symbol carries
//                          `remove-after(PR <n>)`; expired shims are
//                          findings.
//   obs-catalog          — metric names passed to obs::Registry and the
//                          docs/OBSERVABILITY.md catalog must agree, both
//                          directions.
#pragma once

#include <string>
#include <vector>

#include "analysis/config.h"
#include "analysis/token.h"
#include "common/result.h"

namespace zkt::analysis {

/// One input file (path is repo-relative, forward slashes).
struct SourceFile {
  std::string path;
  std::string content;
};

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  bool suppressed = false;
  /// "error" (default) or "warn" — from `severity` in the rule's config
  /// section. Warnings print but never fail the run.
  std::string severity = "error";
  /// Matched an entry of the `--baseline` file: reported, not counted.
  bool baselined = false;
};

struct LintResult {
  std::vector<Finding> findings;  ///< sorted by (path, line)

  /// Findings that gate a run: unsuppressed, unbaselined, error-severity.
  size_t unsuppressed() const;
  /// `file:line: [rule] message` diagnostics, one per line.
  std::string to_text(bool include_suppressed = false) const;
  /// Machine-readable report: {"findings": [...], "unsuppressed": N}.
  std::string to_json() const;
};

/// Baseline files let a new rule land warn-first: `zkt-lint
/// --write-baseline` records today's findings, `--baseline` then exempts
/// exactly those. Entries are `path|rule|message` (no line numbers, so a
/// baseline survives unrelated edits); '#' starts a comment.
struct BaselineEntry {
  std::string path;
  std::string rule;
  std::string message;
};
std::vector<BaselineEntry> parse_baseline(std::string_view text);
/// Mark findings matching a baseline entry as baselined (idempotent).
void apply_baseline(const std::vector<BaselineEntry>& baseline,
                    LintResult* result);
/// Serialize the unsuppressed error findings of `result` as a baseline.
std::string to_baseline(const LintResult& result);

/// Names of all registered rules.
std::vector<std::string> rule_names();

/// Run every enabled rule over `files` under `config`. Rules with no
/// project-specific configuration (guest roots, layer DAG) stay inert until
/// the config provides it; token ban-lists have built-in defaults the config
/// can override.
LintResult run_lint(const Config& config, const std::vector<SourceFile>& files);

// ---------------------------------------------------------------------------
// Internal shared state (exposed for the per-rule implementation files and
// for white-box tests).

struct AnalyzedFile {
  std::string path;
  LexedFile lexed;
  /// Raw file content; the obs-catalog rule reads the markdown catalog from
  /// here (lexing markdown as C++ would be garbage).
  std::string content;
};

struct LintContext {
  const Config* config = nullptr;
  std::vector<AnalyzedFile> files;

  /// Index into `files` by repo-relative path, or -1.
  int find(const std::string& path) const;
  /// Resolve a quoted include spelled `inc` to an analyzed file index, using
  /// the configured include roots (default: "src"). Returns -1 for system or
  /// out-of-tree includes.
  int resolve_include(const std::string& inc) const;
};

void check_guest_determinism(const LintContext& ctx,
                             std::vector<Finding>& findings);
void check_result_discipline(const LintContext& ctx,
                             std::vector<Finding>& findings);
void check_secret_hygiene(const LintContext& ctx,
                          std::vector<Finding>& findings);
void check_layer_dag(const LintContext& ctx, std::vector<Finding>& findings);
void check_untrusted_taint(const LintContext& ctx,
                           std::vector<Finding>& findings);
void check_concurrency_capture(const LintContext& ctx,
                               std::vector<Finding>& findings);
void check_deprecation_lifecycle(const LintContext& ctx,
                                 std::vector<Finding>& findings);
void check_obs_catalog(const LintContext& ctx,
                       std::vector<Finding>& findings);

}  // namespace zkt::analysis
