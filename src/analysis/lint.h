// zkt-lint engine: project-invariant static analysis.
//
// The soundness story of the paper's system rests on properties that no
// compiler flag checks for us: guest programs must be deterministic,
// replayable functions of their Env input (Errc paths included), recoverable
// errors must never be silently dropped, secret comparisons must be constant
// time, and the module layering must stay acyclic so guest-reachable code
// cannot grow host-side dependencies. Each rule here machine-checks one of
// those invariants at the token / include-graph level; see docs/ANALYSIS.md
// for the rationale behind every rule.
//
// Rules (all configured via .zkt-lint.toml, suppressed per finding with
// `// zkt-lint: allow(<rule>)`):
//   guest-determinism  — no clocks, randomness, floats, threads, ambient I/O
//                        or unordered-container iteration in translation
//                        units reachable from the guest roots.
//   result-discipline  — no discarded Result/Status calls; no .value()
//                        that is not dominated by an ok()/has_value() check.
//   secret-hygiene     — no memcmp/==/!= on digest or key material inside
//                        src/crypto; use crypto::ct_equal.
//   layer-dag          — #include edges must respect the module DAG.
#pragma once

#include <string>
#include <vector>

#include "analysis/config.h"
#include "analysis/token.h"
#include "common/result.h"

namespace zkt::analysis {

/// One input file (path is repo-relative, forward slashes).
struct SourceFile {
  std::string path;
  std::string content;
};

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  bool suppressed = false;
};

struct LintResult {
  std::vector<Finding> findings;  ///< sorted by (path, line)

  size_t unsuppressed() const;
  /// `file:line: [rule] message` diagnostics, one per line.
  std::string to_text(bool include_suppressed = false) const;
  /// Machine-readable report: {"findings": [...], "unsuppressed": N}.
  std::string to_json() const;
};

/// Names of all registered rules.
std::vector<std::string> rule_names();

/// Run every enabled rule over `files` under `config`. Rules with no
/// project-specific configuration (guest roots, layer DAG) stay inert until
/// the config provides it; token ban-lists have built-in defaults the config
/// can override.
LintResult run_lint(const Config& config, const std::vector<SourceFile>& files);

// ---------------------------------------------------------------------------
// Internal shared state (exposed for the per-rule implementation files and
// for white-box tests).

struct AnalyzedFile {
  std::string path;
  LexedFile lexed;
};

struct LintContext {
  const Config* config = nullptr;
  std::vector<AnalyzedFile> files;

  /// Index into `files` by repo-relative path, or -1.
  int find(const std::string& path) const;
  /// Resolve a quoted include spelled `inc` to an analyzed file index, using
  /// the configured include roots (default: "src"). Returns -1 for system or
  /// out-of-tree includes.
  int resolve_include(const std::string& inc) const;
};

void check_guest_determinism(const LintContext& ctx,
                             std::vector<Finding>& findings);
void check_result_discipline(const LintContext& ctx,
                             std::vector<Finding>& findings);
void check_secret_hygiene(const LintContext& ctx,
                          std::vector<Finding>& findings);
void check_layer_dag(const LintContext& ctx, std::vector<Finding>& findings);

}  // namespace zkt::analysis
