// concurrency-capture: two complementary checks on shared-state discipline
// around common::ThreadPool, catching races on paths the TSan job's tests
// never schedule.
//
// (a) Capture discipline. A lambda submitted to `submit` / `try_submit` /
//     `parallel_for` runs on another thread, so capturing a mutable local
//     or a member by reference is a data-sharing decision that must be
//     visible in the source: the captured declaration needs a
//     `// zkt-lint: shared(<why>)` annotation explaining the protocol
//     (disjoint index writes, join-before-read, ...). Const locals and
//     by-value / init captures are always fine.
//
// (b) guarded_by. A field annotated `// zkt-lint: guarded_by(mu_)` may only
//     be touched in scopes dominated by a lock of that mutex (lock_guard /
//     unique_lock / scoped_lock / explicit .lock()). Checked across files
//     in the declaring file's directory, which is where a class's method
//     bodies live in this tree.
//
// Config ([rule.concurrency-capture]):
//   submit_calls — member-call names treated as pool submission points.
//   paths        — path prefixes the rule applies to (default "src").
#include <map>
#include <set>
#include <string>

#include "analysis/lint.h"
#include "analysis/symbols.h"

namespace zkt::analysis {

namespace {

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::punct && t.text == s;
}

bool under_any(const std::string& path,
               const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (path.rfind(p, 0) == 0) return true;
  }
  return false;
}

std::string dir_of(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Names blessed for cross-thread sharing: every identifier on a line
/// holding a `shared(...)` annotation (or the line below it, which the
/// annotation also covers). Collected globally so a member annotated in a
/// header blesses captures in the .cpp.
std::set<std::string> collect_shared_names(const LintContext& ctx) {
  std::set<std::string> out;
  for (const AnalyzedFile& file : ctx.files) {
    std::set<int> lines;
    for (const auto& [line, anns] : file.lexed.annotations) {
      for (const Annotation& a : anns) {
        if (a.kind == "shared") {
          lines.insert(line);
          lines.insert(line + 1);
        }
      }
    }
    if (lines.empty()) continue;
    for (const Token& t : file.lexed.tokens) {
      if (t.kind == Tok::ident && lines.count(t.line)) out.insert(t.text);
    }
  }
  return out;
}

/// A guarded_by-annotated field: name, its mutex, and the directory whose
/// files are checked for unlocked touches.
struct GuardedField {
  std::string name;
  std::string mutex;
  std::string dir;
  std::string decl_path;
  int decl_line = 0;
};

std::vector<GuardedField> collect_guarded_fields(const LintContext& ctx) {
  std::vector<GuardedField> out;
  for (const AnalyzedFile& file : ctx.files) {
    for (const auto& [line, anns] : file.lexed.annotations) {
      for (const Annotation& a : anns) {
        if (a.kind != "guarded_by") continue;
        // The declared field is the last identifier before `;` / `=` / `{`
        // on the annotated line (or the next one).
        for (int l : {line, line + 1}) {
          std::string name;
          for (const Token& t : file.lexed.tokens) {
            if (t.line != l) continue;
            if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, "{")) {
              break;
            }
            if (t.kind == Tok::ident) name = t.text;
          }
          if (!name.empty()) {
            out.push_back(
                GuardedField{name, a.arg, dir_of(file.path), file.path, l});
            break;
          }
        }
      }
    }
  }
  return out;
}

/// A `const auto f = [&](...){...}` local is const-qualified but NOT
/// immutable state: invoking it from another thread touches everything the
/// closure captured by reference. Treat ref-closure locals as mutable.
bool is_ref_closure_decl(const std::vector<Token>& toks, const LocalDecl& d) {
  const size_t j = d.tok + 1;
  if (j + 2 >= toks.size() || !is_punct(toks[j], "=")) return false;
  if (!is_punct(toks[j + 1], "[")) return false;
  const Token& c = toks[j + 2];
  return is_punct(c, "&") || (c.kind == Tok::ident && c.text == "this");
}

/// Latest declaration of `name` in `fn` whose name token sits before token
/// index `before`; nullptr when none (or when a declaration *inside* the
/// range [inner_begin, inner_end) shadows it — i.e. the lambda has its own).
const LocalDecl* resolve_local(const FunctionScope& fn,
                               const std::string& name, size_t before,
                               size_t inner_begin, size_t inner_end) {
  const LocalDecl* best = nullptr;
  for (const LocalDecl& d : fn.locals) {
    if (d.name != name) continue;
    if (d.tok > inner_begin && d.tok < inner_end) return nullptr;  // shadowed
    if (d.tok < before && (best == nullptr || d.tok > best->tok)) best = &d;
  }
  return best;
}

/// True when a lock of `mutex` dominates token `use` within the enclosing
/// body: scanning backward at relative brace depth <= 0, the mutex name
/// appears in the vicinity of a lock construct.
bool lock_dominates(const std::vector<Token>& toks, size_t use,
                    size_t body_begin, const std::string& mutex) {
  int rel = 0;
  for (size_t j = use; j > body_begin; --j) {
    const Token& t = toks[j - 1];
    if (is_punct(t, "}")) ++rel;
    if (is_punct(t, "{")) --rel;
    if (rel > 0) continue;
    if (t.kind != Tok::ident || t.text != mutex) continue;
    // `std::lock_guard<std::mutex> lk(mu_)`, `ul.lock()`, `cv.wait(lk)`
    // style evidence within a few tokens back from the mutex name.
    const size_t lo = j >= 12 ? j - 12 : 0;
    for (size_t k = j; k > lo; --k) {
      const Token& w = toks[k - 1];
      if (w.kind == Tok::ident &&
          (w.text == "lock_guard" || w.text == "unique_lock" ||
           w.text == "scoped_lock" || w.text == "lock")) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void check_concurrency_capture(const LintContext& ctx,
                               std::vector<Finding>& findings) {
  const std::string section = "rule.concurrency-capture";
  std::vector<std::string> submits = ctx.config->strs(section, "submit_calls");
  if (submits.empty()) submits = {"submit", "try_submit", "parallel_for"};
  std::vector<std::string> paths = ctx.config->strs(section, "paths");
  if (paths.empty()) paths = {"src"};
  const std::set<std::string> submit_set(submits.begin(), submits.end());

  const std::set<std::string> shared_names = collect_shared_names(ctx);
  const std::vector<GuardedField> guarded = collect_guarded_fields(ctx);

  for (const AnalyzedFile& file : ctx.files) {
    if (!under_any(file.path, paths)) continue;
    const auto& toks = file.lexed.tokens;
    const std::vector<FunctionScope> fns = find_functions(toks);

    // ---- (a) capture discipline at pool submission sites.
    for (const FunctionScope& fn : fns) {
      for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
        if (toks[i].kind != Tok::ident || !submit_set.count(toks[i].text)) {
          continue;
        }
        if (i == 0 ||
            !(is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
          continue;
        }
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
        const size_t args_end = match_forward(toks, i + 1);
        for (size_t j = i + 2; j < args_end; ++j) {
          LambdaInfo lam;
          if (!lambda_intro_at(toks, j) || !parse_lambda(toks, j, &lam)) {
            continue;
          }
          j = lam.body_end;  // do not re-parse nested lambdas twice

          std::set<std::string> flagged;  // one finding per name per lambda

          // Explicit `&x` / `&x = expr` captures.
          for (const Capture& cap : lam.captures) {
            if (cap.kind != Capture::Kind::ref &&
                cap.kind != Capture::Kind::init_ref) {
              continue;
            }
            const LocalDecl* d = resolve_local(fn, cap.name, lam.intro,
                                               lam.body_begin, lam.body_end);
            if (d == nullptr ||
                (d->is_const && !is_ref_closure_decl(toks, *d))) {
              continue;
            }
            if (shared_names.count(cap.name)) continue;
            if (flagged.insert(cap.name).second) {
              findings.push_back(Finding{
                  "concurrency-capture", file.path, cap.line,
                  "lambda passed to pool " + toks[i].text +
                      "() captures mutable local '" + cap.name +
                      "' by reference; annotate its declaration with `// "
                      "zkt-lint: shared(<why>)` or capture by value"});
            }
          }

          // `[&]` default: every enclosing-scope mutable local used in the
          // body is captured by reference.
          if (lam.ref_default) {
            for (size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
              if (toks[k].kind != Tok::ident) continue;
              if (k > 0 && (is_punct(toks[k - 1], ".") ||
                            is_punct(toks[k - 1], "->") ||
                            is_punct(toks[k - 1], "::"))) {
                continue;  // member of some other value
              }
              const LocalDecl* d = resolve_local(fn, toks[k].text, lam.intro,
                                                 lam.body_begin, lam.body_end);
              if (d == nullptr ||
                  (d->is_const && !is_ref_closure_decl(toks, *d))) {
                continue;
              }
              if (shared_names.count(toks[k].text)) continue;
              if (flagged.insert(toks[k].text).second) {
                findings.push_back(Finding{
                    "concurrency-capture", file.path, toks[k].line,
                    "lambda passed to pool " + toks[i].text +
                        "() uses mutable local '" + toks[k].text +
                        "' via [&]; annotate its declaration with `// "
                        "zkt-lint: shared(<why>)`, or capture it by value"});
              }
            }
          }

          // Members reached through a captured `this` (or [&], which
          // implies it). Convention: members end in '_'. A member is
          // blessed by a shared(...) annotation at its declaration or by
          // being guarded_by a mutex (the lock check below owns safety).
          if (lam.captures_this) {
            for (size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
              const Token& t = toks[k];
              if (t.kind != Tok::ident || t.text.size() < 2 ||
                  t.text.back() != '_') {
                continue;
              }
              if (k > 0 && (is_punct(toks[k - 1], ".") ||
                            is_punct(toks[k - 1], "->") ||
                            is_punct(toks[k - 1], "::")) &&
                  !(k > 1 && toks[k - 2].kind == Tok::ident &&
                    toks[k - 2].text == "this")) {
                continue;  // other object's member
              }
              if (resolve_local(fn, t.text, lam.intro, lam.body_begin,
                                lam.body_end) != nullptr) {
                continue;  // actually a local, handled above
              }
              if (shared_names.count(t.text)) continue;
              bool is_guarded = false;
              for (const GuardedField& g : guarded) {
                if (g.name == t.text && g.dir == dir_of(file.path)) {
                  is_guarded = true;
                  break;
                }
              }
              if (is_guarded) continue;
              if (flagged.insert(t.text).second) {
                findings.push_back(Finding{
                    "concurrency-capture", file.path, t.line,
                    "lambda passed to pool " + toks[i].text +
                        "() touches member '" + t.text +
                        "' through a captured this; annotate the member's "
                        "declaration with `// zkt-lint: shared(<why>)` or "
                        "`guarded_by(<mutex>)`"});
              }
            }
          }
        }
      }
    }

    // ---- (b) guarded_by lock discipline.
    const std::string dir = dir_of(file.path);
    for (const GuardedField& g : guarded) {
      if (g.dir != dir) continue;
      for (const FunctionScope& fn : fns) {
        std::set<int> flagged_lines;
        for (size_t k = fn.body_begin + 1; k < fn.body_end; ++k) {
          const Token& t = toks[k];
          if (t.kind != Tok::ident || t.text != g.name) continue;
          if (file.path == g.decl_path && t.line == g.decl_line) continue;
          if (k > 0 && (is_punct(toks[k - 1], ".") ||
                        is_punct(toks[k - 1], "->") ||
                        is_punct(toks[k - 1], "::")) &&
              !(k > 1 && toks[k - 2].kind == Tok::ident &&
                toks[k - 2].text == "this")) {
            continue;  // a different object's field of the same name
          }
          if (lock_dominates(toks, k, fn.body_begin, g.mutex)) continue;
          if (flagged_lines.insert(t.line).second) {
            findings.push_back(Finding{
                "concurrency-capture", file.path, t.line,
                "'" + g.name + "' is guarded_by(" + g.mutex +
                    ") but this scope does not lock it; take the lock or "
                    "suppress with a justification"});
          }
        }
      }
    }
  }
}

}  // namespace zkt::analysis
