// Filesystem loading for zkt-lint: collect C++ sources under the given
// paths, with paths reported relative to the repo root so suppressions,
// configs and diagnostics are machine-independent.
#pragma once

#include <string>
#include <vector>

#include "analysis/lint.h"
#include "common/result.h"

namespace zkt::analysis {

/// Recursively collect *.h / *.hpp / *.cpp / *.cc files under each of
/// `paths` (files are taken as-is). `paths` may be absolute or relative to
/// `repo_root`; the returned SourceFile::path is always repo-root-relative
/// with forward slashes, sorted and deduplicated.
Result<std::vector<SourceFile>> load_tree(const std::string& repo_root,
                                          const std::vector<std::string>& paths);

/// Read one file fully.
Result<std::string> read_file(const std::string& path);

}  // namespace zkt::analysis
