// Lightweight symbol layer for zkt-lint's flow-aware rules.
//
// Still no AST: this layer recovers just enough structure from the token
// stream for intraprocedural reasoning — function/method body extents,
// parameter and local-variable declarations (with constness, so the
// concurrency rule can tell a read-only reference capture from a mutable
// one), and lambda capture lists. Everything here is heuristic in the way
// token-level linting always is; the rules built on top pair it with
// explicit annotations (`// zkt-lint: shared(...)`, `guarded_by(...)`) and
// per-finding suppressions as the escape hatch.
#pragma once

#include <string>
#include <vector>

#include "analysis/token.h"

namespace zkt::analysis {

/// A parameter or block-scoped variable declaration inside one function.
struct LocalDecl {
  std::string name;
  int line = 0;
  size_t tok = 0;          ///< index of the name token in the file's stream
  bool is_const = false;   ///< declaration spells `const` (or `constexpr`)
  bool is_pointer = false; ///< declaration spells `*`
  bool is_param = false;
};

/// One function, method, or constructor body (outermost only: a lambda body
/// belongs to its enclosing function's scope).
struct FunctionScope {
  std::string name;         ///< ident before the parameter list, best-effort
  int line = 0;             ///< line of the opening brace
  size_t header_begin = 0;  ///< first token of the declaration header
  size_t params_begin = 0;  ///< '(' of the parameter list; 0 when absent
  size_t body_begin = 0;    ///< index of '{'
  size_t body_end = 0;      ///< index of the matching '}'
  std::vector<LocalDecl> locals;  ///< parameters, then body declarations
};

/// One entry of a lambda capture list.
struct Capture {
  enum class Kind {
    value_default,  ///< [=]
    ref_default,    ///< [&]
    value,          ///< [x]
    ref,            ///< [&x]
    init_value,     ///< [x = expr]
    init_ref,       ///< [&x = expr]
    this_ptr,       ///< [this]
    star_this,      ///< [*this]
  };
  Kind kind = Kind::value;
  std::string name;  ///< captured or introduced name; "" for defaults/this
  int line = 0;
};

/// A parsed lambda expression.
struct LambdaInfo {
  std::vector<Capture> captures;
  bool ref_default = false;
  bool value_default = false;
  bool captures_this = false;  ///< [this] or [&] (which implies this)
  size_t intro = 0;            ///< index of '['
  size_t body_begin = 0;       ///< index of '{'
  size_t body_end = 0;         ///< index of the matching '}'
};

/// Index of the punctuator matching the opener at `open` ('(', '[' or '{'),
/// or toks.size() when unbalanced.
size_t match_forward(const std::vector<Token>& toks, size_t open);

/// True when the '[' at `i` introduces a lambda rather than a subscript,
/// array declarator, or attribute.
bool lambda_intro_at(const std::vector<Token>& toks, size_t i);

/// Parse the lambda whose introducer '[' sits at `intro`. Returns false when
/// the tokens do not actually form a lambda with a braced body.
bool parse_lambda(const std::vector<Token>& toks, size_t intro,
                  LambdaInfo* out);

/// Find every function body in the file (free functions, methods inside
/// class bodies, TEST(...) macros), outermost only, with parameters and
/// local declarations collected.
std::vector<FunctionScope> find_functions(const std::vector<Token>& toks);

}  // namespace zkt::analysis
