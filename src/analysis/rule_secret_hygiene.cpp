// secret-hygiene: comparisons of digest/key material inside src/crypto must
// be constant time.
//
// memcmp and operator== short-circuit on the first differing byte, so the
// comparison's running time leaks the length of the matching prefix — a
// classic MAC/commitment-forgery oracle (the paper's commitments are exactly
// such MACs over RLogs). Inside the crypto module every comparison whose
// operand names look like secret/digest material must go through
// crypto::ct_equal (src/crypto/ct.h), which XOR-accumulates all bytes before
// reducing to a verdict.
//
// Token-level approximation: flag (a) any call to memcmp/strcmp/strncmp in
// the configured paths, and (b) `==` / `!=` where either operand chain
// contains an identifier matching the configured secret-name patterns
// (substring match). Declarations of operator== and comparisons against
// literals are exempt.
#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace zkt::analysis {

namespace {

constexpr const char* kRule = "secret-hygiene";

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool matches_any(const std::string& ident,
                 const std::vector<std::string>& patterns) {
  const std::string l = lower(ident);
  for (const std::string& p : patterns) {
    if (l.find(p) != std::string::npos) return true;
  }
  return false;
}

/// Collect identifiers of the operand ending at token `i` (walking left over
/// `a.b->c[x]` / `f(x)` chains).
void left_operand_idents(const std::vector<Token>& toks, size_t i,
                         std::vector<std::string>& out) {
  int guard = 16;
  size_t j = i + 1;
  while (j-- > 0 && guard-- > 0) {
    const Token& t = toks[j];
    if (t.kind == Tok::ident) {
      out.push_back(t.text);
      if (j == 0) return;
      const std::string& prev = toks[j - 1].text;
      if (prev == "." || prev == "->" || prev == "::") {
        --j;  // continue through the chain
        continue;
      }
      return;
    }
    if (t.text == ")" || t.text == "]") {
      // Skip the balanced group, then continue with what precedes it.
      const std::string open = t.text == ")" ? "(" : "[";
      const std::string close = t.text;
      int depth = 0;
      while (j < toks.size()) {
        if (toks[j].text == close) ++depth;
        if (toks[j].text == open) {
          if (--depth == 0) break;
        }
        if (j == 0) return;
        --j;
      }
      continue;  // loop decrements j past the opener
    }
    return;
  }
}

/// Collect identifiers of the operand starting at token `i` (walking right
/// over `a.b->c` chains and one balanced group).
void right_operand_idents(const std::vector<Token>& toks, size_t i,
                          std::vector<std::string>& out) {
  int guard = 16;
  size_t j = i;
  while (j < toks.size() && guard-- > 0) {
    const Token& t = toks[j];
    if (t.kind == Tok::ident) {
      out.push_back(t.text);
      if (j + 1 < toks.size()) {
        const std::string& nxt = toks[j + 1].text;
        if (nxt == "." || nxt == "->" || nxt == "::") {
          j += 2;
          continue;
        }
      }
      return;
    }
    if (t.text == "!" || t.text == "*" || t.text == "&" || t.text == "(") {
      ++j;
      continue;
    }
    return;
  }
}

}  // namespace

void check_secret_hygiene(const LintContext& ctx,
                          std::vector<Finding>& findings) {
  const Config& cfg = *ctx.config;
  std::vector<std::string> paths = cfg.strs("rule.secret-hygiene", "paths");
  if (paths.empty()) paths = {"src/crypto"};
  std::vector<std::string> patterns =
      cfg.strs("rule.secret-hygiene", "secret_patterns");
  if (patterns.empty()) {
    patterns = {"secret", "key", "digest", "mac", "nonce", "root", "hash",
                "sig", "seed"};
  }
  std::vector<std::string> banned_calls =
      cfg.strs("rule.secret-hygiene", "banned_calls");
  if (banned_calls.empty()) banned_calls = {"memcmp", "strcmp", "strncmp"};

  for (const AnalyzedFile& file : ctx.files) {
    bool in_scope = false;
    for (const std::string& p : paths) {
      if (starts_with(file.path, p)) in_scope = true;
    }
    if (!in_scope) continue;

    const std::vector<Token>& toks = file.lexed.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];

      if (t.kind == Tok::ident && toks[i + 1].text == "(") {
        for (const std::string& banned : banned_calls) {
          if (t.text == banned) {
            findings.push_back(Finding{
                kRule, file.path, t.line,
                "variable-time '" + t.text +
                    "' in crypto code; use crypto::ct_equal"});
          }
        }
      }

      if (t.text == "==" || t.text == "!=") {
        // Skip operator==/!= declarations and defaulted comparisons.
        if (i > 0 && toks[i - 1].text == "operator") continue;
        // Skip comparisons against literals/nullptr (not secret-dependent
        // in a length-leaking way: a fixed public constant).
        const Token& rhs_tok = toks[i + 1];
        if (rhs_tok.kind == Tok::number || rhs_tok.text == "nullptr") {
          continue;
        }
        std::vector<std::string> idents;
        if (i > 0) left_operand_idents(toks, i - 1, idents);
        right_operand_idents(toks, i + 1, idents);
        bool secret = false;
        for (const std::string& ident : idents) {
          if (matches_any(ident, patterns)) secret = true;
        }
        if (secret) {
          findings.push_back(Finding{
              kRule, file.path, t.line,
              "variable-time comparison of secret-looking operands ('" +
                  (idents.empty() ? std::string("?") : idents.front()) +
                  "'); use crypto::ct_equal"});
        }
      }
    }
  }
}

}  // namespace zkt::analysis
