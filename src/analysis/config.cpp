#include "analysis/config.h"

#include <cctype>

namespace zkt::analysis {

namespace {

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strip a trailing `# comment` (outside quotes).
std::string_view strip_comment(std::string_view s) {
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') in_str = !in_str;
    if (s[i] == '#' && !in_str) return s.substr(0, i);
  }
  return s;
}

Result<std::string> parse_quoted(std::string_view s, int line) {
  s = strip(s);
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') {
    return Error{Errc::parse_error,
                 "expected quoted string at line " + std::to_string(line)};
  }
  return std::string(s.substr(1, s.size() - 2));
}

}  // namespace

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  std::string section;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    line = strip(strip_comment(line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return Error{Errc::parse_error,
                     "bad section header at line " + std::to_string(line_no)};
      }
      section = std::string(strip(line.substr(1, line.size() - 2)));
      continue;
    }

    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Error{Errc::parse_error,
                   "expected key = value at line " + std::to_string(line_no)};
    }
    if (section.empty()) {
      return Error{Errc::parse_error,
                   "key outside any [section] at line " + std::to_string(line_no)};
    }
    const std::string key{strip(line.substr(0, eq))};
    std::string rhs{strip(line.substr(eq + 1))};

    // Multi-line arrays: accumulate until the closing bracket.
    if (!rhs.empty() && rhs.front() == '[') {
      while (rhs.find(']') == std::string::npos && pos <= text.size()) {
        size_t next_eol = text.find('\n', pos);
        if (next_eol == std::string_view::npos) next_eol = text.size();
        std::string_view cont = strip(strip_comment(text.substr(pos, next_eol - pos)));
        pos = next_eol + 1;
        ++line_no;
        rhs += ' ';
        rhs += std::string(cont);
        if (next_eol == text.size()) break;
      }
      const size_t close = rhs.find(']');
      if (close == std::string::npos) {
        return Error{Errc::parse_error,
                     "unterminated array at line " + std::to_string(line_no)};
      }
      std::string_view body = strip(std::string_view(rhs).substr(1, close - 1));
      std::vector<std::string> items;
      size_t i = 0;
      while (i < body.size()) {
        size_t comma = body.find(',', i);
        if (comma == std::string_view::npos) comma = body.size();
        std::string_view item = strip(body.substr(i, comma - i));
        if (!item.empty()) {
          auto s = parse_quoted(item, line_no);
          if (!s.ok()) return s.error();
          items.push_back(std::move(s.value()));
        }
        i = comma + 1;
      }
      cfg.set(section, key, std::move(items));
      continue;
    }

    if (rhs == "true" || rhs == "false") {
      cfg.set(section, key, rhs == "true");
    } else if (!rhs.empty() && rhs.front() == '"') {
      auto s = parse_quoted(rhs, line_no);
      if (!s.ok()) return s.error();
      cfg.set(section, key, std::move(s.value()));
    } else if (!rhs.empty() &&
               (std::isdigit(static_cast<unsigned char>(rhs.front())) ||
                rhs.front() == '-')) {
      cfg.set(section, key, std::stol(rhs));
    } else {
      return Error{Errc::parse_error,
                   "unsupported value at line " + std::to_string(line_no)};
    }
  }
  return cfg;
}

bool Config::has(const std::string& section, const std::string& key) const {
  auto it = sections_.find(section);
  return it != sections_.end() && it->second.values.count(key) > 0;
}

std::string Config::str(const std::string& section, const std::string& key,
                        std::string fallback) const {
  auto it = sections_.find(section);
  if (it == sections_.end()) return fallback;
  auto v = it->second.values.find(key);
  if (v == it->second.values.end()) return fallback;
  if (const auto* s = std::get_if<std::string>(&v->second)) return *s;
  return fallback;
}

bool Config::flag(const std::string& section, const std::string& key,
                  bool fallback) const {
  auto it = sections_.find(section);
  if (it == sections_.end()) return fallback;
  auto v = it->second.values.find(key);
  if (v == it->second.values.end()) return fallback;
  if (const auto* b = std::get_if<bool>(&v->second)) return *b;
  return fallback;
}

long Config::num(const std::string& section, const std::string& key,
                 long fallback) const {
  auto it = sections_.find(section);
  if (it == sections_.end()) return fallback;
  auto v = it->second.values.find(key);
  if (v == it->second.values.end()) return fallback;
  if (const auto* n = std::get_if<long>(&v->second)) return *n;
  return fallback;
}

std::vector<std::string> Config::strs(const std::string& section,
                                      const std::string& key) const {
  auto it = sections_.find(section);
  if (it == sections_.end()) return {};
  auto v = it->second.values.find(key);
  if (v == it->second.values.end()) return {};
  if (const auto* a = std::get_if<std::vector<std::string>>(&v->second)) {
    return *a;
  }
  if (const auto* s = std::get_if<std::string>(&v->second)) return {*s};
  return {};
}

std::vector<std::string> Config::keys(const std::string& section) const {
  auto it = sections_.find(section);
  if (it == sections_.end()) return {};
  return it->second.order;
}

void Config::set(const std::string& section, const std::string& key, Value v) {
  Section& s = sections_[section];
  if (!s.values.count(key)) s.order.push_back(key);
  s.values[key] = std::move(v);
}

}  // namespace zkt::analysis
