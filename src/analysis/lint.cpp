#include "analysis/lint.h"

#include <algorithm>
#include <cstdio>

namespace zkt::analysis {

namespace {

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

size_t LintResult::unsuppressed() const {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed && !f.baselined && f.severity != "warn") ++n;
  }
  return n;
}

std::string LintResult::to_text(bool include_suppressed) const {
  std::string out;
  for (const Finding& f : findings) {
    if (f.suppressed && !include_suppressed) continue;
    out += f.path;
    out += ':';
    out += std::to_string(f.line);
    out += ": [";
    out += f.rule;
    if (f.severity == "warn") out += ":warn";
    out += "] ";
    out += f.message;
    if (f.suppressed) out += " (suppressed)";
    if (f.baselined) out += " (baseline)";
    out += '\n';
  }
  return out;
}

std::string LintResult::to_json() const {
  std::string out = "{\"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ", ";
    first = false;
    out += "{\"rule\": \"";
    json_escape_into(out, f.rule);
    out += "\", \"severity\": \"";
    json_escape_into(out, f.severity);
    out += "\", \"file\": \"";
    json_escape_into(out, f.path);
    out += "\", \"line\": " + std::to_string(f.line);
    out += ", \"suppressed\": ";
    out += f.suppressed ? "true" : "false";
    out += ", \"baselined\": ";
    out += f.baselined ? "true" : "false";
    out += ", \"message\": \"";
    json_escape_into(out, f.message);
    out += "\"}";
  }
  out += "], \"unsuppressed\": " + std::to_string(unsuppressed()) + "}";
  return out;
}

int LintContext::find(const std::string& path) const {
  for (size_t i = 0; i < files.size(); ++i) {
    if (files[i].path == path) return static_cast<int>(i);
  }
  return -1;
}

int LintContext::resolve_include(const std::string& inc) const {
  std::vector<std::string> roots = config->strs("lint", "include_dirs");
  if (roots.empty()) roots = {"src"};
  for (const std::string& root : roots) {
    const int idx = find(root + "/" + inc);
    if (idx >= 0) return idx;
  }
  return -1;
}

std::vector<std::string> rule_names() {
  return {"guest-determinism",  "result-discipline",
          "secret-hygiene",     "layer-dag",
          "untrusted-taint",    "concurrency-capture",
          "deprecation-lifecycle", "obs-catalog"};
}

std::vector<BaselineEntry> parse_baseline(std::string_view text) {
  std::vector<BaselineEntry> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') {
      if (pos > text.size()) break;
      continue;
    }
    const size_t p1 = line.find('|');
    const size_t p2 = p1 == std::string_view::npos
                          ? std::string_view::npos
                          : line.find('|', p1 + 1);
    if (p2 == std::string_view::npos) continue;  // malformed line: skip
    out.push_back(BaselineEntry{std::string(line.substr(0, p1)),
                                std::string(line.substr(p1 + 1, p2 - p1 - 1)),
                                std::string(line.substr(p2 + 1))});
    if (pos > text.size()) break;
  }
  return out;
}

void apply_baseline(const std::vector<BaselineEntry>& baseline,
                    LintResult* result) {
  for (Finding& f : result->findings) {
    for (const BaselineEntry& b : baseline) {
      if (b.path == f.path && b.rule == f.rule && b.message == f.message) {
        f.baselined = true;
        break;
      }
    }
  }
}

std::string to_baseline(const LintResult& result) {
  std::string out =
      "# zkt-lint baseline: pre-existing findings exempted from the gate.\n"
      "# Format: path|rule|message. Regenerate with --write-baseline.\n";
  for (const Finding& f : result.findings) {
    if (f.suppressed || f.severity == "warn") continue;
    out += f.path;
    out += '|';
    out += f.rule;
    out += '|';
    out += f.message;
    out += '\n';
  }
  return out;
}

LintResult run_lint(const Config& config,
                    const std::vector<SourceFile>& files) {
  LintContext ctx;
  ctx.config = &config;
  ctx.files.reserve(files.size());
  for (const SourceFile& f : files) {
    ctx.files.push_back(AnalyzedFile{f.path, lex(f.content), f.content});
  }

  struct RuleEntry {
    const char* name;
    void (*fn)(const LintContext&, std::vector<Finding>&);
  };
  const RuleEntry rules[] = {
      {"guest-determinism", check_guest_determinism},
      {"result-discipline", check_result_discipline},
      {"secret-hygiene", check_secret_hygiene},
      {"layer-dag", check_layer_dag},
      {"untrusted-taint", check_untrusted_taint},
      {"concurrency-capture", check_concurrency_capture},
      {"deprecation-lifecycle", check_deprecation_lifecycle},
      {"obs-catalog", check_obs_catalog},
  };

  LintResult result;
  for (const RuleEntry& rule : rules) {
    if (!config.flag("rule." + std::string(rule.name), "enabled", true)) {
      continue;
    }
    rule.fn(ctx, result.findings);
  }

  // Apply suppressions, per-rule severity, and order diagnostics for stable
  // output.
  for (Finding& f : result.findings) {
    const int idx = ctx.find(f.path);
    if (idx >= 0 && ctx.files[idx].lexed.suppressed(f.rule, f.line)) {
      f.suppressed = true;
    }
    f.severity = config.str("rule." + f.rule, "severity", "error");
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

}  // namespace zkt::analysis
