#include "analysis/lint.h"

#include <algorithm>
#include <cstdio>

namespace zkt::analysis {

namespace {

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

size_t LintResult::unsuppressed() const {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

std::string LintResult::to_text(bool include_suppressed) const {
  std::string out;
  for (const Finding& f : findings) {
    if (f.suppressed && !include_suppressed) continue;
    out += f.path;
    out += ':';
    out += std::to_string(f.line);
    out += ": [";
    out += f.rule;
    out += "] ";
    out += f.message;
    if (f.suppressed) out += " (suppressed)";
    out += '\n';
  }
  return out;
}

std::string LintResult::to_json() const {
  std::string out = "{\"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ", ";
    first = false;
    out += "{\"rule\": \"";
    json_escape_into(out, f.rule);
    out += "\", \"file\": \"";
    json_escape_into(out, f.path);
    out += "\", \"line\": " + std::to_string(f.line);
    out += ", \"suppressed\": ";
    out += f.suppressed ? "true" : "false";
    out += ", \"message\": \"";
    json_escape_into(out, f.message);
    out += "\"}";
  }
  out += "], \"unsuppressed\": " + std::to_string(unsuppressed()) + "}";
  return out;
}

int LintContext::find(const std::string& path) const {
  for (size_t i = 0; i < files.size(); ++i) {
    if (files[i].path == path) return static_cast<int>(i);
  }
  return -1;
}

int LintContext::resolve_include(const std::string& inc) const {
  std::vector<std::string> roots = config->strs("lint", "include_dirs");
  if (roots.empty()) roots = {"src"};
  for (const std::string& root : roots) {
    const int idx = find(root + "/" + inc);
    if (idx >= 0) return idx;
  }
  return -1;
}

std::vector<std::string> rule_names() {
  return {"guest-determinism", "result-discipline", "secret-hygiene",
          "layer-dag"};
}

LintResult run_lint(const Config& config,
                    const std::vector<SourceFile>& files) {
  LintContext ctx;
  ctx.config = &config;
  ctx.files.reserve(files.size());
  for (const SourceFile& f : files) {
    ctx.files.push_back(AnalyzedFile{f.path, lex(f.content)});
  }

  struct RuleEntry {
    const char* name;
    void (*fn)(const LintContext&, std::vector<Finding>&);
  };
  const RuleEntry rules[] = {
      {"guest-determinism", check_guest_determinism},
      {"result-discipline", check_result_discipline},
      {"secret-hygiene", check_secret_hygiene},
      {"layer-dag", check_layer_dag},
  };

  LintResult result;
  for (const RuleEntry& rule : rules) {
    if (!config.flag("rule." + std::string(rule.name), "enabled", true)) {
      continue;
    }
    rule.fn(ctx, result.findings);
  }

  // Apply suppressions and order diagnostics for stable output.
  for (Finding& f : result.findings) {
    const int idx = ctx.find(f.path);
    if (idx >= 0 && ctx.files[idx].lexed.suppressed(f.rule, f.line)) {
      f.suppressed = true;
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

}  // namespace zkt::analysis
