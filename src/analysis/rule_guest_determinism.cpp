// guest-determinism: translation units reachable from the guest roots must
// be deterministic, replayable functions of their Env input.
//
// The zkVM substitution (src/zvm) enforces replayability only by convention:
// a guest that reads a clock, consults the environment, branches on floating
// point, spawns threads, or iterates an unordered container produces traces
// (and therefore journals and claim digests) that differ across runs — which
// silently breaks PR 2's recovery-by-replay and the chain verification the
// paper's Algorithm 1 depends on. This rule computes the include closure of
// the configured guest roots and bans the nondeterminism sources at the
// token level:
//   - banned system headers (<chrono>, <thread>, <random>, <ctime>, ambient
//     I/O headers) and qualified names (std::chrono, std::thread, ...)
//   - banned call identifiers (rand, time, getenv, ...)
//   - float / double tokens (platform- and flag-dependent results)
//   - iteration over std::unordered_* locals/members (hash order is
//     implementation-defined; lookups are fine, ordering is not)
#include <set>
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace zkt::analysis {

namespace {

constexpr const char* kRule = "guest-determinism";

std::vector<std::string> list_or(const Config& cfg, const char* key,
                                 std::vector<std::string> fallback) {
  auto v = cfg.strs("rule.guest-determinism", key);
  return v.empty() ? fallback : v;
}

/// True when `name` names an unordered container (with or without std::).
bool is_unordered(const std::string& name) {
  return name.rfind("unordered_", 0) == 0;
}

}  // namespace

void check_guest_determinism(const LintContext& ctx,
                             std::vector<Finding>& findings) {
  const Config& cfg = *ctx.config;
  const std::vector<std::string> roots =
      cfg.strs("rule.guest-determinism", "roots");
  if (roots.empty()) return;  // not configured for this tree

  const std::vector<std::string> exclude =
      cfg.strs("rule.guest-determinism", "exclude");
  // <mutex> is deliberately not banned: guest-reachable headers may carry
  // host-side registries (ImageRegistry, CommitmentBoard) whose locking
  // never executes inside a guest; a guest cannot *observe* a mutex without
  // threads, and <thread> is banned.
  const std::vector<std::string> banned_headers = list_or(
      cfg, "banned_headers",
      {"chrono", "thread", "random", "ctime", "time.h", "iostream", "fstream",
       "cstdio", "stdio.h", "filesystem", "future"});
  const std::vector<std::string> banned_qualified =
      list_or(cfg, "banned_qualified",
              {"chrono", "thread", "jthread", "random_device", "mt19937",
               "mt19937_64", "cin", "cout", "cerr", "ifstream", "ofstream",
               "fstream", "filesystem", "async"});
  const std::vector<std::string> banned_idents =
      list_or(cfg, "banned_identifiers",
              {"rand", "srand", "random", "drand48", "getenv", "time", "clock",
               "gettimeofday", "clock_gettime", "localtime", "gmtime", "fopen",
               "fread", "fwrite", "printf", "fprintf", "scanf", "getchar"});
  const std::vector<std::string> banned_types =
      list_or(cfg, "banned_types", {"float", "double"});

  const auto in_set = [](const std::vector<std::string>& set,
                         const std::string& s) {
    for (const std::string& e : set) {
      if (e == s) return true;
    }
    return false;
  };

  // ---- Include closure from the roots (project includes only). Excluded
  // files (reviewed host-side interfaces) neither get scanned nor propagate
  // reachability through their own includes.
  std::set<int> reachable;
  std::vector<int> work;
  for (const std::string& root : roots) {
    const int idx = ctx.find(root);
    if (idx >= 0 && !in_set(exclude, ctx.files[idx].path) &&
        reachable.insert(idx).second) {
      work.push_back(idx);
    }
  }
  while (!work.empty()) {
    const int idx = work.back();
    work.pop_back();
    for (const IncludeDirective& inc : ctx.files[idx].lexed.includes) {
      if (inc.angled) continue;
      const int target = ctx.resolve_include(inc.path);
      if (target >= 0 && !in_set(exclude, ctx.files[target].path) &&
          reachable.insert(target).second) {
        work.push_back(target);
      }
    }
  }

  for (const int idx : reachable) {
    const AnalyzedFile& file = ctx.files[idx];

    // Banned system headers.
    for (const IncludeDirective& inc : file.lexed.includes) {
      if (inc.angled && in_set(banned_headers, inc.path)) {
        findings.push_back(Finding{
            kRule, file.path, inc.line,
            "guest-reachable file includes nondeterminism source <" +
                inc.path + ">"});
      }
    }

    const std::vector<Token>& toks = file.lexed.tokens;
    // Names of locals/members declared with an unordered container type in
    // this file (token-level approximation of the declaration).
    std::set<std::string> unordered_vars;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::ident) continue;

      // std::chrono / std::thread / ... (qualified).
      if (t.text == "std" && toks[i + 1].text == "::" && i + 2 < toks.size() &&
          toks[i + 2].kind == Tok::ident) {
        if (in_set(banned_qualified, toks[i + 2].text)) {
          findings.push_back(Finding{
              kRule, file.path, t.line,
              "guest-reachable code uses nondeterministic std::" +
                  toks[i + 2].text});
        }
      }

      // Bare banned identifiers, only when called (`name(`) and not
      // qualified by a project namespace or object (`.name` / `->name` /
      // `ns::name` are member/own functions, not the libc symbol).
      if (toks[i + 1].text == "(" && in_set(banned_idents, t.text)) {
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        if (prev != "." && prev != "->" && prev != "::") {
          findings.push_back(
              Finding{kRule, file.path, t.line,
                      "guest-reachable code calls nondeterministic '" +
                          t.text + "'"});
        }
      }

      // float / double type tokens.
      if (in_set(banned_types, t.text)) {
        findings.push_back(Finding{
            kRule, file.path, t.line,
            "floating point ('" + t.text +
                "') in guest-reachable code; use fixed-point u64 (see "
                "docs/ANALYSIS.md)"});
      }

      // Track unordered container declarations: `unordered_map<...> name`.
      if (is_unordered(t.text) && toks[i + 1].text == "<") {
        int depth = 0;
        size_t j = i + 1;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") {
            if (--depth == 0) break;
          }
          if (toks[j].text == ">>") {
            depth -= 2;
            if (depth <= 0) break;
          }
          if (toks[j].text == ";") break;  // malformed; bail
        }
        if (j + 1 < toks.size() && toks[j + 1].kind == Tok::ident) {
          unordered_vars.insert(toks[j + 1].text);
        }
      }
    }

    // Iteration over unordered containers: `for (... : var)` range-for and
    // `var.begin()` / `var.cbegin()` (find()/end() comparisons are fine —
    // membership is deterministic, traversal order is not).
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == Tok::ident && unordered_vars.count(toks[i].text)) {
        const std::string& nxt = toks[i + 1].text;
        const std::string& nxt2 = toks[i + 2].text;
        if ((nxt == "." || nxt == "->") &&
            (nxt2 == "begin" || nxt2 == "cbegin" || nxt2 == "rbegin")) {
          findings.push_back(Finding{
              kRule, file.path, toks[i].line,
              "iteration over unordered container '" + toks[i].text +
                  "' in guest-reachable code (hash order is "
                  "implementation-defined)"});
        }
      }
      // Range-for: `: var )` where var is unordered.
      if (toks[i].text == ":" && toks[i + 1].kind == Tok::ident &&
          unordered_vars.count(toks[i + 1].text) && toks[i + 2].text == ")") {
        findings.push_back(Finding{
            kRule, file.path, toks[i + 1].line,
            "range-for over unordered container '" + toks[i + 1].text +
                "' in guest-reachable code (hash order is "
                "implementation-defined)"});
      }
    }
  }
}

}  // namespace zkt::analysis
