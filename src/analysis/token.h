// Token-level C++ scanner for zkt-lint.
//
// zkt-lint deliberately works below the AST: a full C++ frontend is neither
// available (the toolchain ships no libclang) nor necessary for the project
// invariants it checks, which are all expressible over tokens, preprocessor
// directives and the include graph. The lexer therefore recognises exactly
// what the rules need: identifiers, punctuators (maximal munch over the C++
// operator set), literals (including raw strings), include directives, and
// `// zkt-lint: allow(...)` suppression comments.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace zkt::analysis {

enum class Tok {
  ident,    ///< identifiers and keywords
  number,   ///< pp-number (integers, floats, user-suffixed)
  str,      ///< string literal (cooked text not preserved)
  chr,      ///< character literal
  punct,    ///< operator / punctuator
  eof,
};

struct Token {
  Tok kind = Tok::eof;
  std::string text;
  int line = 0;
};

/// One `#include` directive.
struct IncludeDirective {
  std::string path;    ///< the spelled target, e.g. "core/guests.h" or "chrono"
  bool angled = false; ///< <...> (system) vs "..." (project)
  int line = 0;
};

/// Lexed view of one source file.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// line -> rules suppressed on that line (from `// zkt-lint: allow(rule)`;
  /// a suppression comment covers its own line and the next one, so it can
  /// sit at end of line or on the line above).
  std::map<int, std::set<std::string>> allow_lines;
  /// rules suppressed for the whole file (`// zkt-lint: allow-file(rule)`).
  std::set<std::string> allow_file;

  bool suppressed(const std::string& rule, int line) const {
    if (allow_file.count(rule) || allow_file.count("*")) return true;
    for (int l : {line, line - 1}) {
      auto it = allow_lines.find(l);
      if (it != allow_lines.end() &&
          (it->second.count(rule) || it->second.count("*"))) {
        return true;
      }
    }
    return false;
  }
};

/// Lex a whole file. Never fails: unrecognised bytes become single-char
/// punctuators, so the rules degrade gracefully on exotic input.
LexedFile lex(std::string_view source);

}  // namespace zkt::analysis
