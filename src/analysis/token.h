// Token-level C++ scanner for zkt-lint.
//
// zkt-lint deliberately works below the AST: a full C++ frontend is neither
// available (the toolchain ships no libclang) nor necessary for the project
// invariants it checks, which are all expressible over tokens, preprocessor
// directives and the include graph. The lexer therefore recognises exactly
// what the rules need: identifiers, punctuators (maximal munch over the C++
// operator set), literals (including raw strings, whose content is preserved
// so the obs-catalog rule can read metric names), include directives, and
// `// zkt-lint: ...` marker comments — `allow(...)` / `allow-file(...)`
// suppressions plus the flow-rule annotations `shared(...)`,
// `guarded_by(...)` and `remove-after(...)`.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace zkt::analysis {

enum class Tok {
  ident,    ///< identifiers and keywords
  number,   ///< pp-number (integers, floats, user-suffixed)
  str,      ///< string literal (value = uncooked content between the quotes)
  chr,      ///< character literal
  punct,    ///< operator / punctuator
  eof,
};

struct Token {
  Tok kind = Tok::eof;
  /// Spelling for ident/number/punct tokens. Deliberately EMPTY for str/chr:
  /// rules match code shape with `text == "{"`-style comparisons, and a
  /// literal containing "{" must never count toward brace depth.
  std::string text;
  /// Uncooked literal content (between the quotes, escapes unprocessed) for
  /// str/chr tokens; empty otherwise. The obs-catalog rule reads metric
  /// names from here.
  std::string value;
  int line = 0;
};

/// One `#include` directive.
struct IncludeDirective {
  std::string path;    ///< the spelled target, e.g. "core/guests.h" or "chrono"
  bool angled = false; ///< <...> (system) vs "..." (project)
  int line = 0;
};

/// A non-suppression `// zkt-lint: <kind>(<arg>)` marker. Kinds the rules
/// understand today: `shared` (declaration may be captured by reference into
/// pool lambdas; arg = why that is safe), `guarded_by` (field may only be
/// touched under the named mutex; arg = the mutex member) and
/// `remove-after` (deprecation deadline; arg = `PR <n>`). Like suppressions,
/// an annotation covers its own line and the next one.
struct Annotation {
  std::string kind;
  std::string arg;  ///< raw text between the parentheses, trimmed
  int line = 0;
};

/// Lexed view of one source file.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// line -> rules suppressed on that line (from `// zkt-lint: allow(rule)`;
  /// a suppression comment covers its own line and the next one, so it can
  /// sit at end of line or on the line above).
  std::map<int, std::set<std::string>> allow_lines;
  /// rules suppressed for the whole file (`// zkt-lint: allow-file(rule)`).
  std::set<std::string> allow_file;
  /// line -> non-suppression annotations attached to that line.
  std::map<int, std::vector<Annotation>> annotations;

  bool suppressed(const std::string& rule, int line) const {
    if (allow_file.count(rule) || allow_file.count("*")) return true;
    for (int l : {line, line - 1}) {
      auto it = allow_lines.find(l);
      if (it != allow_lines.end() &&
          (it->second.count(rule) || it->second.count("*"))) {
        return true;
      }
    }
    return false;
  }

  /// The first `kind` annotation attached to `line` (the annotation may sit
  /// on the line itself or the line above), or nullptr.
  const Annotation* annotation(const std::string& kind, int line) const {
    for (int l : {line, line - 1}) {
      auto it = annotations.find(l);
      if (it == annotations.end()) continue;
      for (const Annotation& a : it->second) {
        if (a.kind == kind) return &a;
      }
    }
    return nullptr;
  }
};

/// Lex a whole file. Never fails: unrecognised bytes become single-char
/// punctuators, so the rules degrade gracefully on exotic input.
LexedFile lex(std::string_view source);

}  // namespace zkt::analysis
