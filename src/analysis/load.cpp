#include "analysis/load.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace zkt::analysis {

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string rel_to(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty()) ? p.generic_string() : rel.generic_string();
  return s;
}

}  // namespace

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{Errc::io_error, "cannot open " + path};
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Error{Errc::io_error, "read failed for " + path};
  return ss.str();
}

Result<std::vector<SourceFile>> load_tree(
    const std::string& repo_root, const std::vector<std::string>& paths) {
  const fs::path root(repo_root);
  std::vector<fs::path> collected;
  for (const std::string& raw : paths) {
    fs::path p(raw);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          collected.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      collected.push_back(p);
    } else {
      return Error{Errc::not_found, "no such file or directory: " + raw};
    }
  }

  std::vector<SourceFile> out;
  out.reserve(collected.size());
  for (const fs::path& p : collected) {
    auto content = read_file(p.string());
    if (!content.ok()) return content.error();
    out.push_back(SourceFile{rel_to(root, p), std::move(content.value())});
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const SourceFile& a, const SourceFile& b) {
                          return a.path == b.path;
                        }),
            out.end());
  return out;
}

}  // namespace zkt::analysis
