// deprecation-lifecycle: every [[deprecated]] symbol must carry a
// `// zkt-lint: remove-after(PR <n>)` annotation, and once the repo's
// current PR number reaches <n> the shim is a finding. This mechanizes the
// one-release shim policy that used to live in reviewer memory: a
// compatibility alias lands together with its expiry date, and the linter —
// not a human — notices when the date passes.
//
// Config ([rule.deprecation-lifecycle]):
//   current_pr — this repo's PR sequence number, bumped each PR
//                (falls back to [lint] current_pr).
#include <string>

#include "analysis/lint.h"

namespace zkt::analysis {

namespace {

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::punct && t.text == s;
}

/// Parse "PR <n>" (case-sensitive, whitespace-tolerant); -1 on mismatch.
long parse_pr_arg(const std::string& arg) {
  size_t i = 0;
  if (arg.rfind("PR", 0) != 0) return -1;
  i = 2;
  while (i < arg.size() && arg[i] == ' ') ++i;
  if (i >= arg.size()) return -1;
  long n = 0;
  bool any = false;
  for (; i < arg.size(); ++i) {
    if (arg[i] < '0' || arg[i] > '9') return -1;
    n = n * 10 + (arg[i] - '0');
    any = true;
  }
  return any ? n : -1;
}

}  // namespace

void check_deprecation_lifecycle(const LintContext& ctx,
                                 std::vector<Finding>& findings) {
  const std::string section = "rule.deprecation-lifecycle";
  long current_pr = ctx.config->num(section, "current_pr", -1);
  if (current_pr < 0) current_pr = ctx.config->num("lint", "current_pr", -1);

  for (const AnalyzedFile& file : ctx.files) {
    const auto& toks = file.lexed.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      // `[[` lexes as two single brackets.
      if (!(is_punct(toks[i], "[") && is_punct(toks[i + 1], "[") &&
            toks[i + 2].kind == Tok::ident &&
            toks[i + 2].text == "deprecated")) {
        continue;
      }
      const int line = toks[i].line;
      // The annotation may sit on the attribute's line, the line above, or
      // the declaration line below a standalone attribute line.
      const Annotation* ann =
          file.lexed.annotation("remove-after", line);
      if (ann == nullptr) {
        ann = file.lexed.annotation("remove-after", line + 1);
      }
      if (ann == nullptr) {
        findings.push_back(Finding{
            "deprecation-lifecycle", file.path, line,
            "[[deprecated]] symbol has no `// zkt-lint: remove-after(PR "
            "<n>)` annotation; every shim must declare its expiry"});
        continue;
      }
      const long expiry = parse_pr_arg(ann->arg);
      if (expiry < 0) {
        findings.push_back(Finding{
            "deprecation-lifecycle", file.path, ann->line,
            "malformed remove-after argument '" + ann->arg +
                "' (expected `PR <n>`)"});
        continue;
      }
      if (current_pr >= 0 && current_pr >= expiry) {
        findings.push_back(Finding{
            "deprecation-lifecycle", file.path, line,
            "expired shim: marked remove-after(PR " + std::to_string(expiry) +
                ") and the current PR is " + std::to_string(current_pr) +
                "; delete the deprecated symbol and migrate call sites"});
      }
    }
  }
}

}  // namespace zkt::analysis
