// LogStore: embedded, thread-safe, append-only table store — the stand-in
// for the shared PostgreSQL backend in the paper's evaluation setup.
//
// Routers (producer threads) append RLog batches; the commitment scheduler
// appends published commitments; the aggregator scans by window. Rows are
// opaque payloads addressed by (table, k1, k2) where k1 is typically the
// commitment-window id and k2 the router id.
//
// Durability: when configured with a WAL path, every append is framed and
// CRC-protected on disk and recover() replays it after a restart, truncating
// at the first corrupt frame (standard WAL torn-write handling). Frames
// carry the row's per-table id, so a WAL that survives a crash between
// checkpoint()'s snapshot rename and its WAL truncation replays without
// duplicating rows already in the snapshot.
//
// Failure testing: set_fault_injector() installs a store::FaultInjector
// whose armed fault points make appends, flushes, scans and checkpoints
// fail deterministically (see store/fault.h and docs/RECOVERY.md).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "store/fault.h"

namespace zkt::store {

/// CRC-32 (IEEE 802.3, reflected) over a byte span.
u32 crc32(BytesView data);

struct StoreConfig {
  /// Empty = in-memory only.
  std::string wal_path = {};
  /// Snapshot file used by checkpoint(); defaults to wal_path + ".snap".
  std::string snapshot_path = {};
  /// fsync after every append (durable but slow; off for benchmarks).
  bool fsync_each_append = false;
};

struct StoredRow {
  u64 id = 0;  ///< per-table monotonically increasing row id
  u64 k1 = 0;
  u64 k2 = 0;
  Bytes payload;
};

class LogStore {
 public:
  struct Stats {
    u64 appends = 0;
    u64 wal_bytes = 0;
    u64 recovered_rows = 0;
    u64 truncated_frames = 0;
    u64 checkpoints = 0;
    u64 snapshot_rows = 0;  ///< rows loaded from the snapshot at recover()
    /// WAL frames skipped at recover() because the snapshot already held
    /// their row (possible after a crash between snapshot rename and WAL
    /// truncation).
    u64 deduped_frames = 0;
  };

  explicit LogStore(StoreConfig config = {});
  ~LogStore();

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Append a row; returns its row id. Thread-safe.
  Result<u64> append(std::string_view table, u64 k1, u64 k2,
                     BytesView payload);

  /// All rows of `table` with k1 in [k1_min, k1_max], in append order.
  std::vector<StoredRow> scan(std::string_view table, u64 k1_min,
                              u64 k1_max) const;

  /// All rows of `table` with exact (k1, k2).
  std::vector<StoredRow> scan_exact(std::string_view table, u64 k1,
                                    u64 k2) const;

  /// Visit every row of `table` with k1 in [k1_min, k1_max], in append
  /// order, without copying payloads (the hot-path alternative to scan).
  /// `fn` runs under the store lock: it must not call back into the store.
  /// Fails (io_error) when a scan fault is injected — callers on the
  /// aggregation path surface this instead of treating it as "no rows".
  Status for_each(std::string_view table, u64 k1_min, u64 k1_max,
                  const std::function<void(const StoredRow&)>& fn) const;

  /// The most recently appended row with the given k1 (any k2).
  std::optional<StoredRow> latest(std::string_view table, u64 k1) const;

  /// The most recently appended row in the table.
  std::optional<StoredRow> last_row(std::string_view table) const;

  u64 row_count(std::string_view table) const;
  std::vector<std::string> table_names() const;
  Stats stats() const;

  /// Load the snapshot (if present), then replay the WAL file (if
  /// configured) into memory. Call on a fresh LogStore before appending.
  Status recover();

  /// Compact durability: atomically write all tables to the snapshot file
  /// and truncate the WAL, bounding recovery time and disk growth. Safe to
  /// call at any quiescent point (commitment-window boundaries, say).
  Status checkpoint();

  /// Drop every row of `table` with k1 <= k1_max (e.g. raw logs whose
  /// window has been aggregated under proof — the paper's "logs are
  /// ephemeral" retention model; the commitments and receipts stay).
  /// Durable stores must checkpoint() afterwards to reclaim disk.
  /// Returns the number of rows dropped.
  u64 drop_rows(std::string_view table, u64 k1_max);

  /// Install (or clear, with nullptr) a fault injector. Not owned; must
  /// outlive the store or be cleared first. Testing hook — production
  /// stores never set one.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

 private:
  struct Table {
    std::vector<StoredRow> rows;
  };

  Status wal_append_locked(std::string_view table, const StoredRow& row);

  StoreConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Table, std::less<>> tables_;
  Stats stats_;
  std::FILE* wal_file_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

// Conventional table names used by the telemetry pipeline.
inline constexpr const char* kTableRlogs = "rlogs";
inline constexpr const char* kTableCommitments = "commitments";
inline constexpr const char* kTableClogs = "clogs";
inline constexpr const char* kTableReceipts = "receipts";
/// Per-round prover chain snapshots (serialized core::ChainSnapshot,
/// k1 = window id, k2 = round id) — what ProviderPipeline::recover() resumes
/// from.
inline constexpr const char* kTableChainState = "chain_state";
/// Sharded-mode counterpart of kTableChainState: serialized
/// core::ShardedChainSnapshot rows (k1 = window id, k2 = round id). A store
/// holds chain_state rows or shard_state rows, never both — mixing the
/// single-chain and sharded pipelines over one store is a recovery error.
inline constexpr const char* kTableShardState = "shard_state";
/// Per-shard aggregation receipts of sharded rounds (k1 = window id,
/// k2 = shard id; latest row per (window, shard) wins on recovery).
inline constexpr const char* kTableShardReceipts = "shard_receipts";
/// Join-tree seals of folded sharded rounds (k1 = window id, k2 = round
/// id) — one receipt per round that transitively verifies every shard
/// receipt of that round (see core/join.h).
inline constexpr const char* kTableTreeSeals = "tree_seals";
/// Epoch-ladder seals of the single-chain pipeline (serialized
/// core::EpochSeal rows, k1 = ladder level, k2 = start round; latest row per
/// key wins on recovery). Append-only — superseded levels keep their rows;
/// recover() re-validates each seal it adopts and re-folds any level the
/// store is missing, so a crash mid-ladder-persist loses no soundness.
inline constexpr const char* kTableEpochSeals = "epoch_seals";

}  // namespace zkt::store
