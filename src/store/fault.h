// FaultInjector: deterministic storage-fault injection for LogStore.
//
// Crash-safety is only trustworthy if every failure path is exercised, and
// real disk faults don't arrive on schedule. LogStore therefore exposes a
// small set of named fault points (WAL append, torn final frame, fsync,
// scans, the three checkpoint crash windows) and consults an optional
// injector at each one. Tests arm a point with a hit countdown — "let N
// operations pass, then fail once" — and can sweep every (point, countdown)
// pair to prove that each injected crash either recovers fully or surfaces
// a typed Errc (see docs/RECOVERY.md for the crash matrix).
//
// The injector is passive: arming a point never touches the store. It is
// thread-safe, matching LogStore's concurrent producers.
#pragma once

#include <array>
#include <mutex>
#include <optional>

#include "common/bytes.h"

namespace zkt::store {

enum class FaultPoint : u8 {
  /// Fail a WAL frame write before any bytes reach the file.
  wal_append = 0,
  /// Write only a prefix of the WAL frame, then fail — the on-disk tail is
  /// torn exactly as a mid-write crash would leave it.
  wal_torn_write,
  /// Fail the flush after a fully written WAL frame (the frame is on disk,
  /// but the append reports failure — the classic fsync ambiguity).
  fsync,
  /// Fail a read-path visit (LogStore::for_each).
  scan,
  /// Fail while writing the snapshot temp file (a partial .tmp is left).
  checkpoint_snapshot_write,
  /// Fail after the temp file is complete, before the atomic rename: the
  /// old snapshot and the full WAL remain authoritative.
  checkpoint_rename,
  /// Fail after the rename, before the WAL truncation: the new snapshot and
  /// the stale WAL coexist (replay must deduplicate by row id).
  checkpoint_wal_truncate,
};

inline constexpr size_t kFaultPointCount = 7;

const char* fault_point_name(FaultPoint point);

class FaultInjector {
 public:
  /// Arm `point`: let `after_n` hits pass, then fire on the next one.
  /// One-shot — a fired plan disarms itself. Re-arming overwrites.
  void arm(FaultPoint point, u64 after_n = 0);

  void disarm(FaultPoint point);
  void disarm_all();

  /// Called by LogStore at each instrumented operation. Returns true when
  /// the fault fires (and consumes the plan).
  bool fire(FaultPoint point);

  /// Total faults fired since construction.
  u64 injected() const;

  bool armed(FaultPoint point) const;

 private:
  mutable std::mutex mutex_;
  /// Remaining passes before firing; nullopt = disarmed.
  std::array<std::optional<u64>, kFaultPointCount> plans_;
  u64 injected_ = 0;
};

}  // namespace zkt::store
