#include "store/logstore.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "common/serial.h"

namespace zkt::store {

u32 crc32(BytesView data) {
  static const auto table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  u32 c = 0xFFFFFFFFu;
  for (u8 b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

namespace {
// "ZKW2": v2 frames carry the row's per-table id so replay can skip rows a
// checkpoint snapshot already holds (crash between rename and truncation).
constexpr u32 kWalMagic = 0x5A4B5732;
constexpr u32 kSnapMagic = 0x5A4B5331;  // "ZKS1"
}

LogStore::LogStore(StoreConfig config) : config_(std::move(config)) {
  if (config_.snapshot_path.empty() && !config_.wal_path.empty()) {
    config_.snapshot_path = config_.wal_path + ".snap";
  }
}

LogStore::~LogStore() {
  if (wal_file_ != nullptr) std::fclose(wal_file_);
}

Status LogStore::recover() {
  if (config_.wal_path.empty()) return {};
  std::lock_guard<std::mutex> lock(mutex_);

  // Load the snapshot first (a compacted prefix of history); the WAL holds
  // only appends made after the last checkpoint.
  if (std::FILE* f = std::fopen(config_.snapshot_path.c_str(), "rb")) {
    Bytes contents;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      contents.insert(contents.end(), buf, buf + n);
    }
    std::fclose(f);

    Reader r(contents);
    auto magic = r.u32v();
    if (!magic.ok() || magic.value() != kSnapMagic) {
      return Error{Errc::parse_error, "bad snapshot magic"};
    }
    auto n_tables = r.varint();
    if (!n_tables.ok()) return n_tables.error();
    for (u64 t = 0; t < n_tables.value(); ++t) {
      auto name = r.str();
      if (!name.ok()) return name.error();
      auto n_rows = r.varint();
      if (!n_rows.ok()) return n_rows.error();
      auto& table = tables_[name.value()];
      for (u64 i = 0; i < n_rows.value(); ++i) {
        auto k1 = r.u64v();
        auto k2 = k1.ok() ? r.u64v() : Result<u64>(Errc::parse_error);
        auto payload = k2.ok() ? r.blob() : Result<Bytes>(Errc::parse_error);
        auto crc = payload.ok() ? r.u32v() : Result<u32>(Errc::parse_error);
        if (!crc.ok() || crc32(payload.value()) != crc.value()) {
          return Error{Errc::parse_error, "snapshot row failed CRC"};
        }
        StoredRow row;
        row.id = table.rows.size();
        row.k1 = k1.value();
        row.k2 = k2.value();
        row.payload = std::move(payload.value());
        table.rows.push_back(std::move(row));
        ++stats_.snapshot_rows;
      }
    }
    if (!r.done()) {
      return Error{Errc::parse_error, "trailing snapshot bytes"};
    }
  }

  // Replay an existing WAL.
  if (std::FILE* f = std::fopen(config_.wal_path.c_str(), "rb")) {
    Bytes contents;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      contents.insert(contents.end(), buf, buf + n);
    }
    std::fclose(f);

    Reader r(contents);
    while (!r.done()) {
      const size_t frame_start = r.position();
      auto magic = r.u32v();
      if (!magic.ok() || magic.value() != kWalMagic) {
        ++stats_.truncated_frames;
        break;
      }
      auto table = r.str();
      auto id = table.ok() ? r.u64v() : Result<u64>(Errc::parse_error);
      auto k1 = id.ok() ? r.u64v() : Result<u64>(Errc::parse_error);
      auto k2 = k1.ok() ? r.u64v() : Result<u64>(Errc::parse_error);
      Result<Bytes> payload =
          k2.ok() ? r.blob() : Result<Bytes>(Errc::parse_error);
      auto crc = payload.ok() ? r.u32v() : Result<u32>(Errc::parse_error);
      if (!crc.ok()) {
        ++stats_.truncated_frames;
        break;
      }
      if (crc32(payload.value()) != crc.value()) {
        ZKT_LOG(warn) << "WAL frame at offset " << frame_start
                      << " failed CRC; truncating";
        ++stats_.truncated_frames;
        break;
      }
      auto& t = tables_[std::string(table.value())];
      if (id.value() < t.rows.size()) {
        // The snapshot already holds this row — the WAL survived a crash
        // between checkpoint()'s rename and its truncation.
        ++stats_.deduped_frames;
        continue;
      }
      if (id.value() > t.rows.size()) {
        ZKT_LOG(warn) << "WAL frame at offset " << frame_start
                      << " skips row ids (have " << t.rows.size()
                      << ", frame claims " << id.value() << "); truncating";
        ++stats_.truncated_frames;
        break;
      }
      StoredRow row;
      row.id = t.rows.size();
      row.k1 = k1.value();
      row.k2 = k2.value();
      row.payload = std::move(payload.value());
      t.rows.push_back(std::move(row));
      ++stats_.recovered_rows;
    }
  }

  wal_file_ = std::fopen(config_.wal_path.c_str(), "ab");
  if (wal_file_ == nullptr) {
    return Error{Errc::io_error, "cannot open WAL for append: " +
                                     config_.wal_path};
  }
  return {};
}

Status LogStore::wal_append_locked(std::string_view table,
                                   const StoredRow& row) {
  if (wal_file_ == nullptr) return {};
  if (faults_ != nullptr && faults_->fire(FaultPoint::wal_append)) {
    return Error{Errc::io_error, "injected fault: WAL append"};
  }
  Writer w;
  w.u32v(kWalMagic);
  w.str(table);
  w.u64v(row.id);
  w.u64v(row.k1);
  w.u64v(row.k2);
  w.blob(row.payload);
  w.u32v(crc32(row.payload));
  const auto& frame = w.bytes();
  if (faults_ != nullptr && faults_->fire(FaultPoint::wal_torn_write)) {
    // Leave exactly what a mid-write crash would: a prefix of the frame on
    // disk and a dead process. Closing the WAL makes every later append
    // fail until a fresh LogStore recover()s — appending past a torn frame
    // would make the tail unreadable.
    const size_t torn = frame.size() / 2;
    std::fwrite(frame.data(), 1, torn, wal_file_);
    std::fflush(wal_file_);
    std::fclose(wal_file_);
    wal_file_ = nullptr;
    return Error{Errc::io_error, "injected fault: torn WAL write (crashed)"};
  }
  if (std::fwrite(frame.data(), 1, frame.size(), wal_file_) != frame.size()) {
    return Error{Errc::io_error, "WAL write failed"};
  }
  if (faults_ != nullptr && faults_->fire(FaultPoint::fsync)) {
    return Error{Errc::io_error, "injected fault: fsync"};
  }
  if (config_.fsync_each_append) {
    std::fflush(wal_file_);
  }
  stats_.wal_bytes += frame.size();
  return {};
}

Result<u64> LogStore::append(std::string_view table, u64 k1, u64 k2,
                             BytesView payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!config_.wal_path.empty() && wal_file_ == nullptr) {
    return Error{Errc::io_error, "recover() must be called before append"};
  }
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    it = tables_.emplace(std::string(table), Table{}).first;
  }
  StoredRow row;
  row.id = it->second.rows.size();
  row.k1 = k1;
  row.k2 = k2;
  row.payload.assign(payload.begin(), payload.end());
  ZKT_TRY(wal_append_locked(table, row));
  const u64 id = row.id;
  it->second.rows.push_back(std::move(row));
  ++stats_.appends;
  return id;
}

std::vector<StoredRow> LogStore::scan(std::string_view table, u64 k1_min,
                                      u64 k1_max) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StoredRow> out;
  auto it = tables_.find(table);
  if (it == tables_.end()) return out;
  for (const auto& row : it->second.rows) {
    if (row.k1 >= k1_min && row.k1 <= k1_max) out.push_back(row);
  }
  return out;
}

std::vector<StoredRow> LogStore::scan_exact(std::string_view table, u64 k1,
                                            u64 k2) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StoredRow> out;
  auto it = tables_.find(table);
  if (it == tables_.end()) return out;
  for (const auto& row : it->second.rows) {
    if (row.k1 == k1 && row.k2 == k2) out.push_back(row);
  }
  return out;
}

Status LogStore::for_each(
    std::string_view table, u64 k1_min, u64 k1_max,
    const std::function<void(const StoredRow&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (faults_ != nullptr && faults_->fire(FaultPoint::scan)) {
    return Error{Errc::io_error, "injected fault: scan"};
  }
  auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  for (const auto& row : it->second.rows) {
    if (row.k1 >= k1_min && row.k1 <= k1_max) fn(row);
  }
  return {};
}

std::optional<StoredRow> LogStore::latest(std::string_view table,
                                          u64 k1) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return std::nullopt;
  for (auto rit = it->second.rows.rbegin(); rit != it->second.rows.rend();
       ++rit) {
    if (rit->k1 == k1) return *rit;
  }
  return std::nullopt;
}

std::optional<StoredRow> LogStore::last_row(std::string_view table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end() || it->second.rows.empty()) return std::nullopt;
  return it->second.rows.back();
}

u64 LogStore::row_count(std::string_view table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.rows.size();
}

std::vector<std::string> LogStore::table_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

LogStore::Stats LogStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

u64 LogStore::drop_rows(std::string_view table, u64 k1_max) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return 0;
  auto& rows = it->second.rows;
  const size_t before = rows.size();
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [k1_max](const StoredRow& row) {
                              return row.k1 <= k1_max;
                            }),
             rows.end());
  return before - rows.size();
}

Status LogStore::checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.wal_path.empty()) return {};  // in-memory store: nothing to do
  if (wal_file_ == nullptr) {
    return Error{Errc::io_error, "recover() must run before checkpoint"};
  }

  Writer w;
  w.u32v(kSnapMagic);
  w.varint(tables_.size());
  for (const auto& [name, table] : tables_) {
    w.str(name);
    w.varint(table.rows.size());
    for (const auto& row : table.rows) {
      w.u64v(row.k1);
      w.u64v(row.k2);
      w.blob(row.payload);
      w.u32v(crc32(row.payload));
    }
  }

  // Write-then-rename for atomicity, then truncate the WAL: a crash before
  // the rename keeps the old snapshot + full WAL; after it, the new
  // snapshot + stale WAL, whose frames replay dedupes by row id.
  const std::string tmp = config_.snapshot_path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Error{Errc::io_error, "cannot write snapshot: " + tmp};
    }
    const auto& bytes = w.bytes();
    if (faults_ != nullptr &&
        faults_->fire(FaultPoint::checkpoint_snapshot_write)) {
      // A partial .tmp, as a crash mid-write would leave; recover() never
      // reads it.
      std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
      std::fclose(f);
      return Error{Errc::io_error, "injected fault: snapshot write"};
    }
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fflush(f);
    std::fclose(f);
    if (written != bytes.size()) {
      return Error{Errc::io_error, "short snapshot write"};
    }
  }
  if (faults_ != nullptr && faults_->fire(FaultPoint::checkpoint_rename)) {
    return Error{Errc::io_error, "injected fault: snapshot rename"};
  }
  if (std::rename(tmp.c_str(), config_.snapshot_path.c_str()) != 0) {
    return Error{Errc::io_error, "snapshot rename failed"};
  }
  if (faults_ != nullptr &&
      faults_->fire(FaultPoint::checkpoint_wal_truncate)) {
    return Error{Errc::io_error, "injected fault: WAL truncation"};
  }
  std::fclose(wal_file_);
  wal_file_ = std::fopen(config_.wal_path.c_str(), "wb");
  if (wal_file_ == nullptr) {
    return Error{Errc::io_error, "cannot truncate WAL"};
  }
  ++stats_.checkpoints;
  return {};
}

}  // namespace zkt::store
