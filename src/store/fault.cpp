#include "store/fault.h"

#include "obs/metrics.h"

namespace zkt::store {

const char* fault_point_name(FaultPoint point) {
  switch (point) {
    case FaultPoint::wal_append: return "wal_append";
    case FaultPoint::wal_torn_write: return "wal_torn_write";
    case FaultPoint::fsync: return "fsync";
    case FaultPoint::scan: return "scan";
    case FaultPoint::checkpoint_snapshot_write:
      return "checkpoint_snapshot_write";
    case FaultPoint::checkpoint_rename: return "checkpoint_rename";
    case FaultPoint::checkpoint_wal_truncate:
      return "checkpoint_wal_truncate";
  }
  return "unknown";
}

void FaultInjector::arm(FaultPoint point, u64 after_n) {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_[static_cast<size_t>(point)] = after_n;
}

void FaultInjector::disarm(FaultPoint point) {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_[static_cast<size_t>(point)].reset();
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& plan : plans_) plan.reset();
}

bool FaultInjector::fire(FaultPoint point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& plan = plans_[static_cast<size_t>(point)];
  if (!plan.has_value()) return false;
  if (*plan > 0) {
    --*plan;
    return false;
  }
  plan.reset();
  ++injected_;
  obs::Registry::instance().counter("store.faults_injected").add(1);
  return true;
}

u64 FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

bool FaultInjector::armed(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_[static_cast<size_t>(point)].has_value();
}

}  // namespace zkt::store
