// zkt-sim: run the NetFlow network simulator and emit the artifacts a
// provider would hold — the raw-log store (WAL) and the public commitment
// board file. These feed zkt-prove / zkt-verify.
//
// Usage:
//   zkt-sim --out-dir DIR [--routers 4] [--window-ms 5000]
//           [--packets 30000] [--flows 150] [--duration-ms 25000]
//           [--workload zipf|sla|neutrality] [--seed 42] [--path-length 2]
//           [--metrics] [--metrics-json [PATH]] [--metrics-every-ms N]
//
// --metrics-every-ms dumps the sim.* metrics table to stderr every N ms
// while the simulation runs; --metrics prints it once at the end;
// --metrics-json writes the JSON snapshot (default DIR/sim_metrics.json).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/flags.h"
#include "core/io.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

using namespace zkt;

namespace {

/// Dumps the metrics table to stderr every `period_ms` until stopped.
class PeriodicMetricsDump {
 public:
  explicit PeriodicMetricsDump(u64 period_ms) {
    if (period_ms == 0) return;
    thread_ = std::thread([this, period_ms] {
      std::unique_lock lock(mu_);
      while (!stop_) {
        if (cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                         [this] { return stop_; })) {
          return;
        }
        std::fprintf(stderr, "--- metrics ---\n%s",
                     obs::Registry::instance().snapshot().to_table().c_str());
      }
    });
  }

  ~PeriodicMetricsDump() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string out_dir = flags.get("out-dir", "zkt-data");
  std::filesystem::create_directories(out_dir);
  const std::string wal_path = out_dir + "/rlogs.wal";
  const std::string commitments_path = out_dir + "/commitments.bin";
  std::filesystem::remove(wal_path);

  store::LogStore logs(store::StoreConfig{.wal_path = wal_path});
  if (auto s = logs.recover(); !s.ok()) {
    std::fprintf(stderr, "store: %s\n", s.to_string().c_str());
    return 1;
  }

  core::CommitmentBoard board;
  sim::SimConfig config;
  config.router_count = static_cast<u32>(flags.get_u64("routers", 4));
  config.window_ms = flags.get_u64("window-ms", 5000);
  config.path_length = static_cast<u32>(flags.get_u64("path-length", 2));
  config.key_seed = flags.get_u64("seed", 42);
  sim::NetFlowSimulator simulator(config, logs, board);

  const u64 packets = flags.get_u64("packets", 30'000);
  const u64 seed = flags.get_u64("seed", 42);
  const std::string workload = flags.get("workload", "zipf");
  std::vector<sim::PacketObservation> traffic;
  if (workload == "zipf") {
    sim::ZipfWorkloadConfig w;
    w.seed = seed;
    w.flow_count = flags.get_u64("flows", 150);
    w.duration_ms = flags.get_u64("duration-ms", 25'000);
    traffic = sim::zipf_workload(w, packets);
  } else if (workload == "sla") {
    sim::SlaWorkloadConfig w;
    w.seed = seed;
    w.flow_count = flags.get_u64("flows", 150);
    w.duration_ms = flags.get_u64("duration-ms", 25'000);
    w.violating_fraction = flags.get_double("violating-fraction", 0.05);
    traffic = sim::sla_workload(w, packets).packets;
  } else if (workload == "neutrality") {
    sim::NeutralityWorkloadConfig w;
    w.seed = seed;
    w.flows_per_provider = flags.get_u64("flows", 150) / 2;
    w.duration_ms = flags.get_u64("duration-ms", 25'000);
    w.discriminate_b = flags.has("discriminate");
    traffic = sim::neutrality_workload(w, packets).packets;
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  {
    PeriodicMetricsDump dumper(flags.get_u64("metrics-every-ms", 0));
    if (auto s = simulator.run(std::move(traffic)); !s.ok()) {
      std::fprintf(stderr, "simulation: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  if (auto s = core::save_commitments(board, commitments_path); !s.ok()) {
    std::fprintf(stderr, "save commitments: %s\n", s.to_string().c_str());
    return 1;
  }

  u64 records = 0;
  for (const auto& stats : simulator.router_stats()) records += stats.records;
  std::printf("zkt-sim: %llu packets through %u routers -> %llu records in "
              "%zu windows\n",
              (unsigned long long)packets, config.router_count,
              (unsigned long long)records,
              simulator.committed_windows().size());
  std::printf("  raw logs    -> %s (%llu rows)\n", wal_path.c_str(),
              (unsigned long long)logs.row_count(store::kTableRlogs));
  std::printf("  commitments -> %s (%zu published)\n",
              commitments_path.c_str(), board.size());

  const auto snapshot = obs::Registry::instance().snapshot();
  if (flags.has("metrics")) {
    std::fprintf(stderr, "%s", snapshot.to_table().c_str());
  }
  if (flags.has("metrics-json")) {
    std::string path = flags.get("metrics-json");
    if (path.empty()) path = out_dir + "/sim_metrics.json";
    if (path == "-") {
      std::printf("%s", snapshot.to_json().c_str());
    } else {
      std::ofstream out(path);
      out << snapshot.to_json();
      if (!out) {
        std::fprintf(stderr, "metrics-json: cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("  metrics     -> %s\n", path.c_str());
    }
  }
  return 0;
}
