// zkt-lint — project-invariant static analysis for the zktel tree.
//
//   zkt-lint [--json] [--config FILE] [--list-rules] [--show-suppressed]
//            [--baseline FILE] [--write-baseline FILE] PATH...
//
// Lints the C++ sources under each PATH against the project rules
// (guest-determinism, result-discipline, secret-hygiene, layer-dag,
// untrusted-taint, concurrency-capture, deprecation-lifecycle, obs-catalog;
// see docs/ANALYSIS.md). Exits 1 when any unsuppressed error-severity
// finding remains, 2 on usage or I/O errors. The config is .zkt-lint.toml,
// found next to --config, in the current directory, or in any parent of the
// first PATH; paths in diagnostics are relative to the config's directory
// (the repo root).
//
// `--write-baseline FILE` records the current findings; `--baseline FILE`
// then exempts exactly those, so a new rule can land warn-first and the
// baseline can be burned down over subsequent PRs. The obs-catalog rule's
// markdown catalog is loaded automatically when it exists.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/load.h"

namespace {

namespace fs = std::filesystem;
using namespace zkt;
using namespace zkt::analysis;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--config FILE] [--list-rules] "
               "[--show-suppressed] [--baseline FILE] "
               "[--write-baseline FILE] PATH...\n",
               argv0);
  return 2;
}

/// Find .zkt-lint.toml walking up from `start`.
std::string find_config(const fs::path& start) {
  std::error_code ec;
  fs::path dir = fs::is_directory(start, ec) ? start : start.parent_path();
  dir = fs::absolute(dir, ec);
  while (!dir.empty()) {
    const fs::path candidate = dir / ".zkt-lint.toml";
    if (fs::exists(candidate, ec)) return candidate.string();
    if (dir == dir.parent_path()) break;
    dir = dir.parent_path();
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool show_suppressed = false;
  std::string config_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--config") {
      if (++i >= argc) return usage(argv[0]);
      config_path = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) return usage(argv[0]);
      write_baseline_path = argv[i];
    } else if (arg == "--list-rules") {
      for (const std::string& r : rule_names()) std::printf("%s\n", r.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  if (config_path.empty()) {
    config_path = find_config(fs::current_path());
    if (config_path.empty()) config_path = find_config(fs::path(paths[0]));
  }
  if (config_path.empty()) {
    std::fprintf(stderr,
                 "zkt-lint: no .zkt-lint.toml found (pass --config)\n");
    return 2;
  }

  auto config_text = read_file(config_path);
  if (!config_text.ok()) {
    std::fprintf(stderr, "zkt-lint: %s\n",
                 config_text.error().to_string().c_str());
    return 2;
  }
  auto config = Config::parse(config_text.value());
  if (!config.ok()) {
    std::fprintf(stderr, "zkt-lint: %s: %s\n", config_path.c_str(),
                 config.error().to_string().c_str());
    return 2;
  }

  const std::string repo_root =
      fs::absolute(fs::path(config_path)).parent_path().string();

  // The obs-catalog rule cross-checks a markdown file the PATH arguments
  // will not normally cover; load it alongside the sources when it exists.
  const std::string catalog = config.value().str(
      "rule.obs-catalog", "catalog", "docs/OBSERVABILITY.md");
  {
    std::error_code ec;
    if (fs::is_regular_file(fs::path(repo_root) / catalog, ec)) {
      paths.push_back(catalog);
    }
  }

  auto files = load_tree(repo_root, paths);
  if (!files.ok()) {
    std::fprintf(stderr, "zkt-lint: %s\n", files.error().to_string().c_str());
    return 2;
  }

  LintResult result = run_lint(config.value(), files.value());

  if (!baseline_path.empty()) {
    auto text = read_file(baseline_path);
    if (!text.ok()) {
      std::fprintf(stderr, "zkt-lint: %s\n",
                   text.error().to_string().c_str());
      return 2;
    }
    apply_baseline(parse_baseline(text.value()), &result);
  }
  if (!write_baseline_path.empty()) {
    const std::string serialized = to_baseline(result);
    std::FILE* f = std::fopen(write_baseline_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "zkt-lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::fwrite(serialized.data(), 1, serialized.size(), f);
    std::fclose(f);
  }

  if (json) {
    std::printf("%s\n", result.to_json().c_str());
  } else {
    std::fputs(result.to_text(show_suppressed).c_str(), stdout);
    std::printf("zkt-lint: %zu file(s), %zu finding(s), %zu unsuppressed\n",
                files.value().size(), result.findings.size(),
                result.unsuppressed());
  }
  return result.unsuppressed() == 0 ? 0 : 1;
}
