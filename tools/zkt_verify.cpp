// zkt-verify: the client/regulator-side auditor. Needs only public
// artifacts: the commitment board file and the receipts. Verifies the
// aggregation chain and (optionally) a query receipt, printing the proven
// result. Never touches the raw logs.
//
// Usage:
//   zkt-verify --data-dir DIR [--query "sum(hop_sum) where ..."]
#include <cstdio>

#include "common/flags.h"
#include "core/auditor.h"
#include "core/grouped_query.h"
#include "core/io.h"
#include "core/query_parser.h"

using namespace zkt;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string data_dir = flags.get("data-dir", "zkt-data");

  core::CommitmentBoard board;
  if (auto s = core::load_commitments(data_dir + "/commitments.bin", board);
      !s.ok()) {
    std::fprintf(stderr, "commitments: %s\n", s.to_string().c_str());
    return 1;
  }
  auto receipts = core::load_receipts(data_dir + "/aggregation_receipts.bin");
  if (!receipts.ok()) {
    std::fprintf(stderr, "receipts: %s\n",
                 receipts.error().to_string().c_str());
    return 1;
  }
  std::printf("zkt-verify: %zu commitments, %zu aggregation receipts\n",
              board.size(), receipts.value().size());

  core::Auditor auditor(board);
  for (size_t i = 0; i < receipts.value().size(); ++i) {
    auto accepted = auditor.accept_round(receipts.value()[i]);
    if (!accepted.ok()) {
      std::printf("round %zu: REJECTED — %s\n", i,
                  accepted.error().to_string().c_str());
      return 2;
    }
    std::printf("round %zu: OK (%zu batches, %llu entries, root %s...)\n", i,
                accepted.value().commitments.size(),
                (unsigned long long)accepted.value().new_entry_count,
                accepted.value().new_root.hex().substr(0, 12).c_str());
  }
  std::printf("aggregation chain VERIFIED: %llu rounds, final state root %s"
              "...\n",
              (unsigned long long)auditor.rounds_accepted(),
              auditor.current_root().hex().substr(0, 16).c_str());

  if (flags.has("query")) {
    auto expected = core::parse_query(flags.get("query"));
    if (!expected.ok()) {
      std::fprintf(stderr, "query parse: %s\n",
                   expected.error().to_string().c_str());
      return 1;
    }
    auto query_receipts =
        core::load_receipts(data_dir + "/query_receipt.bin");
    if (!query_receipts.ok() || query_receipts.value().size() != 1) {
      std::fprintf(stderr, "query receipt missing or malformed\n");
      return 1;
    }
    const zvm::Receipt& query_receipt = query_receipts.value()[0];

    // Grouped receipts carry a different guest image; dispatch on it.
    if (query_receipt.claim.image_id == core::grouped_query_image()) {
      auto grouped = core::verify_grouped_query(query_receipt, auditor,
                                                &expected.value());
      if (!grouped.ok()) {
        std::printf("grouped query proof: REJECTED — %s\n",
                    grouped.error().to_string().c_str());
        return 2;
      }
      std::printf("grouped query proof: OK\n  %s GROUP BY %s\n",
                  grouped.value().query.to_string().c_str(),
                  core::qfield_name(grouped.value().group_field));
      for (const auto& group : grouped.value().groups) {
        std::printf("    %s=%llu -> %llu (over %llu flows)\n",
                    core::qfield_name(grouped.value().group_field),
                    (unsigned long long)group.group_value,
                    (unsigned long long)group.stats.value(
                        grouped.value().query.agg),
                    (unsigned long long)group.stats.matched);
      }
      return 0;
    }

    auto verified = auditor.verify_query(query_receipt, &expected.value());
    if (!verified.ok()) {
      std::printf("query proof: REJECTED — %s\n",
                  verified.error().to_string().c_str());
      return 2;
    }
    const auto& j = verified.value();
    std::printf("query proof: OK (%s mode)\n",
                j.mode == core::QueryMode::complete ? "complete"
                                                    : "selective");
    std::printf("  %s\n  => %llu  (matched %llu of %llu entries)\n",
                j.query.to_string().c_str(),
                (unsigned long long)j.result.value(j.query.agg),
                (unsigned long long)j.result.matched,
                (unsigned long long)j.entry_count);
    if (j.mode == core::QueryMode::selective) {
      std::printf("  note: selective proofs do not demonstrate completeness"
                  " (see docs)\n");
    }
  }
  return 0;
}
