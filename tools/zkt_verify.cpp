// zkt-verify: the client/regulator-side auditor. Needs only public
// artifacts: the commitment board file and the receipts. Verifies the
// aggregation chain and (optionally) a query receipt, printing the proven
// result. Never touches the raw logs.
//
// Usage:
//   zkt-verify --data-dir DIR [--query "sum(hop_sum) where ..."]
//              [--sketch-query] [--stream] [--batch N] [--sequential]
//              [--catch-up]
//              [--pool-threads N] [--backend scalar|shani|avx2]
//              [--metrics] [--metrics-json [PATH]]
//
// --sketch-query verifies DIR/sketch_query_receipt.bin (written by
// zkt-prove --heavy-hitters/--cardinality), dispatching on the guest image:
// sketch-routed receipts bind the accepted chain head's sketch digest,
// exact-fallback receipts verify as ordinary complete-scan query proofs.
//
// Chain-verification modes (identical accept/reject decisions):
//   default      — load all receipts, verify them in one batched pass
//                  (pool fan-out + chain-continuity dedup);
//   --stream     — pull receipts straight off the file in --batch windows
//                  (default 64): O(1) memory however long the chain is;
//   --sequential — the pre-batching one-receipt-at-a-time walk, with
//                  per-round output;
//   --catch-up   — cold-verifier sync off DIR/epoch_seals.bin (written by
//                  zkt-prove --epoch-every): verify the O(log T) ladder
//                  seals, adopt the sealed head, and replay only the
//                  unsealed suffix receipts.
//
// --pool-threads sizes a private verification pool (default: the shared
// pool, ZKT_POOL_THREADS). --backend pins the SHA-256 implementation.
// --metrics / --metrics-json dump the obs registry (core.auditor.* counters
// included; schema in docs/OBSERVABILITY.md), matching zkt-prove's flags.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "core/epoch.h"
#include "core/grouped_query.h"
#include "core/io.h"
#include "core/query_parser.h"
#include "core/zkt.h"
#include "crypto/sha256_backend.h"
#include "obs/metrics.h"

using namespace zkt;

namespace {

/// Final act of every exit path: dump the process-wide metrics as requested
/// (same surface as zkt-prove).
int finish(const Flags& flags, const std::string& data_dir, int exit_code) {
  const auto snapshot = obs::Registry::instance().snapshot();
  if (flags.has("metrics")) {
    std::fprintf(stderr, "%s", snapshot.to_table().c_str());
  }
  if (flags.has("metrics-json")) {
    std::string path = flags.get("metrics-json");
    if (path.empty()) path = data_dir + "/metrics.json";
    if (path == "-") {
      std::printf("%s", snapshot.to_json().c_str());
    } else {
      std::ofstream out(path);
      out << snapshot.to_json();
      if (!out) {
        std::fprintf(stderr, "metrics-json: cannot write %s\n", path.c_str());
        return exit_code == 0 ? 1 : exit_code;
      }
      std::printf("  metrics -> %s\n", path.c_str());
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string data_dir = flags.get("data-dir", "zkt-data");

  if (flags.has("backend")) {
    const std::string name = flags.get("backend");
    auto backend = crypto::sha256_backend_from_name(name);
    if (!backend.has_value() ||
        !crypto::sha256_force_backend(*backend)) {
      std::fprintf(stderr, "backend: '%s' unknown or unavailable here\n",
                   name.c_str());
      return finish(flags, data_dir, 1);
    }
  }

  // A private pool when --pool-threads is given; otherwise BatchVerifier
  // falls back to the shared pool (ZKT_POOL_THREADS).
  std::unique_ptr<common::ThreadPool> own_pool;
  if (flags.has("pool-threads")) {
    own_pool = std::make_unique<common::ThreadPool>(common::ThreadPool::Options{
        .threads = static_cast<size_t>(flags.get_u64("pool-threads", 0))});
  }

  core::CommitmentBoard board;
  if (auto s = core::load_commitments(data_dir + "/commitments.bin", board);
      !s.ok()) {
    std::fprintf(stderr, "commitments: %s\n", s.to_string().c_str());
    return finish(flags, data_dir, 1);
  }

  core::AuditorOptions auditor_options;
  auditor_options.batch.pool = own_pool.get();
  core::Auditor auditor(board, auditor_options);
  const std::string receipts_path = data_dir + "/aggregation_receipts.bin";
  const u64 batch_size = flags.get_u64("batch", 64);
  zvm::VerifyStats stats;

  if (flags.has("catch-up")) {
    // Cold-verifier sync: O(log T) ladder seals + the unsealed suffix.
    auto seals = core::load_epoch_seals(data_dir + "/epoch_seals.bin");
    if (!seals.ok()) {
      std::fprintf(stderr, "epoch seals: %s\n",
                   seals.error().to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    auto receipts = core::load_receipts(receipts_path);
    if (!receipts.ok()) {
      std::fprintf(stderr, "receipts: %s\n",
                   receipts.error().to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    u64 sealed = 0;
    for (const auto& seal : seals.value()) sealed += seal.rounds;
    if (sealed > receipts.value().size()) {
      std::fprintf(stderr,
                   "epoch seals cover %llu rounds but only %zu receipts are "
                   "present\n",
                   (unsigned long long)sealed, receipts.value().size());
      return finish(flags, data_dir, 1);
    }
    std::printf(
        "zkt-verify: %zu commitments, %zu epoch seal(s) + %llu suffix "
        "receipts (catch-up)\n",
        board.size(), seals.value().size(),
        (unsigned long long)(receipts.value().size() - sealed));
    std::span<const zvm::Receipt> suffix(receipts.value());
    auto report =
        auditor.catch_up(seals.value(), suffix.subspan(sealed), &stats);
    if (!report.ok()) {
      std::printf("catch-up: REJECTED — %s\n",
                  report.error().to_string().c_str());
      return finish(flags, data_dir, 2);
    }
    std::printf("  caught up: %llu seal(s) covering %llu rounds, %llu "
                "suffix round(s) replayed\n",
                (unsigned long long)report.value().seals_adopted,
                (unsigned long long)report.value().seal_rounds,
                (unsigned long long)report.value().rounds_replayed);
  } else if (flags.has("stream")) {
    // O(1)-memory audit: receipts never materialize beyond one window.
    auto source = core::ReceiptFileSource::open(receipts_path);
    if (!source.ok()) {
      std::fprintf(stderr, "receipts: %s\n",
                   source.error().to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    std::printf("zkt-verify: %zu commitments, %llu receipts (streaming)\n",
                board.size(),
                (unsigned long long)source.value().declared_count());
    auto report = auditor.audit(
        source.value(), core::AuditOptions{batch_size, &stats});
    if (!report.ok()) {
      std::printf("round %llu: REJECTED — %s\n",
                  (unsigned long long)auditor.rounds_accepted(),
                  report.error().to_string().c_str());
      return finish(flags, data_dir, 2);
    }
  } else {
    auto receipts = core::load_receipts(receipts_path);
    if (!receipts.ok()) {
      std::fprintf(stderr, "receipts: %s\n",
                   receipts.error().to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    std::printf("zkt-verify: %zu commitments, %zu aggregation receipts\n",
                board.size(), receipts.value().size());

    if (flags.has("sequential")) {
      // The pre-batching walk, one verified round per line.
      for (size_t i = 0; i < receipts.value().size(); ++i) {
        auto accepted = auditor.accept_round(receipts.value()[i]);
        if (!accepted.ok()) {
          std::printf("round %zu: REJECTED — %s\n", i,
                      accepted.error().to_string().c_str());
          return finish(flags, data_dir, 2);
        }
        std::printf("round %zu: OK (%zu batches, %llu entries, root %s...)\n",
                    i, accepted.value().commitments.size(),
                    (unsigned long long)accepted.value().new_entry_count,
                    accepted.value().new_root.hex().substr(0, 12).c_str());
      }
    } else {
      // Batched pass: N receipts per round-trip over the pool, decisions
      // identical to the sequential walk.
      std::span<const zvm::Receipt> pending(receipts.value());
      while (!pending.empty()) {
        const size_t n = std::min<size_t>(pending.size(), batch_size);
        auto accepted = auditor.accept_rounds(pending.first(n), &stats);
        if (!accepted.ok()) {
          std::printf("round %llu: REJECTED — %s\n",
                      (unsigned long long)auditor.rounds_accepted(),
                      accepted.error().to_string().c_str());
          return finish(flags, data_dir, 2);
        }
        pending = pending.subspan(n);
      }
    }
  }
  std::printf("aggregation chain VERIFIED: %llu rounds, final state root %s"
              "...\n",
              (unsigned long long)auditor.rounds_accepted(),
              auditor.current_root().hex().substr(0, 16).c_str());
  if (stats.receipts != 0) {
    std::printf("  verified %llu receipts, %llu openings, shared %llu path "
                "hashes, skipped %llu assumption re-verifications\n",
                (unsigned long long)stats.receipts,
                (unsigned long long)stats.openings,
                (unsigned long long)stats.node_hashes_shared,
                (unsigned long long)stats.assumptions_skipped);
  }

  if (flags.has("sketch-query")) {
    auto sketch_receipts =
        core::load_receipts(data_dir + "/sketch_query_receipt.bin");
    if (!sketch_receipts.ok() || sketch_receipts.value().size() != 1) {
      std::fprintf(stderr, "sketch query receipt missing or malformed\n");
      return finish(flags, data_dir, 1);
    }
    const zvm::Receipt& receipt = sketch_receipts.value()[0];
    if (receipt.claim.image_id == core::sketch_heavy_image()) {
      auto verified = auditor.verify_heavy_hitters(receipt);
      if (!verified.ok()) {
        std::printf("sketch heavy-hitters proof: REJECTED — %s\n",
                    verified.error().to_string().c_str());
        return finish(flags, data_dir, 2);
      }
      std::printf("sketch heavy-hitters proof: OK (threshold %llu, %zu "
                  "flow(s), flat in chain size)\n",
                  (unsigned long long)verified.value().threshold,
                  verified.value().hits.size());
      for (const auto& hit : verified.value().hits) {
        std::printf("    %s -> %llu (err<=%llu)\n",
                    hit.key.to_string().c_str(),
                    (unsigned long long)hit.count,
                    (unsigned long long)hit.error);
      }
    } else if (receipt.claim.image_id == core::sketch_card_image()) {
      auto verified = auditor.verify_cardinality(receipt);
      if (!verified.ok()) {
        std::printf("sketch cardinality proof: REJECTED — %s\n",
                    verified.error().to_string().c_str());
        return finish(flags, data_dir, 2);
      }
      std::printf("sketch cardinality proof: OK — %llu distinct flow(s) "
                  "(CMS lower bound %llu)\n",
                  (unsigned long long)verified.value().distinct_flows,
                  (unsigned long long)verified.value().cms_lower_bound);
    } else {
      // Exact fallback: the prover's cost estimator chose a complete scan.
      auto verified = auditor.verify_query(receipt);
      if (!verified.ok()) {
        std::printf("sketch query (exact fallback): REJECTED — %s\n",
                    verified.error().to_string().c_str());
        return finish(flags, data_dir, 2);
      }
      std::printf("sketch query (exact fallback): OK — %s => %llu\n",
                  verified.value().query.to_string().c_str(),
                  (unsigned long long)verified.value().result.value(
                      verified.value().query.agg));
    }
  }

  if (flags.has("query")) {
    auto expected = core::parse_query(flags.get("query"));
    if (!expected.ok()) {
      std::fprintf(stderr, "query parse: %s\n",
                   expected.error().to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    auto query_receipts =
        core::load_receipts(data_dir + "/query_receipt.bin");
    if (!query_receipts.ok() || query_receipts.value().size() != 1) {
      std::fprintf(stderr, "query receipt missing or malformed\n");
      return finish(flags, data_dir, 1);
    }
    const zvm::Receipt& query_receipt = query_receipts.value()[0];

    // Grouped receipts carry a different guest image; dispatch on it.
    if (query_receipt.claim.image_id == core::grouped_query_image()) {
      auto grouped = core::verify_grouped_query(query_receipt, auditor,
                                                &expected.value());
      if (!grouped.ok()) {
        std::printf("grouped query proof: REJECTED — %s\n",
                    grouped.error().to_string().c_str());
        return finish(flags, data_dir, 2);
      }
      std::printf("grouped query proof: OK\n  %s GROUP BY %s\n",
                  grouped.value().query.to_string().c_str(),
                  core::qfield_name(grouped.value().group_field));
      for (const auto& group : grouped.value().groups) {
        std::printf("    %s=%llu -> %llu (over %llu flows)\n",
                    core::qfield_name(grouped.value().group_field),
                    (unsigned long long)group.group_value,
                    (unsigned long long)group.stats.value(
                        grouped.value().query.agg),
                    (unsigned long long)group.stats.matched);
      }
      return finish(flags, data_dir, 0);
    }

    auto verified = auditor.verify_query(
        query_receipt, {.expected_query = &expected.value()});
    if (!verified.ok()) {
      std::printf("query proof: REJECTED — %s\n",
                  verified.error().to_string().c_str());
      return finish(flags, data_dir, 2);
    }
    const auto& j = verified.value();
    std::printf("query proof: OK (%s mode)\n",
                j.mode == core::QueryMode::complete ? "complete"
                                                    : "selective");
    std::printf("  %s\n  => %llu  (matched %llu of %llu entries)\n",
                j.query.to_string().c_str(),
                (unsigned long long)j.result.value(j.query.agg),
                (unsigned long long)j.result.matched,
                (unsigned long long)j.entry_count);
    if (j.mode == core::QueryMode::selective) {
      std::printf("  note: selective proofs do not demonstrate completeness"
                  " (see docs)\n");
    }
  }
  return finish(flags, data_dir, 0);
}
