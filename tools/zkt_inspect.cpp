// zkt-inspect: dump the contents of zktel artifact files — receipts (with
// journals decoded per guest type), epoch-seal ladders, and commitment
// boards. Receipt bundles (ZKTRCPT1) and epoch-seal files (ZKTEPCH1) are
// told apart by their magic.
//
// Usage:
//   zkt-inspect receipts.bin epoch_seals.bin [more files...]
//   zkt-inspect --commitments commitments.bin
#include <cstdio>

#include "common/flags.h"
#include "common/serial.h"
#include "core/describe.h"
#include "core/epoch.h"
#include "core/io.h"

using namespace zkt;

namespace {

int inspect_receipts(const std::string& path) {
  auto receipts = core::load_receipts(path);
  if (!receipts.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 receipts.error().to_string().c_str());
    return 1;
  }
  std::printf("%s: %zu receipt(s)\n", path.c_str(), receipts.value().size());
  for (size_t i = 0; i < receipts.value().size(); ++i) {
    std::printf("[%zu] %s\n", i,
                core::describe_receipt(receipts.value()[i]).c_str());
  }
  return 0;
}

int inspect_epoch_seals(const std::string& path) {
  auto seals = core::load_epoch_seals(path);
  if (!seals.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 seals.error().to_string().c_str());
    return 1;
  }
  std::printf("%s: %zu epoch seal(s)\n", path.c_str(), seals.value().size());
  for (size_t i = 0; i < seals.value().size(); ++i) {
    const auto& seal = seals.value()[i];
    std::printf("[%zu] level %u, rounds [%llu, %llu), windows %llu..%llu, "
                "%zu commitment ref(s)\n     %s\n",
                i, seal.level, (unsigned long long)seal.start_round,
                (unsigned long long)(seal.start_round + seal.rounds),
                (unsigned long long)seal.first_window,
                (unsigned long long)seal.last_window, seal.commitments.size(),
                core::describe_receipt(seal.receipt).c_str());
  }
  return 0;
}

/// Dispatch on the file's leading magic string.
int inspect_file(const std::string& path) {
  auto data = core::read_file(path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 data.error().to_string().c_str());
    return 1;
  }
  Reader r(data.value());
  auto magic = r.str();
  if (magic.ok() && magic.value() == "ZKTEPCH1") {
    return inspect_epoch_seals(path);
  }
  return inspect_receipts(path);
}

int inspect_commitments(const std::string& path) {
  core::CommitmentBoard board;
  if (auto s = core::load_commitments(path, board); !s.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), s.to_string().c_str());
    return 1;
  }
  std::printf("%s: %zu commitment(s)\n", path.c_str(), board.size());
  for (const auto& c : board.all()) {
    std::printf("  router %u window %llu: %llu records, H=%s..., signed %s"
                "..., at t=%llu ms\n",
                c.router_id, (unsigned long long)c.window_id,
                (unsigned long long)c.record_count,
                c.rlog_hash.hex().substr(0, 16).c_str(),
                to_hex(BytesView(c.router_pubkey.data(), 32)).substr(0, 12).c_str(),
                (unsigned long long)c.published_at_ms);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int rc = 0;
  if (flags.has("commitments")) {
    rc |= inspect_commitments(flags.get("commitments"));
  }
  for (const auto& path : flags.positional()) {
    rc |= inspect_file(path);
  }
  if (!flags.has("commitments") && flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: zkt-inspect [--commitments FILE] "
                 "[receipts.bin|epoch_seals.bin...]\n");
    return 1;
  }
  return rc;
}
