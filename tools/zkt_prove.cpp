// zkt-prove: the service provider's prover. Recovers the raw-log store
// written by zkt-sim, replays every committed window through the Algorithm-1
// aggregation guest (chained receipts), and optionally proves a query.
//
// Usage:
//   zkt-prove --data-dir DIR [--query "sum(hop_sum) where src_ip = 1.1.1.1"]
//             [--group-by FIELD] [--selective] [--composite]
//             [--agg-mode auto|full|incremental] [--no-sketch]
//             [--heavy-hitters T] [--cardinality]
//             [--shards N] [--join-fanout F] [--pipeline-depth D]
//             [--epoch-every N]
//             [--recover] [--checkpoint-every N] [--retry-attempts N]
//             [--prune] [--metrics] [--metrics-json [PATH]]
//
// --shards N (>= 2) proves each window as N parallel shard chains behind
// split proofs; --join-fanout (default 2; 0/1 disables) folds each round's
// shard receipts into one tree seal (saved to DIR/tree_seals.bin);
// --pipeline-depth D overlaps up to D windows (stage/prove/fold). Sharded
// mode is incompatible with --query (query proofs run over the
// single-chain state). The core.sharded.* / core.tree.* /
// core.pipeline.inflight metrics show what the sharded pipeline did.
//
// By default every round folds its records into the proof-carrying round
// sketch (DESIGN.md §10); --no-sketch disables it. --heavy-hitters T proves
// the flows with count >= T and --cardinality proves the distinct-flow
// count, both answered against the committed sketch when its error bound
// satisfies the query (flat in the CLog size) and by an exact complete
// scan otherwise; the receipt lands in DIR/sketch_query_receipt.bin.
//
// --agg-mode picks the aggregation guest per round: "full" always rebuilds
// the whole CLog state in-guest (Algorithm 1), "incremental" proves only
// the touched entries against a Merkle multiproof (O(k log N)), and "auto"
// (default) compares estimated costs per round. The core.agg.mode /
// core.agg.touched_entries metrics show what each round did.
//
// --epoch-every N maintains the binary-counter ladder of epoch seals
// (DESIGN.md §11): every N rounds a chain-summary seal is proven
// asynchronously and merged, the live ladder lands in DIR/epoch_seals.bin,
// and zkt-verify --catch-up syncs from it in O(log T) instead of replaying
// the whole receipt chain. Incompatible with --shards.
//
// --recover resumes a previous zkt-prove run's proof chain from the chain
// snapshots persisted in the store (see docs/RECOVERY.md) instead of
// re-proving from window 0; --checkpoint-every controls how often those
// snapshots are written (default: every round).
//
// Outputs (in DIR): aggregation_receipts.bin, query_receipt.bin; with
// --metrics-json also a metrics snapshot (default DIR/metrics.json, schema
// in docs/OBSERVABILITY.md).
#include <cstdio>
#include <fstream>

#include "common/flags.h"
#include "core/grouped_query.h"
#include "core/io.h"
#include "core/pipeline.h"
#include "core/query_parser.h"
#include "core/service.h"
#include "netflow/record.h"
#include "obs/metrics.h"
#include "store/logstore.h"

using namespace zkt;

namespace {

/// Final act of every exit path: dump the process-wide metrics as requested.
int finish(const Flags& flags, const std::string& data_dir, int exit_code) {
  const auto snapshot = obs::Registry::instance().snapshot();
  if (flags.has("metrics")) {
    std::fprintf(stderr, "%s", snapshot.to_table().c_str());
  }
  if (flags.has("metrics-json")) {
    std::string path = flags.get("metrics-json");
    if (path.empty()) path = data_dir + "/metrics.json";
    if (path == "-") {
      std::printf("%s", snapshot.to_json().c_str());
    } else {
      std::ofstream out(path);
      out << snapshot.to_json();
      if (!out) {
        std::fprintf(stderr, "metrics-json: cannot write %s\n", path.c_str());
        return exit_code == 0 ? 1 : exit_code;
      }
      std::printf("  metrics -> %s\n", path.c_str());
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string data_dir = flags.get("data-dir", "zkt-data");

  // Load the provider's artifacts.
  store::LogStore logs(
      store::StoreConfig{.wal_path = data_dir + "/rlogs.wal"});
  if (auto s = logs.recover(); !s.ok()) {
    std::fprintf(stderr, "store: %s\n", s.to_string().c_str());
    return finish(flags, data_dir, 1);
  }
  core::CommitmentBoard board;
  if (auto s = core::load_commitments(data_dir + "/commitments.bin", board);
      !s.ok()) {
    std::fprintf(stderr, "commitments: %s\n", s.to_string().c_str());
    return finish(flags, data_dir, 1);
  }
  std::printf("zkt-prove: %llu stored rlog rows, %zu commitments\n",
              (unsigned long long)logs.row_count(store::kTableRlogs),
              board.size());

  zvm::ProveOptions options;
  if (flags.has("composite")) options.seal_kind = zvm::SealKind::composite;

  core::PipelineOptions pipeline_options;
  pipeline_options.prove_options = options;
  const std::string agg_mode = flags.get("agg-mode", "auto");
  if (agg_mode == "full") {
    pipeline_options.agg_mode = core::AggMode::full;
  } else if (agg_mode == "incremental") {
    pipeline_options.agg_mode = core::AggMode::incremental;
  } else if (agg_mode != "auto") {
    std::fprintf(stderr, "unknown --agg-mode: %s (auto|full|incremental)\n",
                 agg_mode.c_str());
    return finish(flags, data_dir, 1);
  }
  pipeline_options.checkpoint_every_n_rounds =
      flags.get_u64("checkpoint-every", 1);
  pipeline_options.retry.max_attempts =
      static_cast<u32>(flags.get_u64("retry-attempts", 3));
  pipeline_options.prune_aggregated = flags.has("prune");
  pipeline_options.sharded.shard_count =
      static_cast<u32>(flags.get_u64("shards", 1));
  pipeline_options.sharded.join_fanout =
      static_cast<u32>(flags.get_u64("join-fanout", 2));
  pipeline_options.sharded.pipeline_depth =
      static_cast<u32>(flags.get_u64("pipeline-depth", 1));
  if (flags.has("no-sketch")) pipeline_options.sketch = std::nullopt;
  pipeline_options.epoch_every = flags.get_u64("epoch-every", 0);
  const bool sharded = pipeline_options.sharded.shard_count >= 2;
  if (sharded && pipeline_options.epoch_every > 0) {
    std::fprintf(stderr,
                 "--epoch-every is incompatible with --shards (epoch seals "
                 "fold the single round chain)\n");
    return finish(flags, data_dir, 1);
  }
  if (sharded &&
      (flags.has("heavy-hitters") || flags.has("cardinality"))) {
    std::fprintf(stderr,
                 "--heavy-hitters/--cardinality are incompatible with "
                 "--shards (sketch queries run over the single-chain "
                 "state)\n");
    return finish(flags, data_dir, 1);
  }
  if (sharded && flags.has("query")) {
    std::fprintf(stderr,
                 "--query is incompatible with --shards (query proofs run "
                 "over the single-chain state)\n");
    return finish(flags, data_dir, 1);
  }

  // The pipeline aggregates every committed window, in order, and persists
  // round receipts (plus chain snapshots) back into the store.
  core::ProviderPipeline pipeline(logs, board, pipeline_options);
  if (flags.has("recover")) {
    auto recovery = pipeline.recover();
    if (!recovery.ok()) {
      std::fprintf(stderr, "recovery FAILED: %s\n",
                   recovery.error().to_string().c_str());
      return finish(flags, data_dir, 2);
    }
    if (recovery.value().resumed) {
      std::printf(
          "  recovered chain: %llu rounds from snapshot, %llu replayed, "
          "%llu seals re-folded, resuming after window %llu\n",
          (unsigned long long)recovery.value().rounds_restored,
          (unsigned long long)recovery.value().rounds_replayed,
          (unsigned long long)recovery.value().seals_refolded,
          (unsigned long long)recovery.value().last_window.value_or(0));
    } else {
      std::printf("  no chain state to recover; starting fresh\n");
    }
  }
  auto rounds = pipeline.aggregate_pending();
  if (!rounds.ok()) {
    std::fprintf(stderr,
                 "aggregation FAILED: %s\n(by design: tampered or "
                 "uncommitted data cannot be proven)\n",
                 rounds.error().to_string().c_str());
    return finish(flags, data_dir, 2);
  }
  for (const auto& round : rounds.value()) {
    if (sharded) {
      u64 entries = 0;
      for (const auto& shard : round.shard_rounds) {
        entries += shard.journal.new_entry_count;
      }
      std::printf(
          "  round %llu: %zu shards, %llu entries, %llu cycles, %.1f ms%s\n",
          (unsigned long long)round.round_id, round.shard_rounds.size(),
          (unsigned long long)entries, (unsigned long long)round.total_cycles,
          round.wall_ms, round.tree_seal.has_value() ? ", sealed" : "");
    } else {
      const core::AggJournal& journal = round.primary().journal;
      std::printf("  window %llu: %llu entries, %llu cycles, %.1f ms\n",
                  (unsigned long long)(journal.commitments.empty()
                                           ? 0ULL
                                           : journal.commitments[0].window_id),
                  (unsigned long long)journal.new_entry_count,
                  (unsigned long long)round.primary().prove_info.cycles,
                  round.primary().prove_info.total_ms);
    }
  }
  if (sharded) {
    // Sharded chains persist through the store (shard_receipts /
    // tree_seals tables); the seals are additionally saved as the round
    // proof objects a verifier consumes.
    const std::string seals_path = data_dir + "/tree_seals.bin";
    if (auto s = core::save_receipts(pipeline.tree_seals(), seals_path);
        !s.ok()) {
      std::fprintf(stderr, "save tree seals: %s\n", s.to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    std::printf("  tree seals -> %s (%zu rounds)\n", seals_path.c_str(),
                pipeline.tree_seals().size());
    return finish(flags, data_dir, 0);
  }
  const core::AggregationService& aggregation = pipeline.aggregation();
  const std::string receipts_path = data_dir + "/aggregation_receipts.bin";
  if (auto s = core::save_receipts(pipeline.receipts(), receipts_path);
      !s.ok()) {
    std::fprintf(stderr, "save receipts: %s\n", s.to_string().c_str());
    return finish(flags, data_dir, 1);
  }
  std::printf("  receipts -> %s (%zu rounds)\n", receipts_path.c_str(),
              pipeline.receipts().size());

  if (pipeline_options.epoch_every > 0) {
    auto seals = pipeline.epoch_seals();
    if (!seals.ok()) {
      std::fprintf(stderr, "epoch seals: %s\n",
                   seals.error().to_string().c_str());
      return finish(flags, data_dir, 2);
    }
    const std::string seals_path = data_dir + "/epoch_seals.bin";
    if (auto s = core::save_epoch_seals(seals.value(), seals_path); !s.ok()) {
      std::fprintf(stderr, "save epoch seals: %s\n", s.to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    u64 sealed_rounds = 0;
    for (const auto& seal : seals.value()) sealed_rounds += seal.rounds;
    std::printf(
        "  epoch ladder -> %s (%zu seal(s) covering %llu of %zu rounds)\n",
        seals_path.c_str(), seals.value().size(),
        (unsigned long long)sealed_rounds, pipeline.receipts().size());
  }

  // Optional sketch-routed queries (heavy hitters / cardinality).
  if (flags.has("heavy-hitters") || flags.has("cardinality")) {
    core::QueryService queries(aggregation,
                               core::QueryServiceOptions{options});
    const std::string sketch_query_path =
        data_dir + "/sketch_query_receipt.bin";
    if (flags.has("heavy-hitters")) {
      const u64 threshold = flags.get_u64("heavy-hitters", 1);
      auto response = queries.heavy_hitters(threshold);
      if (!response.ok()) {
        std::fprintf(stderr, "heavy-hitters proof: %s\n",
                     response.error().to_string().c_str());
        return finish(flags, data_dir, 2);
      }
      const zvm::Receipt& receipt = response.value().used_sketch
                                        ? response.value().sketch->receipt
                                        : response.value().exact->receipt;
      if (auto s = core::save_receipts({receipt}, sketch_query_path);
          !s.ok()) {
        std::fprintf(stderr, "save sketch query receipt: %s\n",
                     s.to_string().c_str());
        return finish(flags, data_dir, 1);
      }
      if (response.value().used_sketch) {
        std::printf("  heavy hitters >= %llu: %zu flow(s) via sketch -> %s\n",
                    (unsigned long long)threshold,
                    response.value().sketch->journal.hits.size(),
                    sketch_query_path.c_str());
      } else {
        std::printf(
            "  heavy hitters >= %llu: %llu flow(s) via exact scan -> %s\n",
            (unsigned long long)threshold,
            (unsigned long long)response.value().exact->value,
            sketch_query_path.c_str());
      }
    } else {
      auto response = queries.cardinality();
      if (!response.ok()) {
        std::fprintf(stderr, "cardinality proof: %s\n",
                     response.error().to_string().c_str());
        return finish(flags, data_dir, 2);
      }
      const zvm::Receipt& receipt = response.value().used_sketch
                                        ? response.value().sketch->receipt
                                        : response.value().exact->receipt;
      if (auto s = core::save_receipts({receipt}, sketch_query_path);
          !s.ok()) {
        std::fprintf(stderr, "save sketch query receipt: %s\n",
                     s.to_string().c_str());
        return finish(flags, data_dir, 1);
      }
      const u64 distinct =
          response.value().used_sketch
              ? response.value().sketch->journal.distinct_flows
              : response.value().exact->value;
      std::printf("  cardinality: %llu distinct flow(s) via %s -> %s\n",
                  (unsigned long long)distinct,
                  response.value().used_sketch ? "sketch" : "exact scan",
                  sketch_query_path.c_str());
    }
  }

  // Optional query proof.
  if (flags.has("query")) {
    auto query = core::parse_query(flags.get("query"));
    if (!query.ok()) {
      std::fprintf(stderr, "query parse: %s\n",
                   query.error().to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    std::printf("  query: %s\n", query.value().to_string().c_str());
    const std::string query_path = data_dir + "/query_receipt.bin";

    if (flags.has("group-by")) {
      // Grouped proof: one receipt covering every group.
      const std::string field_name = flags.get("group-by");
      std::optional<core::QField> group;
      for (u8 f = 1; f <= static_cast<u8>(core::QField::jitter_avg_us); ++f) {
        if (field_name == core::qfield_name(static_cast<core::QField>(f))) {
          group = static_cast<core::QField>(f);
        }
      }
      if (!group.has_value()) {
        std::fprintf(stderr, "unknown group-by field: %s\n",
                     field_name.c_str());
        return finish(flags, data_dir, 1);
      }
      auto response = core::run_grouped_query(aggregation, query.value(),
                                              *group, options);
      if (!response.ok()) {
        std::fprintf(stderr, "grouped query proof: %s\n",
                     response.error().to_string().c_str());
        return finish(flags, data_dir, 2);
      }
      if (auto s = core::save_receipts({response.value().receipt}, query_path);
          !s.ok()) {
        std::fprintf(stderr, "save query receipt: %s\n", s.to_string().c_str());
        return finish(flags, data_dir, 1);
      }
      std::printf("  %zu groups proven (%.1f ms) -> %s\n",
                  response.value().journal.groups.size(),
                  response.value().prove_info.total_ms, query_path.c_str());
      for (const auto& group_entry : response.value().journal.groups) {
        std::printf("    %s=%llu -> %llu\n", field_name.c_str(),
                    (unsigned long long)group_entry.group_value,
                    (unsigned long long)group_entry.stats.value(
                        query.value().agg));
      }
      return finish(flags, data_dir, 0);
    }

    core::QueryService queries(aggregation,
                               core::QueryServiceOptions{options});
    core::QueryOptions query_options;
    if (flags.has("selective")) {
      query_options.mode = core::QueryMode::selective;
    }
    auto response = queries.run(query.value(), query_options);
    if (!response.ok()) {
      std::fprintf(stderr, "query proof: %s\n",
                   response.error().to_string().c_str());
      return finish(flags, data_dir, 2);
    }
    if (auto s = core::save_receipts({response.value().receipt}, query_path);
        !s.ok()) {
      std::fprintf(stderr, "save query receipt: %s\n",
                   s.to_string().c_str());
      return finish(flags, data_dir, 1);
    }
    std::printf("  result = %llu (%s mode, %.1f ms) -> %s\n",
                (unsigned long long)response.value().value,
                flags.has("selective") ? "selective" : "complete",
                response.value().prove_info.total_ms, query_path.c_str());
  }
  return finish(flags, data_dir, 0);
}
