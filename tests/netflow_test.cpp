// NetFlow substrate tests: record model, IPv4 parsing, RLog batches, and
// the v9 wire format (templates, flowsets, collector behaviour).
#include <gtest/gtest.h>

#include "netflow/record.h"
#include "netflow/stats.h"
#include "netflow/v9.h"

namespace zkt::netflow {
namespace {

// ---------------------------------------------------------------------------
// IPv4

struct IpCase {
  std::string text;
  bool valid;
  u32 value;
};

class Ipv4Parse : public ::testing::TestWithParam<IpCase> {};

TEST_P(Ipv4Parse, Case) {
  const auto& c = GetParam();
  auto parsed = parse_ipv4(c.text);
  EXPECT_EQ(parsed.ok(), c.valid) << c.text;
  if (c.valid && parsed.ok()) {
    EXPECT_EQ(parsed.value(), c.value);
    EXPECT_EQ(format_ipv4(parsed.value()), c.text);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ipv4Parse,
    ::testing::Values(IpCase{"1.1.1.1", true, 0x01010101},
                      IpCase{"9.9.9.9", true, 0x09090909},
                      IpCase{"255.255.255.255", true, 0xFFFFFFFF},
                      IpCase{"0.0.0.0", true, 0},
                      IpCase{"10.1.2.3", true, 0x0A010203},
                      IpCase{"192.168.0.1", true, 0xC0A80001},
                      IpCase{"1.2.3", false, 0}, IpCase{"1.2.3.4.5", false, 0},
                      IpCase{"256.1.1.1", false, 0},
                      IpCase{"1..2.3", false, 0}, IpCase{"", false, 0},
                      IpCase{"a.b.c.d", false, 0},
                      IpCase{"1.2.3.04x", false, 0}));

// ---------------------------------------------------------------------------
// FlowKey / FlowRecord

TEST(FlowKey, CanonicalBytesAndOrdering) {
  const FlowKey a{1, 2, 3, 4, 6};
  const FlowKey b{1, 2, 3, 5, 6};
  EXPECT_EQ(a.canonical_bytes().size(), 13u);
  EXPECT_NE(a.canonical_bytes(), b.canonical_bytes());
  EXPECT_LT(a, b);
  EXPECT_EQ(a, (FlowKey{1, 2, 3, 4, 6}));
}

TEST(FlowKey, SerializationRoundTrip) {
  const FlowKey key{0xC0A80001, 0x08080808, 54321, 53, 17};
  Writer w;
  key.serialize(w);
  Reader r(w.bytes());
  auto parsed = FlowKey::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), key);
}

TEST(FlowRecord, ObserveAccumulates) {
  FlowRecord rec;
  PacketObservation pkt;
  pkt.key = {1, 2, 3, 4, 6};
  pkt.timestamp_ms = 100;
  pkt.bytes = 500;
  pkt.hop_count = 7;
  pkt.rtt_us = 1000;
  pkt.jitter_us = 10;
  pkt.tcp_flags = 0x02;
  rec.observe(pkt);
  pkt.timestamp_ms = 300;
  pkt.rtt_us = 3000;
  pkt.tcp_flags = 0x10;
  rec.observe(pkt);

  EXPECT_EQ(rec.packets, 2u);
  EXPECT_EQ(rec.bytes, 1000u);
  EXPECT_EQ(rec.first_ms, 100u);
  EXPECT_EQ(rec.last_ms, 300u);
  EXPECT_EQ(rec.hop_count_sum, 14u);
  EXPECT_EQ(rec.rtt_sum_us, 4000u);
  EXPECT_EQ(rec.rtt_count, 2u);
  EXPECT_EQ(rec.rtt_max_us, 3000u);
  EXPECT_EQ(rec.tcp_flags_or, 0x12);
  EXPECT_DOUBLE_EQ(avg_rtt_us(rec), 2000.0);
}

TEST(FlowRecord, DroppedPacketsCountAsLoss) {
  FlowRecord rec;
  PacketObservation pkt;
  pkt.key = {1, 2, 3, 4, 6};
  pkt.timestamp_ms = 100;
  pkt.bytes = 500;
  rec.observe(pkt);
  pkt.dropped = true;
  rec.observe(pkt);
  EXPECT_EQ(rec.packets, 1u);
  EXPECT_EQ(rec.lost_packets, 1u);
  EXPECT_EQ(rec.bytes, 500u);  // dropped bytes not delivered
  EXPECT_DOUBLE_EQ(loss_rate(rec), 0.5);
}

TEST(FlowRecord, MergeMatchesInterleavedObserve) {
  // Observing packets in one record == observing across two and merging.
  std::vector<PacketObservation> packets;
  for (int i = 0; i < 10; ++i) {
    PacketObservation pkt;
    pkt.key = {1, 2, 3, 4, 6};
    pkt.timestamp_ms = 100 + i * 13;
    pkt.bytes = 100 + i;
    pkt.hop_count = static_cast<u8>(i % 5);
    pkt.rtt_us = 1000 * (i + 1);
    pkt.jitter_us = 7 * i;
    pkt.dropped = i % 4 == 3;
    packets.push_back(pkt);
  }
  FlowRecord all;
  for (const auto& pkt : packets) all.observe(pkt);
  FlowRecord a, b;
  for (size_t i = 0; i < packets.size(); ++i) {
    (i % 2 == 0 ? a : b).observe(packets[i]);
  }
  a.merge(b);
  EXPECT_EQ(a, all);
}

TEST(FlowRecord, MergeIntoEmptyCopies) {
  FlowRecord full;
  PacketObservation pkt;
  pkt.key = {9, 9, 9, 9, 6};
  pkt.timestamp_ms = 5;
  pkt.bytes = 10;
  full.observe(pkt);
  FlowRecord empty;
  empty.merge(full);
  EXPECT_EQ(empty, full);
}

TEST(FlowRecord, SerializationRoundTrip) {
  FlowRecord rec;
  PacketObservation pkt;
  pkt.key = {0x01020304, 0x05060708, 1111, 2222, 17};
  pkt.timestamp_ms = 123456789;
  pkt.bytes = 1400;
  pkt.hop_count = 30;
  pkt.rtt_us = 250'000;
  pkt.jitter_us = 12'000;
  rec.observe(pkt);

  Writer w;
  rec.serialize(w);
  Reader r(w.bytes());
  auto parsed = FlowRecord::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(parsed.value(), rec);
}

TEST(FlowRecord, ThroughputUsesDuration) {
  FlowRecord rec;
  PacketObservation pkt;
  pkt.key = {1, 1, 1, 1, 6};
  pkt.timestamp_ms = 0;
  pkt.bytes = 1000;
  rec.observe(pkt);
  pkt.timestamp_ms = 1000;  // 1 second
  rec.observe(pkt);
  EXPECT_DOUBLE_EQ(throughput_bps(rec), 16'000.0);  // 2000B*8/1s
}

// ---------------------------------------------------------------------------
// RLogBatch

FlowRecord quick_record(u32 src, u64 packets) {
  FlowRecord rec;
  for (u64 i = 0; i < packets; ++i) {
    PacketObservation pkt;
    pkt.key = {src, 0x09090909, 1000, 443, 6};
    pkt.timestamp_ms = i;
    pkt.bytes = 100;
    rec.observe(pkt);
  }
  return rec;
}

TEST(RLogBatch, RoundTripAndHashStability) {
  RLogBatch batch;
  batch.router_id = 3;
  batch.window_id = 17;
  batch.records = {quick_record(1, 5), quick_record(2, 3)};

  const auto bytes = batch.canonical_bytes();
  Reader r(bytes);
  auto parsed = RLogBatch::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().router_id, 3u);
  EXPECT_EQ(parsed.value().window_id, 17u);
  EXPECT_EQ(parsed.value().records, batch.records);
  EXPECT_EQ(parsed.value().hash(), batch.hash());

  // Any record mutation changes the hash.
  RLogBatch mutated = batch;
  mutated.records[0].packets += 1;
  EXPECT_NE(mutated.hash(), batch.hash());
}

TEST(RLogBatch, RejectsBadMagic) {
  Bytes bytes = RLogBatch{}.canonical_bytes();
  bytes[1] ^= 0xFF;  // corrupt magic
  Reader r(bytes);
  EXPECT_FALSE(RLogBatch::deserialize(r).ok());
}

// ---------------------------------------------------------------------------
// NetFlow v9

class V9RoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(V9RoundTrip, PreservesRecords) {
  const size_t n = GetParam();
  std::vector<FlowRecord> records;
  for (size_t i = 0; i < n; ++i) {
    records.push_back(quick_record(static_cast<u32>(i + 1), i % 7 + 1));
    records.back().rtt_sum_us = i * 1000;
    records.back().rtt_count = i % 3;
    records.back().jitter_sum_us = i * 10;
    records.back().lost_packets = i % 2;
  }

  V9Exporter exporter(V9Config{.source_id = 42});
  V9Collector collector;
  std::vector<FlowRecord> decoded;
  for (const auto& packet : exporter.export_records(records, 999)) {
    auto got = collector.ingest(packet);
    ASSERT_TRUE(got.ok()) << got.error().to_string();
    for (auto& rec : got.value()) decoded.push_back(std::move(rec));
  }
  EXPECT_EQ(decoded, records);
  EXPECT_EQ(collector.stats().records, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, V9RoundTrip,
                         ::testing::Values(0, 1, 2, 23, 24, 25, 100, 250));

TEST(V9, WireHeaderLayout) {
  V9Exporter exporter(V9Config{.source_id = 0x11223344});
  auto packets = exporter.export_records({}, 0x55667788);
  ASSERT_EQ(packets.size(), 1u);
  const Bytes& p = packets[0];
  ASSERT_GE(p.size(), 20u);
  EXPECT_EQ((p[0] << 8) | p[1], 9);  // version
  // source id at offset 16, big-endian.
  EXPECT_EQ((u32(p[16]) << 24) | (u32(p[17]) << 16) | (u32(p[18]) << 8) |
                p[19],
            0x11223344u);
}

TEST(V9, DataBeforeTemplateIsSkippedThenLearned) {
  std::vector<FlowRecord> records = {quick_record(1, 2)};
  V9Exporter exporter(V9Config{.source_id = 7,
                               .template_refresh_interval = 2});
  // Packet 0 has the template, packet 1 does not.
  auto first = exporter.export_records(records, 100);
  auto second = exporter.export_records(records, 200);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);

  V9Collector collector;
  // Ingest the template-less packet first: records dropped, not an error.
  auto got = collector.ingest(second[0]);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
  EXPECT_EQ(collector.stats().data_flowsets_without_template, 1u);

  // After the template arrives, decoding works.
  ASSERT_TRUE(collector.ingest(first[0]).ok());
  auto again = collector.ingest(second[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().size(), 1u);
}

TEST(V9, TemplatesAreScopedBySourceId) {
  std::vector<FlowRecord> records = {quick_record(1, 1)};
  V9Exporter src_a(V9Config{.source_id = 1, .template_refresh_interval = 100});
  V9Exporter src_b(V9Config{.source_id = 2, .template_refresh_interval = 100});
  auto a0 = src_a.export_records(records, 0);  // has template for source 1
  (void)src_b.export_records(records, 0);      // advance b's sequence
  auto b1 = src_b.export_records(records, 0);  // no template in this one

  V9Collector collector;
  ASSERT_TRUE(collector.ingest(a0[0]).ok());
  auto got = collector.ingest(b1[0]);
  ASSERT_TRUE(got.ok());
  // Source 2 never sent its template: data must be skipped.
  EXPECT_TRUE(got.value().empty());
}

TEST(V9, RejectsMalformedPackets) {
  V9Collector collector;
  EXPECT_FALSE(collector.ingest(Bytes{1, 2, 3}).ok());  // short header

  Bytes not_v9(20, 0);
  not_v9[1] = 5;  // version 5
  EXPECT_FALSE(collector.ingest(not_v9).ok());

  // Valid header, flowset length pointing past the end.
  Bytes bad(24, 0);
  bad[1] = 9;
  bad[20] = 0x01;  // flowset id 256
  bad[21] = 0x00;
  bad[22] = 0xFF;  // length 65280
  bad[23] = 0x00;
  EXPECT_FALSE(collector.ingest(bad).ok());
}

TEST(V9, LargeBatchSplitsIntoPackets) {
  std::vector<FlowRecord> records;
  for (int i = 0; i < 100; ++i) records.push_back(quick_record(i + 1, 1));
  V9Exporter exporter(V9Config{.source_id = 1, .max_records_per_packet = 10});
  auto packets = exporter.export_records(records, 0);
  EXPECT_EQ(packets.size(), 10u);
  for (const auto& p : packets) {
    EXPECT_LE(p.size(), 1500u);  // sane MTU-ish sizing
  }
}

TEST(V9, SequenceNumberAdvances) {
  V9Exporter exporter(V9Config{.source_id = 1});
  EXPECT_EQ(exporter.packets_emitted(), 0u);
  (void)exporter.export_records({}, 0);
  (void)exporter.export_records({}, 0);
  EXPECT_EQ(exporter.packets_emitted(), 2u);
}

}  // namespace
}  // namespace zkt::netflow
