// Chain-summary tests: one receipt standing for a whole chain, fast auditor
// sync, and rejection of every way to forge a summary.
#include <gtest/gtest.h>

#include "core/chain_summary.h"
#include "core/service.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

struct Fixture {
  CommitmentBoard board;
  AggregationService service{board};
  std::vector<zvm::Receipt> rounds;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("chain-sum");

  void run_round(u64 window, std::vector<u32> srcs) {
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = window;
    for (u32 src : srcs) {
      FlowRecord record;
      PacketObservation pkt;
      pkt.key = {src, 0x09090909, 1000, 443, 6};
      pkt.timestamp_ms = window * 5000;
      pkt.bytes = 100 * src;
      record.observe(pkt);
      batch.records.push_back(std::move(record));
    }
    ASSERT_TRUE(
        board.publish(make_commitment(batch, key, window).value()).ok());
    auto round = service.aggregate({batch});
    ASSERT_TRUE(round.ok()) << round.error().to_string();
    rounds.push_back(std::move(round.value().receipt));
  }
};

TEST(ChainSummary, SummarizesAndFastSyncs) {
  Fixture fx;
  fx.run_round(1, {1, 2});
  fx.run_round(2, {1, 3});
  fx.run_round(3, {4});

  auto summary = prove_chain_summary(fx.rounds);
  ASSERT_TRUE(summary.ok()) << summary.error().to_string();
  EXPECT_EQ(summary.value().journal.rounds, 3u);
  EXPECT_EQ(summary.value().journal.final_root, fx.service.state().root());
  EXPECT_EQ(summary.value().journal.final_entry_count, 4u);
  EXPECT_EQ(summary.value().journal.final_claim_digest,
            fx.service.last_claim_digest().value());
  EXPECT_EQ(summary.value().journal.commitment_count, 3u);
  EXPECT_EQ(summary.value().commitments.size(), 3u);
  EXPECT_TRUE(summary.value().journal.genesis);

  // One verification replaces replaying all three rounds. The out-of-band
  // ref list must reproduce the journal's commitment-chain digest.
  auto verified = verify_chain_summary(summary.value().receipt, fx.board,
                                       summary.value().commitments);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();

  // A fresh auditor adopts the head, then continues the live chain.
  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor
                  .adopt_summary(verified.value().head())
                  .ok());
  EXPECT_EQ(auditor.rounds_accepted(), 3u);
  EXPECT_EQ(auditor.current_root(), fx.service.state().root());

  fx.run_round(4, {5});
  ASSERT_TRUE(auditor.accept_round(fx.rounds.back()).ok());
  EXPECT_EQ(auditor.rounds_accepted(), 4u);

  // Queries against the adopted head verify too.
  QueryService queries(fx.service);
  auto resp = queries.run(Query::count());
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(auditor.verify_query(resp.value().receipt).ok());
}

TEST(ChainSummary, SingleRoundChain) {
  Fixture fx;
  fx.run_round(1, {1});
  auto summary = prove_chain_summary(fx.rounds);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(verify_chain_summary(summary.value().receipt, fx.board,
                                   summary.value().commitments)
                  .ok());
}

TEST(ChainSummary, RejectsGappedChain) {
  Fixture fx;
  fx.run_round(1, {1});
  fx.run_round(2, {2});
  fx.run_round(3, {3});
  // Drop the middle round: the in-guest chain-link check must abort.
  std::vector<zvm::Receipt> gapped = {fx.rounds[0], fx.rounds[2]};
  auto summary = prove_chain_summary(gapped);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.error().code, Errc::guest_abort);
}

TEST(ChainSummary, RejectsReorderedChain) {
  Fixture fx;
  fx.run_round(1, {1});
  fx.run_round(2, {2});
  std::vector<zvm::Receipt> reordered = {fx.rounds[1], fx.rounds[0]};
  EXPECT_FALSE(prove_chain_summary(reordered).ok());
}

TEST(ChainSummary, RejectsChainNotStartingAtGenesis) {
  Fixture fx;
  fx.run_round(1, {1});
  fx.run_round(2, {2});
  std::vector<zvm::Receipt> tail = {fx.rounds[1]};
  EXPECT_FALSE(prove_chain_summary(tail).ok());
}

TEST(ChainSummary, ForeignBoardRejectedAtVerification) {
  Fixture fx;
  fx.run_round(1, {1});
  auto summary = prove_chain_summary(fx.rounds);
  ASSERT_TRUE(summary.ok());
  CommitmentBoard other_board;
  auto verified = verify_chain_summary(summary.value().receipt, other_board,
                                       summary.value().commitments);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::commitment_missing);
}

TEST(ChainSummary, DoctoredJournalRejected) {
  Fixture fx;
  fx.run_round(1, {1});
  auto summary = prove_chain_summary(fx.rounds);
  ASSERT_TRUE(summary.ok());
  auto forged = summary.value().receipt;
  ChainSummaryJournal j = summary.value().journal;
  j.final_entry_count += 10;
  Writer w;
  j.write(w);
  forged.journal = std::move(w).take();
  EXPECT_FALSE(
      verify_chain_summary(forged, fx.board, summary.value().commitments)
          .ok());
}

TEST(ChainSummary, AdoptGuards) {
  Fixture fx;
  fx.run_round(1, {1});
  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor.accept_round(fx.rounds[0]).ok());
  // Cannot adopt after accepting rounds.
  EXPECT_FALSE(auditor.adopt_summary(ChainHead{.rounds = 1, .claim_digest = {}, .root = {}, .entry_count = 0}).ok());
  Auditor fresh(fx.board);
  EXPECT_FALSE(fresh.adopt_summary(ChainHead{}).ok());
}

}  // namespace
}  // namespace zkt::core
