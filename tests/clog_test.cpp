// CLog state tests: apply semantics (merge vs append), index stability,
// root evolution, and proofs.
#include <gtest/gtest.h>

#include "core/clog.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;

FlowRecord rec(u32 src, u64 packets) {
  FlowRecord r;
  for (u64 i = 0; i < packets; ++i) {
    PacketObservation pkt;
    pkt.key = {src, 0x09090909, 1000, 443, 6};
    pkt.timestamp_ms = 100 + i;
    pkt.bytes = 100;
    pkt.hop_count = 3;
    r.observe(pkt);
  }
  return r;
}

TEST(CLogState, EmptyStateRoot) {
  CLogState state;
  EXPECT_EQ(state.entry_count(), 0u);
  EXPECT_EQ(state.root(), crypto::MerkleTree::empty_leaf());
  EXPECT_FALSE(state.find({1, 2, 3, 4, 5}).has_value());
}

TEST(CLogState, AppendsNewFlows) {
  CLogState state;
  const std::vector<FlowRecord> records = {rec(1, 2), rec(2, 3)};
  auto updates = state.apply_records(records);
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_TRUE(updates[0].created);
  EXPECT_EQ(updates[0].index, 0u);
  EXPECT_TRUE(updates[1].created);
  EXPECT_EQ(updates[1].index, 1u);
  EXPECT_EQ(state.entry_count(), 2u);
  EXPECT_EQ(state.find(records[0].key).value(), 0u);
}

TEST(CLogState, MergesExistingFlows) {
  CLogState state;
  state.apply_records(std::vector<FlowRecord>{rec(1, 2)});
  const auto root_before = state.root();
  auto updates = state.apply_records(std::vector<FlowRecord>{rec(1, 5)});
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_FALSE(updates[0].created);
  EXPECT_EQ(updates[0].index, 0u);
  EXPECT_EQ(state.entry_count(), 1u);
  EXPECT_EQ(state.entry(0).packets, 7u);
  EXPECT_NE(state.root(), root_before);
  EXPECT_EQ(updates[0].new_leaf, clog_leaf_digest(state.entry(0)));
}

TEST(CLogState, IndicesStableAcrossRounds) {
  CLogState state;
  state.apply_records(std::vector<FlowRecord>{rec(1, 1), rec(2, 1)});
  state.apply_records(std::vector<FlowRecord>{rec(3, 1), rec(1, 1)});
  EXPECT_EQ(state.find(rec(1, 1).key).value(), 0u);
  EXPECT_EQ(state.find(rec(2, 1).key).value(), 1u);
  EXPECT_EQ(state.find(rec(3, 1).key).value(), 2u);
}

TEST(CLogState, RootMatchesFreshTreeOverEntryBytes) {
  CLogState state;
  std::vector<FlowRecord> records;
  for (u32 i = 1; i <= 20; ++i) records.push_back(rec(i, i));
  state.apply_records(records);
  state.apply_records(std::vector<FlowRecord>{rec(5, 100), rec(21, 1)});

  std::vector<crypto::Digest32> leaves;
  for (const auto& bytes : state.entry_bytes()) {
    leaves.push_back(crypto::MerkleTree::hash_leaf(bytes));
  }
  crypto::MerkleTree fresh(leaves);
  EXPECT_EQ(state.root(), fresh.root());
}

TEST(CLogState, ProofsVerifyAgainstRoot) {
  CLogState state;
  std::vector<FlowRecord> records;
  for (u32 i = 1; i <= 9; ++i) records.push_back(rec(i, i));
  state.apply_records(records);
  for (u64 i = 0; i < state.entry_count(); ++i) {
    const auto proof = state.prove(i);
    EXPECT_TRUE(crypto::MerkleTree::verify(
                    state.root(), clog_leaf_digest(state.entry(i)), proof)
                    .ok());
  }
}

TEST(CLogState, MiddleInsertShiftsLaterIndices) {
  // Entries live in key-sorted order: inserting a middle key lands at its
  // sorted position and shifts every larger key one slot right, with the
  // tree following along.
  CLogState state;
  state.apply_records(std::vector<FlowRecord>{rec(10, 1), rec(30, 1)});
  auto updates = state.apply_records(std::vector<FlowRecord>{rec(20, 1)});
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0].created);
  EXPECT_EQ(updates[0].index, 1u);
  EXPECT_EQ(state.find({10, 0x09090909, 1000, 443, 6}).value(), 0u);
  EXPECT_EQ(state.find({20, 0x09090909, 1000, 443, 6}).value(), 1u);
  EXPECT_EQ(state.find({30, 0x09090909, 1000, 443, 6}).value(), 2u);
  EXPECT_EQ(state.lower_bound({25, 0x09090909, 1000, 443, 6}), 2u);

  // Application order never matters: any insertion sequence of the same
  // records reaches the same sorted state and root.
  CLogState other;
  other.apply_records(
      std::vector<FlowRecord>{rec(20, 1), rec(30, 1), rec(10, 1)});
  EXPECT_EQ(other.root(), state.root());
  ASSERT_TRUE(state.check_consistency().ok());
}

TEST(CLogState, SerializedOrderSurvivesRoundTrip) {
  CLogState state;
  state.apply_records(
      std::vector<FlowRecord>{rec(7, 2), rec(3, 1), rec(5, 4)});
  Writer w;
  state.serialize(w);
  Reader r(w.bytes());
  auto restored = CLogState::deserialize(r);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().root(), state.root());
  EXPECT_TRUE(restored.value().check_consistency().ok());
}

TEST(CLogState, DuplicateKeysInOneBatchMergeInOrder) {
  CLogState state;
  auto updates =
      state.apply_records(std::vector<FlowRecord>{rec(1, 2), rec(1, 3)});
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_TRUE(updates[0].created);
  EXPECT_FALSE(updates[1].created);
  EXPECT_EQ(state.entry_count(), 1u);
  EXPECT_EQ(state.entry(0).packets, 5u);
}

}  // namespace
}  // namespace zkt::core
