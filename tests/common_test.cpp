// Unit tests for the common substrate: hex/bytes utilities, Result/Status,
// binary serialization, and the simulation PRNGs.
#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serial.h"

namespace zkt {
namespace {

// ---------------------------------------------------------------------------
// bytes / hex

TEST(Hex, EncodeDecodeRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff7f");
  Bytes back;
  ASSERT_TRUE(from_hex(hex, back));
  EXPECT_EQ(back, data);
}

TEST(Hex, AcceptsPrefixAndMixedCase) {
  Bytes out;
  ASSERT_TRUE(from_hex("0xDEadBEef", out));
  EXPECT_EQ(to_hex(out), "deadbeef");
}

TEST(Hex, RejectsOddLength) {
  Bytes out;
  EXPECT_FALSE(from_hex("abc", out));
}

TEST(Hex, RejectsNonHexCharacters) {
  Bytes out;
  EXPECT_FALSE(from_hex("zz", out));
  EXPECT_FALSE(from_hex("a-", out));
}

TEST(Hex, EmptyString) {
  Bytes out{1, 2, 3};
  ASSERT_TRUE(from_hex("", out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(to_hex(out), "");
}

TEST(CtEqual, Basics) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, AppendAndBytesOf) {
  Bytes buf;
  append(buf, bytes_of("ab"));
  append(buf, std::string_view("cd"));
  EXPECT_EQ(buf, bytes_of("abcd"));
}

// ---------------------------------------------------------------------------
// Result / Status

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(Errc::not_found, "gone");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Errc::not_found);
  EXPECT_EQ(err.error().to_string(), "not_found: gone");
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_EQ(ok.value_or(7), 42);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Errc::ok);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesError) {
  Status s(Errc::hash_mismatch, "H1 != H2");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::hash_mismatch);
  EXPECT_EQ(s.to_string(), "hash_mismatch: H1 != H2");
}

TEST(Status, OkCodeWithMessageIsStillOk) {
  Status s(Errc::ok, "ignored");
  EXPECT_TRUE(s.ok());
}

TEST(Errc, AllNamesDistinct) {
  std::map<std::string, Errc> seen;
  for (int i = 0; i <= static_cast<int>(Errc::unsupported); ++i) {
    const auto code = static_cast<Errc>(i);
    const std::string name = errc_name(code);
    EXPECT_NE(name, "unknown") << i;
    EXPECT_TRUE(seen.emplace(name, code).second) << name;
  }
}

// ---------------------------------------------------------------------------
// Serialization

TEST(Serial, PrimitiveRoundTrip) {
  Writer w;
  w.u8v(0xAB);
  w.u16v(0x1234);
  w.u32v(0xDEADBEEF);
  w.u64v(0x0123456789ABCDEFULL);
  w.i64v(-42);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8v().value(), 0xAB);
  EXPECT_EQ(r.u16v().value(), 0x1234);
  EXPECT_EQ(r.u32v().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64v().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64v().value(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Serial, LittleEndianLayout) {
  Writer w;
  w.u32v(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

class VarintRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(VarintRoundTrip, Value) {
  Writer w;
  w.varint(GetParam());
  Reader r(w.bytes());
  auto v = r.varint();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), GetParam());
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL,
                                           16383ULL, 16384ULL, 0xFFFFFFFFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

TEST(Serial, VarintEncodingSizes) {
  auto size_of = [](u64 v) {
    Writer w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(~0ULL), 10u);
}

TEST(Serial, TruncatedVarintFails) {
  const Bytes truncated = {0x80};  // continuation bit set, nothing follows
  Reader r(truncated);
  EXPECT_FALSE(r.varint().ok());
}

TEST(Serial, BlobAndStringRoundTrip) {
  Writer w;
  w.blob(bytes_of("hello"));
  w.str("world");
  w.blob({});

  Reader r(w.bytes());
  EXPECT_EQ(r.blob().value(), bytes_of("hello"));
  EXPECT_EQ(r.str().value(), "world");
  EXPECT_TRUE(r.blob().value().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serial, BlobLengthBeyondBufferFails) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes
  w.raw(bytes_of("short"));
  Reader r(w.bytes());
  EXPECT_FALSE(r.blob().ok());
}

TEST(Serial, ShortReadsFail) {
  const Bytes two = {1, 2};
  Reader r(two);
  EXPECT_FALSE(r.u32v().ok());
  Reader r2(two);
  EXPECT_FALSE(r2.raw(3).ok());
  std::array<u8, 4> fixed;
  Reader r3(two);
  EXPECT_FALSE(r3.fixed(fixed).ok());
}

TEST(Serial, FixedRoundTrip) {
  std::array<u8, 4> in = {9, 8, 7, 6};
  Writer w;
  w.fixed(in);
  std::array<u8, 4> out{};
  Reader r(w.bytes());
  ASSERT_TRUE(r.fixed(out).ok());
  EXPECT_EQ(in, out);
}

TEST(Serial, PositionAndRemaining) {
  Writer w;
  w.u32v(5);
  w.u32v(6);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32v();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

// ---------------------------------------------------------------------------
// PRNGs

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    const u64 va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformWithinBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, Uniform01Range) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(5);
  double sum = 0, sq = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.4);
}

TEST(Rng, ExponentialMean) {
  Xoshiro256 rng(6);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.2);
}

TEST(Zipf, RanksWithinBounds) {
  ZipfSampler zipf(100, 1.2, 9);
  for (int i = 0; i < 5000; ++i) {
    const u64 rank = zipf.sample();
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 100u);
  }
}

TEST(Zipf, HeavyTail) {
  // Rank 1 should receive far more than the uniform share.
  ZipfSampler zipf(1000, 1.1, 10);
  u64 rank1 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample() == 1) ++rank1;
  }
  EXPECT_GT(rank1, static_cast<u64>(n) / 100);  // > 10x uniform share
}

TEST(Zipf, NearUniformWhenSIsSmall) {
  ZipfSampler zipf(10, 0.01, 11);
  std::array<u64, 10> counts{};
  const int n = 50'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample() - 1];
  for (u64 c : counts) {
    EXPECT_GT(c, static_cast<u64>(n) / 20);  // every rank gets real mass
  }
}

}  // namespace
}  // namespace zkt
