// Crash-safe prover recovery tests: ProviderPipeline::recover() over
// durable stores — snapshot adoption, roll-forward replay of receipts
// proven after the last snapshot, tamper detection on the replay path, and
// the deterministic fault-injection sweep from docs/RECOVERY.md (every
// injected crash point must either recover fully or fail with a typed
// Errc; none may corrupt the chain).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/auditor.h"
#include "core/pipeline.h"
#include "store/fault.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ =
        std::filesystem::temp_directory_path() /
        ("zkt_recovery_test_" + std::to_string(::getpid()) + "_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         ".wal");
    clean();
  }
  void TearDown() override { clean(); }
  void clean() {
    std::filesystem::remove(wal_path_);
    std::filesystem::remove(wal_path_.string() + ".snap");
    std::filesystem::remove(wal_path_.string() + ".snap.tmp");
  }

  store::StoreConfig config() const {
    return store::StoreConfig{.wal_path = wal_path_.string()};
  }

  RLogBatch make_batch(u64 window, u32 router) const {
    RLogBatch batch;
    batch.router_id = router;
    batch.window_id = window;
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {router + 1, 0x0A0A0A0A, 1000, 443, 6};
    pkt.timestamp_ms = window * 5000;
    pkt.bytes = 100 + window;
    record.observe(pkt);
    batch.records.push_back(record);
    return batch;
  }

  void store_window(store::LogStore& store, CommitmentBoard& board,
                    u64 window, u32 routers) {
    for (u32 r = 0; r < routers; ++r) {
      RLogBatch batch = make_batch(window, r);
      ASSERT_TRUE(
          board.publish(make_commitment(batch, key_, window).value()).ok());
      ASSERT_TRUE(store
                      .append(store::kTableRlogs, window, r,
                              batch.canonical_bytes())
                      .ok());
    }
  }

  crypto::SchnorrKeyPair key_ = crypto::schnorr_keygen_from_seed("recover");
  std::filesystem::path wal_path_;
};

TEST_F(RecoveryTest, KillAndRestartResumesChainEndToEnd) {
  CommitmentBoard board;
  // Process 1: aggregate two windows, then die (scope exit).
  {
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    store_window(store, board, 1, 2);
    store_window(store, board, 2, 2);
    ProviderPipeline pipeline(store, board);
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    ASSERT_EQ(rounds.value().size(), 2u);
  }

  // Process 2: a fresh store and pipeline resume where process 1 stopped.
  store::LogStore store(config());
  ASSERT_TRUE(store.recover().ok());
  store_window(store, board, 3, 2);  // a new window arrived meanwhile
  ProviderPipeline pipeline(store, board);
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_TRUE(recovery.value().resumed);
  EXPECT_EQ(recovery.value().rounds_restored, 2u);
  EXPECT_EQ(recovery.value().rounds_replayed, 0u);
  EXPECT_EQ(recovery.value().snapshots_skipped, 0u);
  EXPECT_EQ(recovery.value().last_window, 2u);

  auto rounds = pipeline.aggregate_pending();
  ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
  ASSERT_EQ(rounds.value().size(), 1u);  // only window 3 was pending
  ASSERT_EQ(pipeline.receipts().size(), 3u);

  // The whole chain — two pre-crash rounds, one post-restart round —
  // verifies end-to-end, receipt by receipt.
  Auditor auditor(board);
  for (const auto& receipt : pipeline.receipts()) {
    ASSERT_TRUE(auditor.accept_round(receipt).ok());
  }
  EXPECT_EQ(auditor.rounds_accepted(), 3u);
}

TEST_F(RecoveryTest, ReceiptsPastTheLastSnapshotAreReplayedNotReproven) {
  CommitmentBoard board;
  PipelineOptions options;
  options.checkpoint_every_n_rounds = 2;  // snapshot only after round 2
  {
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    store_window(store, board, 1, 1);
    store_window(store, board, 2, 1);
    store_window(store, board, 3, 1);
    ProviderPipeline pipeline(store, board, options);
    ASSERT_TRUE(pipeline.aggregate_pending().ok());
    EXPECT_EQ(store.row_count(store::kTableChainState), 1u);
    EXPECT_EQ(store.row_count(store::kTableReceipts), 3u);
  }

  store::LogStore store(config());
  ASSERT_TRUE(store.recover().ok());
  ProviderPipeline pipeline(store, board, options);
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().rounds_restored, 2u);  // from the snapshot
  EXPECT_EQ(recovery.value().rounds_replayed, 1u);  // round 3, rolled forward
  EXPECT_EQ(recovery.value().last_window, 3u);
  EXPECT_EQ(pipeline.receipts().size(), 3u);
  EXPECT_TRUE(pipeline.aggregate_pending().value().empty());

  Auditor auditor(board);
  for (const auto& receipt : pipeline.receipts()) {
    ASSERT_TRUE(auditor.accept_round(receipt).ok());
  }
}

TEST_F(RecoveryTest, ReplaysWholeChainWhenSnapshotsAreDisabled) {
  CommitmentBoard board;
  PipelineOptions options;
  options.checkpoint_every_n_rounds = 0;  // no snapshots at all
  {
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    store_window(store, board, 1, 1);
    store_window(store, board, 2, 1);
    ProviderPipeline pipeline(store, board, options);
    ASSERT_TRUE(pipeline.aggregate_pending().ok());
    EXPECT_EQ(store.row_count(store::kTableChainState), 0u);
  }

  store::LogStore store(config());
  ASSERT_TRUE(store.recover().ok());
  ProviderPipeline pipeline(store, board, options);
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_TRUE(recovery.value().resumed);
  EXPECT_EQ(recovery.value().rounds_restored, 0u);
  EXPECT_EQ(recovery.value().rounds_replayed, 2u);
  Auditor auditor(board);
  for (const auto& receipt : pipeline.receipts()) {
    ASSERT_TRUE(auditor.accept_round(receipt).ok());
  }
}

TEST_F(RecoveryTest, RecoverOnEmptyStoreIsAFreshStart) {
  CommitmentBoard board;
  store::LogStore store(config());
  ASSERT_TRUE(store.recover().ok());
  ProviderPipeline pipeline(store, board);
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery.value().resumed);
  EXPECT_FALSE(recovery.value().last_window.has_value());
}

TEST_F(RecoveryTest, RecoverAfterAggregationIsRejected) {
  CommitmentBoard board;
  store::LogStore store;  // in-memory is enough here
  ProviderPipeline pipeline(store, board);
  store_window(store, board, 1, 1);
  ASSERT_TRUE(pipeline.aggregate_pending().ok());
  auto recovery = pipeline.recover();
  ASSERT_FALSE(recovery.ok());
  EXPECT_EQ(recovery.error().code, Errc::invalid_argument);
}

TEST_F(RecoveryTest, TamperedRawLogHaltsReplay) {
  CommitmentBoard board;
  store::LogStore store;  // same store, two pipeline "processes"
  PipelineOptions options;
  options.checkpoint_every_n_rounds = 0;  // force the replay path
  store_window(store, board, 1, 1);
  {
    ProviderPipeline pipeline(store, board, options);
    ASSERT_TRUE(pipeline.aggregate_pending().ok());
  }
  // Swap the stored batch for a doctored one after its receipt was proven.
  ASSERT_EQ(store.drop_rows(store::kTableRlogs, 1), 1u);
  RLogBatch tampered = make_batch(1, 0);
  tampered.records[0].bytes += 1;
  ASSERT_TRUE(store
                  .append(store::kTableRlogs, 1, 0,
                          tampered.canonical_bytes())
                  .ok());

  ProviderPipeline fresh(store, board, options);
  auto recovery = fresh.recover();
  ASSERT_FALSE(recovery.ok());  // replay checks batches against the journal
  EXPECT_EQ(recovery.error().code, Errc::hash_mismatch);
}

TEST_F(RecoveryTest, PrunedLogsBeyondTheLastSnapshotBreakTheChain) {
  CommitmentBoard board;
  store::LogStore store;
  PipelineOptions options;
  options.checkpoint_every_n_rounds = 0;  // nothing to restore from...
  store_window(store, board, 1, 1);
  {
    ProviderPipeline pipeline(store, board, options);
    ASSERT_TRUE(pipeline.aggregate_pending().ok());
    EXPECT_EQ(pipeline.prune_aggregated(), 1u);  // ...and no raw logs left
  }
  ProviderPipeline fresh(store, board, options);
  auto recovery = fresh.recover();
  ASSERT_FALSE(recovery.ok());
  EXPECT_EQ(recovery.error().code, Errc::chain_broken);
}

TEST_F(RecoveryTest, OrphanSnapshotWithoutReceiptIsSkipped) {
  CommitmentBoard board;
  store::LogStore store;
  ProviderPipeline pipeline(store, board);
  store_window(store, board, 1, 1);
  store_window(store, board, 2, 1);
  ASSERT_TRUE(pipeline.aggregate_pending().ok());
  // Simulate a crash between snapshot append and receipt append: a
  // chain_state row for a window that has no receipt.
  const ChainSnapshot orphan =
      ChainSnapshot::capture(3, 99, pipeline.receipts().back().claim.digest(),
                             pipeline.aggregation().state());
  ASSERT_TRUE(
      store.append(store::kTableChainState, 99, 3, orphan.to_bytes()).ok());

  ProviderPipeline fresh(store, board);
  auto recovery = fresh.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().snapshots_skipped, 1u);
  EXPECT_EQ(recovery.value().rounds_restored, 2u);  // older snapshot adopted
  EXPECT_EQ(recovery.value().last_window, 2u);
}

// The acceptance sweep: arm every fault point at every interesting
// occurrence index, run the pipeline into it, then "restart" and require
// that recovery completes the chain — or, where the injected fault kills
// the run, that the failure was a typed transient error. No (point, index)
// pair may corrupt the chain or trip an untyped failure.
TEST_F(RecoveryTest, FaultSweepEveryCrashPointRecoversOrFailsTyped) {
  struct Case {
    store::FaultPoint point;
    u64 after_n;
  };
  std::vector<Case> cases;
  // Aggregating 3 single-router windows touches the store ~6 times per
  // append-class point (snapshot + receipt per round) and 4 times per
  // scan-class point (pending scan + one load per round): offsets 0..5
  // cover every crash position, plus a tail where the fault never fires.
  for (u64 n = 0; n < 6; ++n) {
    cases.push_back({store::FaultPoint::wal_append, n});
    cases.push_back({store::FaultPoint::wal_torn_write, n});
    cases.push_back({store::FaultPoint::fsync, n});
    cases.push_back({store::FaultPoint::scan, n});
  }
  // The checkpoint points fire inside the single checkpoint() call below.
  cases.push_back({store::FaultPoint::checkpoint_snapshot_write, 0});
  cases.push_back({store::FaultPoint::checkpoint_rename, 0});
  cases.push_back({store::FaultPoint::checkpoint_wal_truncate, 0});

  PipelineOptions options;
  options.retry.max_attempts = 2;
  options.retry.base_backoff = std::chrono::milliseconds(1);
  options.retry.max_backoff = std::chrono::milliseconds(2);

  for (const auto& test_case : cases) {
    SCOPED_TRACE(std::string(store::fault_point_name(test_case.point)) +
                 " after " + std::to_string(test_case.after_n) + " hits");
    clean();
    CommitmentBoard board;
    store::FaultInjector faults;

    // Process 1: populate, arm the fault, aggregate into it.
    {
      store::LogStore store(config());
      ASSERT_TRUE(store.recover().ok());
      store_window(store, board, 1, 1);
      store_window(store, board, 2, 1);
      store_window(store, board, 3, 1);
      faults.arm(test_case.point, test_case.after_n);
      store.set_fault_injector(&faults);
      ProviderPipeline pipeline(store, board, options);
      auto rounds = pipeline.aggregate_pending();
      if (!rounds.ok()) {
        // A crash-equivalent failure must surface as the typed transient
        // class — never a parse error, never silent corruption.
        EXPECT_EQ(rounds.error().code, Errc::io_error)
            << rounds.error().to_string();
      }
      (void)store.checkpoint();  // exercises the checkpoint crash points
      store.set_fault_injector(nullptr);
    }

    // Process 2: restart with a healthy store; the chain must complete.
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    ProviderPipeline pipeline(store, board, options);
    auto recovery = pipeline.recover();
    ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    ASSERT_EQ(pipeline.receipts().size(), 3u);
    Auditor auditor(board);
    for (const auto& receipt : pipeline.receipts()) {
      ASSERT_TRUE(auditor.accept_round(receipt).ok());
    }
    EXPECT_EQ(auditor.rounds_accepted(), 3u);
  }
}

}  // namespace
}  // namespace zkt::core
