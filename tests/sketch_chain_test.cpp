// Proof-carrying round sketch, end to end (DESIGN.md §10): sketch digests
// chained through aggregation journals and accepted by the stock Auditor /
// ShardedAuditor paths, QueryService's error-bound routing between the
// sketch guests and exact complete-scan proofs, snapshot/restore of sketch
// state, and the soundness negatives (tampered counter, wrong seed, stale
// sketch, forged merge, params swap, doctored estimates).
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/chain_snapshot.h"
#include "core/fold.h"
#include "core/service.h"
#include "core/sharded.h"
#include "sim/workload.h"

namespace zkt::core {
namespace {

using netflow::FlowKey;
using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;
using netflow::RoundSketch;
using netflow::SketchParams;

/// Small params so the query router's cost estimator favours the sketch
/// already at test-sized states: est_sketch = 64*2*8/64 + 8*2 = 32 traced
/// hashes, vs 2 per CLog entry for the exact scan.
SketchParams small_params() {
  SketchParams p;
  p.cm = {.width = 64, .depth = 2, .seed = 7};
  p.heavy_capacity = 8;
  return p;
}

/// `flows` mice with one packet each, plus one elephant flow with
/// `elephant_packets` observations — the heavy-hitter workload.
RLogBatch build_batch(u32 router, u64 window, u32 flows,
                      u32 elephant_packets = 0) {
  RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  for (u32 f = 0; f < flows; ++f) {
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = sim::synth_flow_key(f, 31);
    pkt.timestamp_ms = window * 5000 + f;
    pkt.bytes = 100 + f;
    pkt.hop_count = 3;
    record.observe(pkt);
    batch.records.push_back(std::move(record));
  }
  if (elephant_packets > 0) {
    FlowRecord elephant;
    for (u32 i = 0; i < elephant_packets; ++i) {
      PacketObservation pkt;
      pkt.key = sim::synth_flow_key(10'000, 31);
      pkt.timestamp_ms = window * 5000 + 1000 + i;
      pkt.bytes = 1500;
      pkt.hop_count = 3;
      elephant.observe(pkt);
    }
    batch.records.push_back(std::move(elephant));
  }
  return batch;
}

struct Fixture {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("sketch-e2e");
  AggregationService service{
      board, AggregationOptions{.sketch = small_params()}};

  RLogBatch committed(u32 router, u64 window, u32 flows,
                      u32 elephant_packets = 0) {
    auto batch = build_batch(router, window, flows, elephant_packets);
    EXPECT_TRUE(
        board.publish(make_commitment(batch, key, window * 5000).value())
            .ok());
    return batch;
  }
};

// ---------------------------------------------------------------------------
// Chaining through journals and the stock auditor paths.

TEST(SketchChain, JournalsChainSketchDigestsAcrossRounds) {
  Fixture fx;
  const Digest32 genesis = RoundSketch(small_params()).hash();
  Digest32 prev = genesis;
  for (u64 w = 1; w <= 3; ++w) {
    auto round = fx.service.aggregate({fx.committed(0, w, 10)});
    ASSERT_TRUE(round.ok()) << round.error().to_string();
    const AggJournal& j = round.value().journal;
    ASSERT_TRUE(j.has_sketch);
    EXPECT_EQ(j.sketch_params, small_params());
    EXPECT_EQ(j.prev_sketch_digest, prev);
    EXPECT_NE(j.sketch_digest, prev);
    prev = j.sketch_digest;
  }
  // The service's host mirror lands on the same digest the chain proved.
  EXPECT_EQ(fx.service.sketch().hash(), prev);
  EXPECT_EQ(fx.service.sketch().total(), 30u);
}

TEST(SketchChain, AuditorTracksSketchAcrossAcceptPaths) {
  Fixture fx;
  std::vector<zvm::Receipt> receipts;
  for (u64 w = 1; w <= 3; ++w) {
    auto round = fx.service.aggregate({fx.committed(0, w, 8)});
    ASSERT_TRUE(round.ok()) << round.error().to_string();
    receipts.push_back(round.value().receipt);
  }

  // One receipt at a time.
  Auditor one(fx.board);
  for (const auto& receipt : receipts) {
    ASSERT_TRUE(one.accept_round(receipt).ok());
  }
  EXPECT_TRUE(one.sketch_known());
  EXPECT_TRUE(one.has_sketch());
  EXPECT_EQ(one.sketch_digest(), fx.service.sketch().hash());
  EXPECT_EQ(one.sketch_params(), small_params());

  // Batched: identical final sketch position.
  Auditor batched(fx.board);
  ASSERT_TRUE(batched.accept_rounds(receipts).ok());
  EXPECT_EQ(batched.sketch_digest(), one.sketch_digest());

  // A chain that chains onto a different sketch digest is rejected: feed
  // round 3 directly after round 1 (the root/claim checks would also fire;
  // tamper-free sketch continuity is what accept_round enforces together
  // with them).
  Auditor broken(fx.board);
  ASSERT_TRUE(broken.accept_round(receipts[0]).ok());
  EXPECT_FALSE(broken.accept_round(receipts[2]).ok());
}

TEST(SketchChain, UnsketchedChainsStillAuditAndRefuseSketchQueries) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("sketch-off");
  AggregationService service(board, AggregationOptions{.sketch = std::nullopt});
  auto batch = build_batch(0, 1, 6);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 5000).value()).ok());
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  EXPECT_FALSE(round.value().journal.has_sketch);

  Auditor auditor(board);
  ASSERT_TRUE(auditor.accept_round(round.value().receipt).ok());
  EXPECT_FALSE(auditor.has_sketch());

  // The heavy guest fails fast: there is no sketch to answer from.
  EXPECT_FALSE(
      prove_sketch_heavy(round.value().receipt, RoundSketch(small_params()), 3)
          .ok());
}

// ---------------------------------------------------------------------------
// Sharded path: shard sketches summed through the fold, bound by the seal.

TEST(SketchChain, ShardedTreeSealBindsMergedRoundSketch) {
  Fixture fx;
  ShardedAggregationService sharded(
      fx.board, ShardedOptions{.shard_count = 2, .sketch = small_params()});
  auto round = sharded.aggregate({fx.committed(0, 1, 16, 20)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  ASSERT_TRUE(round.value().tree_seal.has_value());
  ASSERT_EQ(round.value().shard_sketches.size(), 2u);
  ASSERT_TRUE(round.value().round_sketch.has_value());

  auto j = JoinJournal::parse(round.value().tree_seal->journal);
  ASSERT_TRUE(j.ok()) << j.error().to_string();
  ASSERT_TRUE(j.value().has_sketch);
  EXPECT_EQ(j.value().sketch_digest, round.value().round_sketch->hash());
  EXPECT_EQ(j.value().sketch_total, 36u);  // 16 mice + 20 elephant packets
  // The merged round sketch is the shard sketches' sum (order-sensitive
  // merge, left to right — replayed here).
  RoundSketch merged = round.value().shard_sketches[0];
  ASSERT_TRUE(merged.merge(round.value().shard_sketches[1]).ok());
  EXPECT_EQ(merged.hash(), round.value().round_sketch->hash());

  ShardedAuditor auditor(fx.board, 2);
  ASSERT_TRUE(auditor.accept_round(round.value()).ok());
  EXPECT_TRUE(auditor.has_sketch());
  EXPECT_TRUE(auditor.round_sketch_known());
  EXPECT_EQ(auditor.round_sketch_digest(), round.value().round_sketch->hash());
  for (u32 s = 0; s < 2; ++s) {
    EXPECT_EQ(auditor.shard_sketch_digest(s),
              round.value().shard_sketches[s].hash());
  }
}

TEST(SketchChain, ShardedPerShardPathTracksShardSketches) {
  Fixture fx;
  ShardedAggregationService sharded(
      fx.board, ShardedOptions{.shard_count = 2, .join_fanout = 0,
                               .sketch = small_params()});
  auto round = sharded.aggregate({fx.committed(0, 1, 16)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  ASSERT_FALSE(round.value().tree_seal.has_value());

  ShardedAuditor auditor(fx.board, 2);
  ASSERT_TRUE(auditor.accept_round(round.value()).ok());
  EXPECT_TRUE(auditor.has_sketch());
  EXPECT_FALSE(auditor.round_sketch_known());  // no seal, no merged digest
  for (u32 s = 0; s < 2; ++s) {
    EXPECT_EQ(auditor.shard_sketch_digest(s),
              round.value().shard_sketches[s].hash());
  }
}

// ---------------------------------------------------------------------------
// QueryService routing + auditor verification of the sketch query guests.

TEST(SketchQueryRouting, HeavyHittersAboveFloorUseSketchAndVerify) {
  Fixture fx;
  // 29 mice + a 40-packet elephant: total weight 69, capacity 8, so the
  // Space-Saving floor is floor(69/8) = 8 — threshold 10 clears it.
  auto round = fx.service.aggregate({fx.committed(0, 1, 29, 40)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();

  QueryService queries(fx.service);
  auto response = queries.heavy_hitters(10);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  ASSERT_TRUE(response.value().used_sketch);
  ASSERT_TRUE(response.value().sketch.has_value());
  const SketchHeavyJournal& j = response.value().sketch->journal;
  EXPECT_EQ(j.threshold, 10u);
  EXPECT_EQ(j.total, 69u);
  ASSERT_GE(j.hits.size(), 1u);
  // The elephant leads, bracketed by [count - error, cms_estimate].
  EXPECT_EQ(j.hits[0].key, sim::synth_flow_key(10'000, 31));
  EXPECT_GE(j.hits[0].count, 40u);
  EXPECT_LE(j.hits[0].count - j.hits[0].error, 40u);
  EXPECT_GE(j.hits[0].cms_estimate, 40u);

  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor.accept_round(round.value().receipt).ok());
  auto verified = auditor.verify_heavy_hitters(response.value().sketch->receipt);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().sketch_digest, auditor.sketch_digest());
}

TEST(SketchQueryRouting, ThresholdBelowFloorFallsBackToExact) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 29, 40)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();

  // Threshold 5 <= floor(69/8): the sketch cannot prove completeness, so
  // the router answers with an exact complete-scan count instead.
  QueryService queries(fx.service);
  auto response = queries.heavy_hitters(5);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_FALSE(response.value().used_sketch);
  ASSERT_TRUE(response.value().exact.has_value());
  EXPECT_EQ(response.value().exact->value, 1u);  // only the elephant >= 5

  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor.accept_round(round.value().receipt).ok());
  auto verified = auditor.verify_query(response.value().exact->receipt);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().mode, QueryMode::complete);
}

TEST(SketchQueryRouting, TinyStateFallsBackToExactByCost) {
  Fixture fx;
  // 4 entries: est_exact = 8 traced hashes, est_sketch = 32 — the cost
  // estimator must pick the exact scan even though the bound would hold.
  auto round = fx.service.aggregate({fx.committed(0, 1, 0, 40)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  ASSERT_EQ(fx.service.state().entry_count(), 1u);

  QueryService queries(fx.service);
  auto heavy = queries.heavy_hitters(39);
  ASSERT_TRUE(heavy.ok()) << heavy.error().to_string();
  EXPECT_FALSE(heavy.value().used_sketch);
  auto card = queries.cardinality();
  ASSERT_TRUE(card.ok()) << card.error().to_string();
  EXPECT_FALSE(card.value().used_sketch);
  EXPECT_EQ(card.value().exact->value, 1u);
}

TEST(SketchQueryRouting, CardinalityUsesSketchAndVerifies) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 30)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();

  QueryService queries(fx.service);
  auto response = queries.cardinality();
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  ASSERT_TRUE(response.value().used_sketch);
  const SketchCardinalityJournal& j = response.value().sketch->journal;
  EXPECT_EQ(j.distinct_flows, 30u);  // exact: one CLog entry per flow
  EXPECT_LE(j.cms_lower_bound, 30u);
  EXPECT_GE(j.cms_lower_bound, 1u);

  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor.accept_round(round.value().receipt).ok());
  auto verified =
      auditor.verify_cardinality(response.value().sketch->receipt);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().distinct_flows, 30u);
}

// ---------------------------------------------------------------------------
// Snapshot / restore of sketch state (the recovery surface; the full
// FaultInjector crash sweep runs in tree_pipeline_test / recovery_test with
// sketches on by default).

TEST(SketchSnapshot, RoundTripCarriesSketchAndRestores) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 12)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();

  const ChainSnapshot snap = ChainSnapshot::capture(
      1, 1, round.value().receipt.claim.digest(), fx.service.state(),
      &fx.service.sketch());
  ASSERT_TRUE(snap.has_sketch);
  auto reparsed = ChainSnapshot::from_bytes(snap.to_bytes());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  auto sketch = reparsed.value().restore_sketch();
  ASSERT_TRUE(sketch.ok()) << sketch.error().to_string();
  ASSERT_TRUE(sketch.value().has_value());
  EXPECT_EQ(sketch.value()->hash(), fx.service.sketch().hash());

  // A fresh service restored from the snapshot continues the chain.
  AggregationService resumed(fx.board,
                             AggregationOptions{.sketch = small_params()});
  auto state = reparsed.value().restore_state();
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(resumed
                  .restore(std::move(state.value()), round.value().receipt, 1,
                           std::move(*sketch.value()))
                  .ok());
  auto next = resumed.aggregate({fx.committed(0, 2, 5)});
  ASSERT_TRUE(next.ok()) << next.error().to_string();
  EXPECT_EQ(next.value().journal.prev_sketch_digest,
            round.value().journal.sketch_digest);
}

TEST(SketchSnapshot, RestoreRejectsMissingOrStaleSketch) {
  Fixture fx;
  auto round1 = fx.service.aggregate({fx.committed(0, 1, 12)});
  ASSERT_TRUE(round1.ok());
  const RoundSketch after_round1 = fx.service.sketch();
  auto round2 = fx.service.aggregate({fx.committed(0, 2, 12)});
  ASSERT_TRUE(round2.ok());

  // Missing: the chain carries a sketch but none was recovered.
  {
    AggregationService resumed(fx.board,
                               AggregationOptions{.sketch = small_params()});
    CLogState state = fx.service.state();
    EXPECT_FALSE(
        resumed.restore(std::move(state), round2.value().receipt, 2).ok());
  }
  // Stale: round 1's sketch against round 2's receipt (soundness negative —
  // a stale sketch digest cannot be adopted as the chain position).
  {
    AggregationService resumed(fx.board,
                               AggregationOptions{.sketch = small_params()});
    CLogState state = fx.service.state();
    EXPECT_FALSE(resumed
                     .restore(std::move(state), round2.value().receipt, 2,
                              after_round1)
                     .ok());
  }
}

// ---------------------------------------------------------------------------
// Soundness negatives.

TEST(SketchSoundness, TamperedCounterFailsProving) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 29, 40)});
  ASSERT_TRUE(round.ok());
  RoundSketch doctored = fx.service.sketch();
  doctored.cm_mut().set_counter(0, 0, doctored.cm().counter(0, 0) + 1);
  // The guest hashes the sketch bytes and asserts they match the journal's
  // chained digest — a flipped counter cannot be proven.
  EXPECT_FALSE(prove_sketch_heavy(round.value().receipt, doctored, 10).ok());
  EXPECT_FALSE(
      prove_sketch_cardinality(round.value().receipt, doctored).ok());
}

TEST(SketchSoundness, WrongSeedSketchFailsProving) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 29, 40)});
  ASSERT_TRUE(round.ok());
  SketchParams wrong_seed = small_params();
  wrong_seed.cm.seed = 999;
  RoundSketch forged(wrong_seed);
  forged.update(sim::synth_flow_key(10'000, 31), 40);
  EXPECT_FALSE(prove_sketch_heavy(round.value().receipt, forged, 10).ok());
}

TEST(SketchSoundness, ForgedShardMergeRejectedByFold) {
  Fixture fx;
  ShardedAggregationService sharded(
      fx.board, ShardedOptions{.shard_count = 2, .join_fanout = 0,
                               .sketch = small_params()});
  auto round = sharded.aggregate({fx.committed(0, 1, 16)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();

  std::vector<zvm::Receipt> leaves;
  for (const auto& shard : round.value().shard_rounds) {
    leaves.push_back(shard.receipt);
  }
  // Forge shard 0's contribution to the merge: the join guest authenticates
  // each child's sketch bytes against the digest that child's own journal
  // chained, so a substituted sketch cannot be folded in.
  std::vector<RoundSketch> forged = round.value().shard_sketches;
  forged[0].update(sim::synth_flow_key(500, 31), 100);
  FoldOptions options;
  options.leaf_sketches = forged;
  EXPECT_FALSE(fold_receipts(leaves, options).ok());

  // The honest sketches fold fine.
  FoldOptions honest;
  honest.leaf_sketches = round.value().shard_sketches;
  EXPECT_TRUE(fold_receipts(leaves, honest).ok());
}

TEST(SketchSoundness, ParamsSwapInJournalRejected) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 29, 40)});
  ASSERT_TRUE(round.ok());
  QueryService queries(fx.service);
  auto response = queries.heavy_hitters(10);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().used_sketch);

  auto forged = response.value().sketch->receipt;
  SketchHeavyJournal j = response.value().sketch->journal;
  j.params.cm.width = 4096;  // claim much tighter error bounds than proven
  Writer w;
  j.write(w);
  forged.journal = std::move(w).take();
  EXPECT_FALSE(verify_sketch_heavy(forged).ok());
}

TEST(SketchSoundness, EstimateBelowTrueCountRejected) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 29, 40)});
  ASSERT_TRUE(round.ok());
  QueryService queries(fx.service);
  auto response = queries.heavy_hitters(10);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().used_sketch);

  // Deflate the elephant's reported count below its true 40 packets: the
  // journal no longer matches the claim's journal digest.
  auto forged = response.value().sketch->receipt;
  SketchHeavyJournal j = response.value().sketch->journal;
  ASSERT_GE(j.hits[0].count, 40u);
  j.hits[0].count = 3;
  j.hits[0].cms_estimate = 3;
  Writer w;
  j.write(w);
  forged.journal = std::move(w).take();
  EXPECT_FALSE(verify_sketch_heavy(forged).ok());
}

TEST(SketchSoundness, QueryAgainstUnacceptedRoundRejected) {
  Fixture fx;
  auto round = fx.service.aggregate({fx.committed(0, 1, 29, 40)});
  ASSERT_TRUE(round.ok());
  QueryService queries(fx.service);
  auto response = queries.heavy_hitters(10);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().used_sketch);

  // An auditor that accepted nothing has no round for the query to bind.
  Auditor fresh(fx.board);
  auto verified = fresh.verify_heavy_hitters(response.value().sketch->receipt);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::chain_broken);
}

}  // namespace
}  // namespace zkt::core
