// Latency-histogram tests: bucket math, merge, serialization, and the
// verifiable quantile-bound proof path.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/describe.h"
#include "core/histogram_query.h"
#include "netflow/histogram.h"

namespace zkt::netflow {
namespace {

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 9u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~0ULL),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(0), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(9), 1023u);
}

TEST(Histogram, EveryValueLandsWithinItsBucketBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.uniform(1'000'000);
    const u32 b = LatencyHistogram::bucket_of(v);
    EXPECT_LE(v, LatencyHistogram::bucket_upper_us(b));
    if (b > 0) {
      EXPECT_GT(v, LatencyHistogram::bucket_upper_us(b - 1));
    }
  }
}

TEST(Histogram, CountProvablyBelowIsConservative) {
  LatencyHistogram h;
  Xoshiro256 rng(4);
  std::vector<u64> samples;
  for (int i = 0; i < 5000; ++i) {
    const u64 v = 1000 + rng.uniform(100'000);
    samples.push_back(v);
    h.add(v);
  }
  for (u64 bound : {2'000ULL, 16'383ULL, 50'000ULL, 200'000ULL}) {
    u64 truth = 0;
    for (u64 v : samples) {
      if (v <= bound) ++truth;
    }
    // Never overcounts (a provable lower bound on the true fraction).
    EXPECT_LE(h.count_provably_below(bound), truth) << bound;
    // At power-of-two-aligned bounds the answer is exact.
  }
  EXPECT_EQ(h.count_provably_below(LatencyHistogram::bucket_upper_us(39)),
            h.total());
}

TEST(Histogram, MergeEqualsCombinedStream) {
  LatencyHistogram a, b, combined;
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.uniform(1'000'000);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a, combined);
  EXPECT_EQ(a.hash(), combined.hash());
}

TEST(Histogram, SerializationRoundTripAndConsistencyCheck) {
  LatencyHistogram h;
  h.add(100, 5);
  h.add(20'000, 7);
  const Bytes wire = h.canonical_bytes();
  Reader r(wire);
  auto parsed = LatencyHistogram::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), h);

  // A tampered total is rejected at parse (buckets must sum to total).
  Bytes bad = wire;
  bad[10] ^= 1;  // inside the total field
  Reader r2(bad);
  EXPECT_FALSE(LatencyHistogram::deserialize(r2).ok());
}

}  // namespace
}  // namespace zkt::netflow

namespace zkt::core {
namespace {

using netflow::LatencyHistogram;

struct Fixture {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("hist-q");
  LatencyHistogram histogram;
  CommitmentRef ref;

  Fixture() {
    Xoshiro256 rng(9);
    for (int i = 0; i < 10'000; ++i) {
      // ~90 % fast samples, ~10 % slow.
      const u64 v = rng.uniform(10) == 0 ? 80'000 + rng.uniform(50'000)
                                         : 5'000 + rng.uniform(20'000);
      histogram.add(v);
    }
    auto commitment = make_commitment_raw(0, 1, histogram.hash(),
                                          histogram.total(), key, 5000);
    EXPECT_TRUE(commitment.ok());
    EXPECT_TRUE(board.publish(commitment.value()).ok());
    ref = CommitmentRef{0, 1, histogram.hash(), histogram.total()};
  }
};

TEST(HistogramQuery, ProveAndVerifyQuantileBound) {
  Fixture fx;
  const u64 bound = 65'535;  // power-of-two aligned: exact
  auto response = prove_histogram_query(fx.ref, fx.histogram, bound);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().journal.count_below,
            fx.histogram.count_provably_below(bound));
  EXPECT_EQ(response.value().journal.total, fx.histogram.total());
  EXPECT_GT(fraction_below(response.value().journal), 0.85);

  auto verified =
      verify_histogram_query(response.value().receipt, fx.board, &bound);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_NEAR(fraction_below(verified.value()),
              fraction_below(response.value().journal), 1e-12);
}

TEST(HistogramQuery, TamperedHistogramFailsProving) {
  Fixture fx;
  LatencyHistogram doctored = fx.histogram;
  doctored.add(1, 1);  // post-commitment edit
  auto response = prove_histogram_query(fx.ref, doctored, 1000);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, Errc::guest_abort);
}

TEST(HistogramQuery, WrongBoundRejected) {
  Fixture fx;
  auto response = prove_histogram_query(fx.ref, fx.histogram, 1000);
  ASSERT_TRUE(response.ok());
  const u64 other_bound = 2000;
  auto verified = verify_histogram_query(response.value().receipt, fx.board,
                                         &other_bound);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::proof_invalid);
}

TEST(HistogramQuery, ForgedCountRejected) {
  Fixture fx;
  auto response = prove_histogram_query(fx.ref, fx.histogram, 65'535);
  ASSERT_TRUE(response.ok());
  auto forged = response.value().receipt;
  HistogramQueryJournal j = response.value().journal;
  j.count_below = j.total;  // claim 100 % compliance
  Writer w;
  j.write(w);
  forged.journal = std::move(w).take();
  EXPECT_FALSE(verify_histogram_query(forged, fx.board, nullptr).ok());
}

TEST(HistogramQuery, UnpublishedCommitmentRejected) {
  Fixture fx;
  auto response = prove_histogram_query(fx.ref, fx.histogram, 1000);
  ASSERT_TRUE(response.ok());
  CommitmentBoard empty;
  auto verified =
      verify_histogram_query(response.value().receipt, empty, nullptr);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::commitment_missing);
}

}  // namespace
}  // namespace zkt::core
