// End-to-end pipeline tests: commitments -> aggregation rounds (chained)
// -> queries -> independent auditor verification, plus the tamper scenarios
// of §5/§6 (any post-commitment modification must break proof generation or
// verification).
#include <gtest/gtest.h>

#include "core/zkt.h"

namespace zkt {
namespace {

using core::AggJournal;
using core::AggregationService;
using core::Auditor;
using core::CmpOp;
using core::CommitmentBoard;
using core::make_commitment;
using core::QField;
using core::Query;
using core::QueryService;
using crypto::SchnorrKeyPair;
using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

FlowRecord make_record(u32 src, u32 dst, u16 sport, u16 dport, u64 packets,
                       u64 bytes_per_packet, u8 hops) {
  FlowRecord rec;
  for (u64 i = 0; i < packets; ++i) {
    PacketObservation pkt;
    pkt.key = {src, dst, sport, dport, 6};
    pkt.timestamp_ms = 1000 + i * 10;
    pkt.bytes = static_cast<u32>(bytes_per_packet);
    pkt.hop_count = hops;
    pkt.rtt_us = 20'000 + static_cast<u32>(i);
    rec.observe(pkt);
  }
  return rec;
}

struct Fixture {
  CommitmentBoard board;
  std::vector<SchnorrKeyPair> keys;

  Fixture() {
    for (int i = 0; i < 4; ++i) {
      keys.push_back(crypto::schnorr_keygen_from_seed(
          "router-" + std::to_string(i)));
    }
  }

  RLogBatch committed_batch(u32 router, u64 window,
                            std::vector<FlowRecord> records) {
    RLogBatch batch;
    batch.router_id = router;
    batch.window_id = window;
    batch.records = std::move(records);
    auto commitment = make_commitment(batch, keys[router], window * 5000);
    EXPECT_TRUE(commitment.ok()) << commitment.error().to_string();
    auto published = board.publish(commitment.value());
    EXPECT_TRUE(published.ok()) << published.to_string();
    return batch;
  }
};

TEST(CoreE2E, SingleRoundAggregateAndQuery) {
  Fixture fx;
  auto batch = fx.committed_batch(
      0, 1,
      {make_record(0x01010101, 0x09090909, 1234, 443, 5, 1000, 7),
       make_record(0x02020202, 0x09090909, 1235, 443, 3, 500, 4)});

  AggregationService agg(fx.board);
  auto round = agg.aggregate({batch});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  EXPECT_EQ(round.value().journal.new_entry_count, 2u);
  EXPECT_FALSE(round.value().journal.has_prev);

  // SELECT SUM(hop_sum) WHERE src_ip = 1.1.1.1 AND dst_ip = 9.9.9.9
  Query q = Query::sum(QField::hop_sum)
                .and_where(QField::src_ip, CmpOp::eq, 0x01010101)
                .and_where(QField::dst_ip, CmpOp::eq, 0x09090909);
  QueryService queries(agg);
  auto resp = queries.run(q);
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp.value().value, 5u * 7u);
  EXPECT_EQ(resp.value().journal.result.matched, 1u);
  EXPECT_EQ(resp.value().journal.result.scanned, 2u);

  // Independent auditor accepts both proofs.
  Auditor auditor(fx.board);
  auto accepted = auditor.accept_round(round.value().receipt);
  ASSERT_TRUE(accepted.ok()) << accepted.error().to_string();
  auto verified = auditor.verify_query(resp.value().receipt, {.expected_query = &q});
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().result.sum, 35u);
}

TEST(CoreE2E, ChainedRoundsMergeFlows) {
  Fixture fx;
  AggregationService agg(fx.board);
  Auditor auditor(fx.board);

  // Round 0: routers 0 and 1 see the same flow.
  auto b0 = fx.committed_batch(
      0, 1, {make_record(0x0A000001, 0x0A000002, 80, 8080, 4, 100, 3)});
  auto b1 = fx.committed_batch(
      1, 1, {make_record(0x0A000001, 0x0A000002, 80, 8080, 6, 100, 3)});
  auto r0 = agg.aggregate({b0, b1});
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(r0.value().journal.new_entry_count, 1u);
  ASSERT_TRUE(auditor.accept_round(r0.value().receipt).ok());

  // Round 1: same flow again plus a new one.
  auto b2 = fx.committed_batch(
      0, 2,
      {make_record(0x0A000001, 0x0A000002, 80, 8080, 5, 100, 3),
       make_record(0x0B000001, 0x0B000002, 53, 53, 2, 60, 9)});
  auto r1 = agg.aggregate({b2});
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  EXPECT_TRUE(r1.value().journal.has_prev);
  EXPECT_EQ(r1.value().journal.new_entry_count, 2u);
  ASSERT_TRUE(auditor.accept_round(r1.value().receipt).ok());

  // Total packets for the merged flow: 4 + 6 + 5.
  QueryService queries(agg);
  Query q = Query::sum(QField::packets)
                .and_where(QField::src_ip, CmpOp::eq, 0x0A000001);
  auto resp = queries.run(q);
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp.value().value, 15u);
  auto verified = auditor.verify_query(resp.value().receipt, {.expected_query = &q});
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
}

TEST(CoreE2E, TamperedRlogFailsProofGeneration) {
  Fixture fx;
  auto batch = fx.committed_batch(
      0, 1, {make_record(0x01010101, 0x09090909, 1234, 443, 5, 1000, 7)});

  // The provider retroactively inflates the flow after committing.
  batch.records[0].packets += 100;

  AggregationService agg(fx.board);
  auto round = agg.aggregate({batch});
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.error().code, Errc::guest_abort);
}

TEST(CoreE2E, MissingCommitmentRejected) {
  Fixture fx;
  RLogBatch uncommitted;
  uncommitted.router_id = 3;
  uncommitted.window_id = 9;
  uncommitted.records = {
      make_record(0x01010101, 0x09090909, 1234, 443, 5, 1000, 7)};

  AggregationService agg(fx.board);
  auto round = agg.aggregate({uncommitted});
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.error().code, Errc::commitment_missing);
}

TEST(CoreE2E, ForgedQueryResultFailsVerification) {
  Fixture fx;
  auto batch = fx.committed_batch(
      0, 1, {make_record(0x01010101, 0x09090909, 1234, 443, 5, 1000, 7)});
  AggregationService agg(fx.board);
  auto round = agg.aggregate({batch});
  ASSERT_TRUE(round.ok());

  QueryService queries(agg);
  Query q = Query::sum(QField::packets);
  auto resp = queries.run(q);
  ASSERT_TRUE(resp.ok());

  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor.accept_round(round.value().receipt).ok());

  // Forge the journal: inflate the reported sum.
  zvm::Receipt forged = resp.value().receipt;
  core::QueryJournal j = resp.value().journal;
  j.result.sum += 1;
  Writer w;
  j.write(w);
  forged.journal = std::move(w).take();
  auto verified = auditor.verify_query(forged, {.expected_query = &q});
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::proof_invalid);
}

}  // namespace
}  // namespace zkt
