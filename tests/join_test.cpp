// Join-guest and fold tests: journal schema, tree shapes across fanouts,
// determinism across SHA-256 backends and pool widths, soundness negatives
// (forged/tampered/reordered children), and tree-seal auditing.
#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/fold.h"
#include "core/sharded.h"
#include "crypto/sha256_backend.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

RLogBatch build_batch(u32 router, u64 window, u32 flows) {
  RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  for (u32 f = 0; f < flows; ++f) {
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {0x0A000000 + f * 11 + router, 0x09090909,
               static_cast<u16>(2000 + f), 443, 6};
    pkt.timestamp_ms = window * 5000 + f;
    pkt.bytes = 64 + f;
    pkt.hop_count = 4;
    record.observe(pkt);
    batch.records.push_back(std::move(record));
  }
  return batch;
}

struct Fixture {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("join-fix");

  RLogBatch committed(u32 router, u64 window, u32 flows) {
    auto batch = build_batch(router, window, flows);
    EXPECT_TRUE(
        board.publish(make_commitment(batch, key, window * 5000).value())
            .ok());
    return batch;
  }

  /// One sharded round WITHOUT a fold: its K shard receipts are the leaves
  /// the fold tests operate on.
  RoundResult unfolded_round(u32 shard_count, u32 flows = 24) {
    ShardedAggregationService service(
        board, ShardedOptions{.shard_count = shard_count, .join_fanout = 0});
    auto round = service.aggregate({committed(0, 1, flows)});
    EXPECT_TRUE(round.ok()) << round.error().to_string();
    return std::move(round.value());
  }

  static std::vector<zvm::Receipt> leaves_of(const RoundResult& round) {
    std::vector<zvm::Receipt> leaves;
    for (const auto& shard : round.shard_rounds) {
      leaves.push_back(shard.receipt);
    }
    return leaves;
  }
};

TEST(JoinJournalSchema, RoundTrip) {
  JoinJournal j;
  j.height = 2;
  j.leaf_count = 2;
  j.total_entries = 9;
  j.fold_digest = crypto::sha256(std::string_view("fold"));
  ShardLink a;
  a.claim_digest = crypto::sha256(std::string_view("a"));
  a.new_root = crypto::sha256(std::string_view("ra"));
  a.new_entry_count = 5;
  a.commitments.push_back({1, 2, crypto::sha256(std::string_view("c")), 4});
  ShardLink b;
  b.claim_digest = crypto::sha256(std::string_view("b"));
  b.has_prev = true;
  b.prev_claim_digest = crypto::sha256(std::string_view("p"));
  b.prev_root = crypto::sha256(std::string_view("rp"));
  b.new_root = crypto::sha256(std::string_view("rb"));
  b.prev_entry_count = 3;
  b.new_entry_count = 4;
  j.links = {a, b};

  Writer w;
  j.write(w);
  auto parsed = JoinJournal::parse(w.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().height, j.height);
  EXPECT_EQ(parsed.value().leaf_count, j.leaf_count);
  EXPECT_EQ(parsed.value().total_entries, j.total_entries);
  EXPECT_EQ(parsed.value().fold_digest, j.fold_digest);
  EXPECT_EQ(parsed.value().links, j.links);

  // Trailing bytes and a link-count/leaf-count mismatch are rejected.
  Writer trailing;
  j.write(trailing);
  trailing.u8v(0);
  EXPECT_FALSE(JoinJournal::parse(trailing.bytes()).ok());
  JoinJournal bad = j;
  bad.leaf_count = 3;
  Writer bw;
  bad.write(bw);
  EXPECT_FALSE(JoinJournal::parse(bw.bytes()).ok());
}

TEST(Fold, TwoLeavesBindChainFields) {
  Fixture fx;
  const RoundResult round = fx.unfolded_round(2);
  FoldOptions options;
  options.leaf_sketches = round.shard_sketches;
  auto folded = fold_receipts(Fixture::leaves_of(round), options);
  ASSERT_TRUE(folded.ok()) << folded.error().to_string();
  EXPECT_EQ(folded.value().joins, 1u);

  zvm::Verifier verifier;
  ASSERT_TRUE(verify_join_receipt(verifier, folded.value().root).ok());
  const JoinJournal& j = folded.value().journal;
  EXPECT_EQ(j.height, 1u);
  EXPECT_EQ(j.leaf_count, 2u);
  ASSERT_EQ(j.links.size(), 2u);
  u64 entries = 0;
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(j.links[s].claim_digest,
              round.shard_rounds[s].receipt.claim.digest());
    EXPECT_EQ(j.links[s].new_root, round.shard_rounds[s].journal.new_root);
    entries += j.links[s].new_entry_count;
  }
  EXPECT_EQ(j.total_entries, entries);
}

TEST(Fold, FanoutShapesTree) {
  Fixture fx;
  const RoundResult round = fx.unfolded_round(5);
  const auto leaves = Fixture::leaves_of(round);

  FoldOptions binary;
  binary.fanout = 2;
  binary.leaf_sketches = round.shard_sketches;
  auto b = fold_receipts(leaves, binary);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  // 5 -> (2,2,1-passthrough) -> (2,1-passthrough) -> 2: heights 1,2,3.
  EXPECT_EQ(b.value().journal.height, 3u);
  EXPECT_EQ(b.value().joins, 4u);

  FoldOptions wide;
  wide.fanout = 4;
  wide.leaf_sketches = round.shard_sketches;
  auto w = fold_receipts(leaves, wide);
  ASSERT_TRUE(w.ok()) << w.error().to_string();
  // 5 -> (4,1-passthrough) -> 2.
  EXPECT_EQ(w.value().journal.height, 2u);
  EXPECT_EQ(w.value().joins, 2u);

  // Both shapes agree on the leaves, whatever the grouping.
  for (auto* result : {&b, &w}) {
    EXPECT_EQ(result->value().journal.leaf_count, 5u);
    ASSERT_EQ(result->value().journal.links.size(), 5u);
    for (size_t s = 0; s < 5; ++s) {
      EXPECT_EQ(result->value().journal.links[s].claim_digest,
                leaves[s].claim.digest());
    }
  }
  // ...but the fold digest binds the shape.
  EXPECT_NE(b.value().journal.fold_digest, w.value().journal.fold_digest);
}

TEST(Fold, RootTakesCallerSealKindInteriorComposite) {
  Fixture fx;
  const RoundResult round = fx.unfolded_round(4);
  const auto leaves = Fixture::leaves_of(round);

  FoldOptions succinct;
  succinct.prove_options.seal_kind = zvm::SealKind::succinct;
  succinct.leaf_sketches = round.shard_sketches;
  auto s = fold_receipts(leaves, succinct);
  ASSERT_TRUE(s.ok()) << s.error().to_string();
  EXPECT_EQ(s.value().root.seal_kind, zvm::SealKind::succinct);

  FoldOptions composite;
  composite.prove_options.seal_kind = zvm::SealKind::composite;
  composite.leaf_sketches = round.shard_sketches;
  auto c = fold_receipts(leaves, composite);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  EXPECT_EQ(c.value().root.seal_kind, zvm::SealKind::composite);
  // Same claim either way — the seal kind is presentation, not meaning.
  EXPECT_EQ(s.value().root.claim.digest(), c.value().root.claim.digest());

  zvm::Verifier verifier;
  EXPECT_TRUE(verify_join_receipt(verifier, s.value().root).ok());
  EXPECT_TRUE(verify_join_receipt(verifier, c.value().root).ok());
}

TEST(Fold, DeterministicAcrossBackendsAndPoolWidths) {
  Fixture fx;
  const RoundResult round = fx.unfolded_round(4);
  const auto leaves = Fixture::leaves_of(round);
  FoldOptions options;
  options.leaf_sketches = round.shard_sketches;

  auto reference = fold_receipts(leaves, options);
  ASSERT_TRUE(reference.ok()) << reference.error().to_string();
  const Bytes reference_bytes = reference.value().root.to_bytes();

  // Scalar-pinned SHA-256 backend: byte-identical seal.
  ASSERT_TRUE(
      crypto::sha256_force_backend(crypto::Sha256Backend::scalar));
  auto scalar = fold_receipts(leaves, options);
  crypto::sha256_force_backend(std::nullopt);
  ASSERT_TRUE(scalar.ok()) << scalar.error().to_string();
  EXPECT_EQ(scalar.value().root.to_bytes(), reference_bytes);

  // Single-worker pool: byte-identical seal.
  common::ThreadPool narrow(common::ThreadPool::Options{.threads = 1});
  options.pool = &narrow;
  auto pooled = fold_receipts(leaves, options);
  ASSERT_TRUE(pooled.ok()) << pooled.error().to_string();
  EXPECT_EQ(pooled.value().root.to_bytes(), reference_bytes);
}

TEST(Fold, RequiresTwoLeaves) {
  Fixture fx;
  const auto leaves = Fixture::leaves_of(fx.unfolded_round(2));
  auto one = fold_receipts(std::span<const zvm::Receipt>(leaves.data(), 1));
  ASSERT_FALSE(one.ok());
  EXPECT_EQ(one.error().code, Errc::invalid_argument);
}

// ---------------------------------------------------------------------------
// Soundness negatives.

TEST(JoinSoundness, ForgedChildWithoutReceiptFails) {
  Fixture fx;
  const auto leaves = Fixture::leaves_of(fx.unfolded_round(2));
  Writer input;
  input.u32v(2);
  for (const auto& leaf : leaves) write_join_child(input, leaf);
  // No assumption receipts supplied: the guest's verify_assumption for the
  // children cannot be discharged.
  zvm::Prover prover;
  auto receipt = prover.prove(join_image(), input.bytes(), {}, nullptr);
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.error().code, Errc::proof_invalid);
}

TEST(JoinSoundness, TamperedChildJournalFails) {
  Fixture fx;
  auto leaves = Fixture::leaves_of(fx.unfolded_round(2));
  // Tamper shard 1's claimed sub-root after proving: the join guest
  // re-hashes the journal against the (assumption-verified) claim.
  auto parsed = AggJournal::parse(leaves[1].journal);
  ASSERT_TRUE(parsed.ok());
  parsed.value().new_root.bytes[0] ^= 0xFF;
  Writer w;
  parsed.value().write(w);
  leaves[1].journal = std::move(w).take();
  auto folded = fold_receipts(leaves);
  ASSERT_FALSE(folded.ok());
  // Caught either by the host's assumption-receipt validation
  // (proof_invalid) or by the guest's journal-hash assert (guest_abort) —
  // both are terminal verification failures.
  EXPECT_TRUE(folded.error().code == Errc::proof_invalid ||
              folded.error().code == Errc::guest_abort)
      << folded.error().to_string();
}

TEST(JoinSoundness, WrongChildKindTagFails) {
  Fixture fx;
  const auto leaves = Fixture::leaves_of(fx.unfolded_round(2));
  // Claim an aggregation receipt is a join child: bind_receipt's image
  // check must fire.
  Writer input;
  input.u32v(2);
  write_join_child(input, leaves[0]);
  input.u8v(kJoinChildJoin);
  leaves[1].claim.serialize(input);
  input.blob(leaves[1].journal);
  zvm::ProveOptions options;
  options.assumptions = {leaves[0], leaves[1]};
  zvm::Prover prover;
  auto receipt = prover.prove(join_image(), input.bytes(), options, nullptr);
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.error().code, Errc::guest_abort);
}

TEST(JoinSoundness, TamperedSealRejected) {
  Fixture fx;
  const RoundResult round = fx.unfolded_round(2);
  const auto leaves = Fixture::leaves_of(round);
  FoldOptions options;
  options.leaf_sketches = round.shard_sketches;
  auto folded = fold_receipts(leaves, options);
  ASSERT_TRUE(folded.ok());
  zvm::Verifier verifier;

  // Journal tamper: claimed total_entries inflated.
  auto doctored = folded.value().root;
  auto journal = JoinJournal::parse(doctored.journal);
  ASSERT_TRUE(journal.ok());
  journal.value().total_entries += 100;
  Writer w;
  journal.value().write(w);
  doctored.journal = std::move(w).take();
  EXPECT_FALSE(verify_join_receipt(verifier, doctored).ok());

  // Image forgery: an aggregation receipt is not a join receipt.
  EXPECT_FALSE(verify_join_receipt(verifier, leaves[0]).ok());
}

TEST(JoinSoundness, SwappedChildrenChangeFoldDigestAndFailAudit) {
  Fixture fx;
  ShardedAggregationService service(
      fx.board, ShardedOptions{.shard_count = 2, .join_fanout = 0});
  auto round = service.aggregate({fx.committed(0, 1, 24)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  auto leaves = Fixture::leaves_of(round.value());
  std::vector<netflow::RoundSketch> sketches = round.value().shard_sketches;

  FoldOptions options;
  options.leaf_sketches = sketches;
  auto in_order = fold_receipts(leaves, options);
  ASSERT_TRUE(in_order.ok());
  // Swapping children must swap their sketches too — each child's sketch
  // bytes are authenticated against the digest its own journal chained.
  std::swap(leaves[0], leaves[1]);
  std::swap(sketches[0], sketches[1]);
  auto swapped = fold_receipts(leaves, options);
  ASSERT_TRUE(swapped.ok());
  // The fold digest (and thus the claim) binds child order.
  EXPECT_NE(in_order.value().journal.fold_digest,
            swapped.value().journal.fold_digest);
  EXPECT_NE(in_order.value().root.claim.digest(),
            swapped.value().root.claim.digest());

  // A swapped-order seal is a VALID join receipt — but its leaf positions
  // no longer match the shards, so the auditor rejects the round.
  zvm::Verifier verifier;
  ASSERT_TRUE(verify_join_receipt(verifier, swapped.value().root).ok());
  RoundResult forged = round.value();
  forged.shard_rounds.clear();  // seal-only round, nothing else to cross-check
  forged.tree_seal = swapped.value().root;
  ShardedAuditor reject(fx.board, 2);
  EXPECT_FALSE(reject.accept_round(forged).ok());

  // The in-order seal (same shard receipts) is accepted.
  RoundResult sealed = round.value();
  sealed.shard_rounds.clear();
  sealed.tree_seal = in_order.value().root;
  ShardedAuditor accept(fx.board, 2);
  auto accepted = accept.accept_round(sealed);
  EXPECT_TRUE(accepted.ok()) << accepted.to_string();
}

TEST(JoinSoundness, SealFromForeignReceiptsRejected) {
  // A seal folded from a DIFFERENT (also-valid) round must not audit in
  // place of this round's seal: its links don't chain from this auditor's
  // state / split outputs.
  Fixture fx;
  ShardedAggregationService service(
      fx.board, ShardedOptions{.shard_count = 2});
  auto round1 = service.aggregate({fx.committed(0, 1, 24)});
  ASSERT_TRUE(round1.ok());
  auto round2 = service.aggregate({fx.committed(0, 2, 24)});
  ASSERT_TRUE(round2.ok());

  ShardedAuditor auditor(fx.board, 2);
  ASSERT_TRUE(auditor.accept_round(round1.value()).ok());
  // Replay round 2's split receipts with round 1's seal: chain mismatch.
  RoundResult forged = round2.value();
  forged.shard_rounds.clear();
  forged.tree_seal = round1.value().tree_seal;
  EXPECT_FALSE(auditor.accept_round(forged).ok());
  // The genuine round 2 still audits.
  auto accepted = auditor.accept_round(round2.value());
  EXPECT_TRUE(accepted.ok()) << accepted.to_string();
  EXPECT_EQ(auditor.rounds_accepted(), 2u);
}

}  // namespace
}  // namespace zkt::core
