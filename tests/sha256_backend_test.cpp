// Cross-backend equivalence for the batched SHA-256 layer: every compiled
// backend must produce digests bit-identical to the portable scalar code on
// randomized inputs, across every batch API (compress_many, sha256_many,
// MerkleTree::hash_leaves / hash_pairs) and for full trees. Backends are
// pinned through the sha256_force_backend() test hook.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_backend.h"

using namespace zkt;
using namespace zkt::crypto;

namespace {

constexpr Sha256Backend kAllBackends[] = {
    Sha256Backend::scalar, Sha256Backend::shani, Sha256Backend::avx2};

/// Pins a backend for the scope of a test; restores auto-dispatch on exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(Sha256Backend backend) {
    forced_ = sha256_force_backend(backend);
  }
  ~ScopedBackend() { sha256_force_backend(std::nullopt); }
  bool forced() const { return forced_; }

 private:
  bool forced_ = false;
};

Bytes random_bytes(Xoshiro256& rng, size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<u8>(rng.uniform(256));
  return out;
}

Sha256State random_state(Xoshiro256& rng) {
  Sha256State s;
  for (auto& w : s.h) w = static_cast<u32>(rng.next());
  return s;
}

std::vector<Sha256Backend> available_backends() {
  std::vector<Sha256Backend> out;
  for (Sha256Backend b : kAllBackends) {
    if (sha256_backend_available(b)) out.push_back(b);
  }
  return out;
}

}  // namespace

TEST(Sha256BackendTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(sha256_backend_compiled(Sha256Backend::scalar));
  EXPECT_TRUE(sha256_backend_available(Sha256Backend::scalar));
}

TEST(Sha256BackendTest, NamesRoundTrip) {
  for (Sha256Backend b : kAllBackends) {
    auto parsed = sha256_backend_from_name(sha256_backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(sha256_backend_from_name("sha512").has_value());
}

TEST(Sha256BackendTest, ForceRejectsUnavailableBackend) {
  for (Sha256Backend b : kAllBackends) {
    if (sha256_backend_available(b)) continue;
    EXPECT_FALSE(sha256_force_backend(b))
        << "forcing unavailable backend " << sha256_backend_name(b);
    // Selection must be unchanged (still automatic).
    EXPECT_TRUE(sha256_backend_available(sha256_active_backend()));
  }
}

TEST(Sha256BackendTest, ForcePinsActiveBackend) {
  for (Sha256Backend b : available_backends()) {
    ScopedBackend pin(b);
    ASSERT_TRUE(pin.forced());
    EXPECT_EQ(sha256_active_backend(), b) << sha256_backend_name(b);
  }
  EXPECT_TRUE(sha256_backend_available(sha256_active_backend()));
}

TEST(Sha256BackendTest, CompressManyMatchesScalarPerLane) {
  Xoshiro256 rng(2024);
  for (Sha256Backend b : available_backends()) {
    ScopedBackend pin(b);
    ASSERT_TRUE(pin.forced());
    for (size_t lanes : {1u, 2u, 3u, 7u, 8u, 9u, 16u, 31u, 64u, 255u}) {
      std::vector<Sha256State> states;
      std::vector<std::array<u8, 64>> blocks(lanes);
      for (size_t i = 0; i < lanes; ++i) {
        states.push_back(random_state(rng));
        for (auto& byte : blocks[i]) byte = static_cast<u8>(rng.uniform(256));
      }
      std::vector<Sha256State> expected = states;
      for (size_t i = 0; i < lanes; ++i) {
        expected[i] = sha256_compress(expected[i], blocks[i]);
      }
      sha256_compress_many(states, blocks);
      for (size_t i = 0; i < lanes; ++i) {
        EXPECT_EQ(states[i].h, expected[i].h)
            << sha256_backend_name(b) << " lane " << i << " of " << lanes;
      }
    }
  }
}

TEST(Sha256BackendTest, Sha256ManyMatchesStreamingHasher) {
  Xoshiro256 rng(7);
  std::vector<Bytes> msgs;
  for (size_t len : {0u, 1u, 31u, 54u, 55u, 56u, 63u, 64u, 65u, 119u, 120u,
                     127u, 128u, 300u, 1000u}) {
    msgs.push_back(random_bytes(rng, len));
  }
  for (u64 i = 0; i < 40; ++i) {
    msgs.push_back(random_bytes(rng, rng.uniform(512)));
  }
  std::vector<BytesView> views(msgs.begin(), msgs.end());

  for (Sha256Backend b : available_backends()) {
    ScopedBackend pin(b);
    ASSERT_TRUE(pin.forced());
    const auto untagged = sha256_many(views, std::nullopt);
    const auto tagged = sha256_many(views, u8{0x00});
    ASSERT_EQ(untagged.size(), msgs.size());
    for (size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(untagged[i], sha256(views[i]))
          << sha256_backend_name(b) << " msg " << i;
      EXPECT_EQ(tagged[i], MerkleTree::hash_leaf(views[i]))
          << sha256_backend_name(b) << " msg " << i;
    }
  }
}

TEST(Sha256BackendTest, HashPairsMatchesHashNode) {
  Xoshiro256 rng(99);
  for (Sha256Backend b : available_backends()) {
    ScopedBackend pin(b);
    ASSERT_TRUE(pin.forced());
    for (size_t pairs : {1u, 2u, 5u, 8u, 9u, 100u}) {
      std::vector<Digest32> nodes(2 * pairs);
      for (auto& d : nodes) {
        for (auto& byte : d.bytes) byte = static_cast<u8>(rng.uniform(256));
      }
      std::vector<Digest32> out(pairs);
      MerkleTree::hash_pairs(nodes, out);
      for (size_t i = 0; i < pairs; ++i) {
        EXPECT_EQ(out[i], MerkleTree::hash_node(nodes[2 * i], nodes[2 * i + 1]))
            << sha256_backend_name(b) << " pair " << i;
      }
    }
  }
}

TEST(Sha256BackendTest, MerkleRootIdenticalAcrossBackends) {
  Xoshiro256 rng(41);
  std::vector<Bytes> rows;
  for (u64 i = 0; i < 5000; ++i) {
    rows.push_back(random_bytes(rng, 40 + rng.uniform(80)));
  }
  std::vector<BytesView> views(rows.begin(), rows.end());

  std::optional<Digest32> reference;
  for (Sha256Backend b : available_backends()) {
    ScopedBackend pin(b);
    ASSERT_TRUE(pin.forced());
    MerkleTree tree(MerkleTree::hash_leaves(views));
    if (!reference.has_value()) {
      reference = tree.root();
    } else {
      EXPECT_EQ(tree.root(), *reference) << sha256_backend_name(b);
    }
    // Proofs from the batched-build tree verify exactly as before.
    auto proof = tree.prove(1234);
    EXPECT_TRUE(
        MerkleTree::verify(tree.root(), tree.leaf(1234), proof).ok());
  }
}

TEST(Sha256BackendTest, StatsAccumulate) {
  const Sha256Backend active = sha256_active_backend();
  const u64 before = sha256_backend_stats(active).blocks;
  std::vector<Sha256State> states(32, Sha256State::initial());
  std::vector<std::array<u8, 64>> blocks(32);
  sha256_compress_many(states, blocks);
  const auto after = sha256_backend_stats(active);
  EXPECT_GE(after.blocks, before + 32);
  EXPECT_GE(after.batches, 1u);
}
