// Query model tests: field extraction, predicate semantics (CNF), the
// reference evaluator, serialization, and SQL-ish printing.
#include <gtest/gtest.h>

#include "core/query.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;

FlowRecord entry(u32 src, u32 dst, u8 proto, u64 packets, u64 hop_sum,
                 u64 rtt_avg_us) {
  FlowRecord rec;
  rec.key = {src, dst, 1000, 443, proto};
  rec.first_ms = 100;
  rec.last_ms = 1100;
  rec.packets = packets;
  rec.bytes = packets * 1000;
  rec.hop_count_sum = hop_sum;
  rec.rtt_sum_us = rtt_avg_us * 4;
  rec.rtt_count = 4;
  rec.rtt_max_us = rtt_avg_us * 2;
  rec.jitter_sum_us = 300;
  rec.jitter_count = 3;
  return rec;
}

TEST(ExtractField, AllFields) {
  const FlowRecord e = entry(0xAABBCCDD, 0x01020304, 6, 10, 55, 20'000);
  EXPECT_EQ(extract_field(e, QField::src_ip), 0xAABBCCDDu);
  EXPECT_EQ(extract_field(e, QField::dst_ip), 0x01020304u);
  EXPECT_EQ(extract_field(e, QField::src_port), 1000u);
  EXPECT_EQ(extract_field(e, QField::dst_port), 443u);
  EXPECT_EQ(extract_field(e, QField::protocol), 6u);
  EXPECT_EQ(extract_field(e, QField::packets), 10u);
  EXPECT_EQ(extract_field(e, QField::bytes), 10'000u);
  EXPECT_EQ(extract_field(e, QField::hop_sum), 55u);
  EXPECT_EQ(extract_field(e, QField::rtt_sum_us), 80'000u);
  EXPECT_EQ(extract_field(e, QField::rtt_count), 4u);
  EXPECT_EQ(extract_field(e, QField::rtt_max_us), 40'000u);
  EXPECT_EQ(extract_field(e, QField::jitter_sum_us), 300u);
  EXPECT_EQ(extract_field(e, QField::jitter_count), 3u);
  EXPECT_EQ(extract_field(e, QField::first_ms), 100u);
  EXPECT_EQ(extract_field(e, QField::last_ms), 1100u);
  EXPECT_EQ(extract_field(e, QField::duration_ms), 1000u);
  EXPECT_EQ(extract_field(e, QField::rtt_avg_us), 20'000u);
  EXPECT_EQ(extract_field(e, QField::jitter_avg_us), 100u);
}

TEST(ExtractField, AvgWithZeroCountIsZero) {
  FlowRecord e;
  EXPECT_EQ(extract_field(e, QField::rtt_avg_us), 0u);
  EXPECT_EQ(extract_field(e, QField::jitter_avg_us), 0u);
  EXPECT_EQ(extract_field(e, QField::duration_ms), 0u);
}

struct CmpCase {
  CmpOp op;
  u64 field_value;
  u64 cond_value;
  bool expect;
};

class CmpSemantics : public ::testing::TestWithParam<CmpCase> {};

TEST_P(CmpSemantics, Case) {
  const auto& c = GetParam();
  FlowRecord e;
  e.packets = c.field_value;
  Query q = Query::count().and_where(QField::packets, c.op, c.cond_value);
  EXPECT_EQ(matches(q, e), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, CmpSemantics,
    ::testing::Values(CmpCase{CmpOp::eq, 5, 5, true},
                      CmpCase{CmpOp::eq, 5, 6, false},
                      CmpCase{CmpOp::ne, 5, 6, true},
                      CmpCase{CmpOp::ne, 5, 5, false},
                      CmpCase{CmpOp::lt, 4, 5, true},
                      CmpCase{CmpOp::lt, 5, 5, false},
                      CmpCase{CmpOp::le, 5, 5, true},
                      CmpCase{CmpOp::le, 6, 5, false},
                      CmpCase{CmpOp::gt, 6, 5, true},
                      CmpCase{CmpOp::gt, 5, 5, false},
                      CmpCase{CmpOp::ge, 5, 5, true},
                      CmpCase{CmpOp::ge, 4, 5, false}));

TEST(Predicate, EmptyWhereMatchesAll) {
  EXPECT_TRUE(matches(Query::count(), entry(1, 2, 6, 1, 1, 1)));
}

TEST(Predicate, AndSemantics) {
  Query q = Query::count()
                .and_where(QField::protocol, CmpOp::eq, 6)
                .and_where(QField::packets, CmpOp::gt, 5);
  EXPECT_TRUE(matches(q, entry(1, 2, 6, 10, 1, 1)));
  EXPECT_FALSE(matches(q, entry(1, 2, 17, 10, 1, 1)));
  EXPECT_FALSE(matches(q, entry(1, 2, 6, 5, 1, 1)));
}

TEST(Predicate, OrClauseSemantics) {
  // protocol == 6 OR protocol == 17
  Query q = Query::count().and_any({Condition{QField::protocol, CmpOp::eq, 6},
                                    Condition{QField::protocol, CmpOp::eq, 17}});
  EXPECT_TRUE(matches(q, entry(1, 2, 6, 1, 1, 1)));
  EXPECT_TRUE(matches(q, entry(1, 2, 17, 1, 1, 1)));
  EXPECT_FALSE(matches(q, entry(1, 2, 1, 1, 1, 1)));
}

TEST(Predicate, CnfCombination) {
  // (proto=6 OR proto=17) AND packets >= 10.
  Query q = Query::count()
                .and_any({Condition{QField::protocol, CmpOp::eq, 6},
                          Condition{QField::protocol, CmpOp::eq, 17}})
                .and_where(QField::packets, CmpOp::ge, 10);
  EXPECT_TRUE(matches(q, entry(1, 2, 17, 10, 1, 1)));
  EXPECT_FALSE(matches(q, entry(1, 2, 17, 9, 1, 1)));
  EXPECT_FALSE(matches(q, entry(1, 2, 1, 10, 1, 1)));
}

TEST(Evaluate, AggregatesAllKinds) {
  std::vector<FlowRecord> entries = {
      entry(1, 9, 6, 10, 50, 1000),   // match
      entry(2, 9, 6, 20, 30, 2000),   // match
      entry(3, 9, 17, 99, 99, 3000),  // no (protocol)
  };
  Query q = Query::sum(QField::packets)
                .and_where(QField::protocol, CmpOp::eq, 6);
  const QueryResult r = evaluate_query(q, entries);
  EXPECT_EQ(r.scanned, 3u);
  EXPECT_EQ(r.matched, 2u);
  EXPECT_EQ(r.sum, 30u);
  EXPECT_EQ(r.min, 10u);
  EXPECT_EQ(r.max, 20u);
  EXPECT_EQ(r.value(AggKind::count), 2u);
  EXPECT_EQ(r.value(AggKind::sum), 30u);
  EXPECT_EQ(r.value(AggKind::min), 10u);
  EXPECT_EQ(r.value(AggKind::max), 20u);
}

TEST(Evaluate, NoMatches) {
  std::vector<FlowRecord> entries = {entry(1, 9, 6, 10, 50, 1000)};
  Query q = Query::sum(QField::packets)
                .and_where(QField::protocol, CmpOp::eq, 99);
  const QueryResult r = evaluate_query(q, entries);
  EXPECT_EQ(r.matched, 0u);
  EXPECT_EQ(r.sum, 0u);
  EXPECT_EQ(r.value(AggKind::min), 0u);  // min of empty set reported as 0
  EXPECT_EQ(r.value(AggKind::max), 0u);
}

TEST(Evaluate, EmptyState) {
  const QueryResult r = evaluate_query(Query::count(), {});
  EXPECT_EQ(r.scanned, 0u);
  EXPECT_EQ(r.matched, 0u);
}

TEST(QuerySerial, RoundTrip) {
  Query q = Query::max(QField::rtt_avg_us)
                .and_where(QField::src_ip, CmpOp::eq, 0x01010101)
                .and_any({Condition{QField::protocol, CmpOp::eq, 6},
                          Condition{QField::protocol, CmpOp::eq, 17}});
  const Bytes wire = q.to_bytes();
  Reader r(wire);
  auto parsed = Query::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(parsed.value().digest(), q.digest());
  EXPECT_EQ(parsed.value().agg, AggKind::max);
  EXPECT_EQ(parsed.value().agg_field, QField::rtt_avg_us);
  ASSERT_EQ(parsed.value().where.size(), 2u);
  EXPECT_EQ(parsed.value().where[1].size(), 2u);
}

TEST(QuerySerial, DigestDistinguishesQueries) {
  Query a = Query::sum(QField::packets);
  Query b = Query::sum(QField::bytes);
  Query c = Query::count();
  Query d = Query::sum(QField::packets).and_where(QField::protocol, CmpOp::eq, 6);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(a.digest(), d.digest());
}

TEST(QuerySerial, RejectsMalformed) {
  Reader empty({});
  EXPECT_FALSE(Query::deserialize(empty).ok());

  // Bad field id.
  Writer w;
  w.str("QRYAST1");
  w.varint(1);
  w.varint(1);
  w.u8v(200);  // field out of range
  w.u8v(1);
  w.u64v(0);
  w.u8v(1);
  w.u8v(1);
  Reader r(w.bytes());
  EXPECT_FALSE(Query::deserialize(r).ok());

  // Empty OR-clause (vacuously false) is rejected as malformed.
  Writer w2;
  w2.str("QRYAST1");
  w2.varint(1);
  w2.varint(0);
  w2.u8v(1);
  w2.u8v(1);
  Reader r2(w2.bytes());
  EXPECT_FALSE(Query::deserialize(r2).ok());
}

TEST(QueryToString, SqlLikeRendering) {
  Query q = Query::sum(QField::hop_sum)
                .and_where(QField::src_ip, CmpOp::eq, 0x01010101)
                .and_where(QField::dst_ip, CmpOp::eq, 0x09090909);
  EXPECT_EQ(q.to_string(),
            "SELECT SUM(hop_sum) FROM clogs WHERE src_ip = 1.1.1.1 AND "
            "dst_ip = 9.9.9.9");
  EXPECT_EQ(Query::count().to_string(), "SELECT COUNT(*) FROM clogs");
}

}  // namespace
}  // namespace zkt::core
