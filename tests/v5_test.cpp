// NetFlow v5 legacy format tests and v9 options-template tests.
#include <gtest/gtest.h>

#include "netflow/v5.h"
#include "netflow/v9.h"

namespace zkt::netflow {
namespace {

FlowRecord record_of(u32 src, u64 packets, u64 bytes) {
  FlowRecord rec;
  rec.key = {src, 0x08080808, 1234, 53, 17};
  rec.first_ms = 1000;
  rec.last_ms = 2000;
  rec.packets = packets;
  rec.bytes = bytes;
  rec.tcp_flags_or = 0x10;
  return rec;
}

TEST(V5, RoundTripCarriedFields) {
  std::vector<FlowRecord> records = {record_of(1, 10, 5000),
                                     record_of(2, 3, 900)};
  V5Exporter exporter(V5Config{.engine_id = 7, .sampling_interval = 1});
  auto packets = exporter.export_records(records, 60'000);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].size(), kV5HeaderSize + 2 * kV5RecordSize);

  V5Collector collector;
  auto parsed = collector.ingest(packets[0]);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().header.count, 2u);
  EXPECT_EQ(parsed.value().header.engine_id, 7u);
  ASSERT_EQ(parsed.value().records.size(), 2u);
  const auto& rec = parsed.value().records[0];
  EXPECT_EQ(rec.key, records[0].key);
  EXPECT_EQ(rec.packets, 10u);
  EXPECT_EQ(rec.bytes, 5000u);
  EXPECT_EQ(rec.first_ms, 1000u);
  EXPECT_EQ(rec.last_ms, 2000u);
  EXPECT_EQ(rec.tcp_flags_or, 0x10);
  // v5 has no performance fields.
  EXPECT_EQ(rec.rtt_sum_us, 0u);
  EXPECT_EQ(rec.hop_count_sum, 0u);
}

TEST(V5, SplitsAtThirtyRecords) {
  std::vector<FlowRecord> records;
  for (u32 i = 0; i < 65; ++i) records.push_back(record_of(i, 1, 100));
  V5Exporter exporter(V5Config{});
  auto packets = exporter.export_records(records, 0);
  ASSERT_EQ(packets.size(), 3u);
  V5Collector collector;
  size_t total = 0;
  for (const auto& p : packets) {
    auto parsed = collector.ingest(p);
    ASSERT_TRUE(parsed.ok());
    total += parsed.value().records.size();
  }
  EXPECT_EQ(total, 65u);
  EXPECT_EQ(exporter.flows_emitted(), 65u);
}

TEST(V5, ClampsCountersTo32Bits) {
  std::vector<FlowRecord> records = {
      record_of(1, 0x1'0000'0000ULL, 0x2'0000'0000ULL)};
  V5Exporter exporter(V5Config{});
  auto packets = exporter.export_records(records, 0);
  V5Collector collector;
  auto parsed = collector.ingest(packets[0]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().records[0].packets, 0xFFFFFFFFu);
  EXPECT_EQ(parsed.value().records[0].bytes, 0xFFFFFFFFu);
}

TEST(V5, RejectsMalformed) {
  V5Collector collector;
  EXPECT_FALSE(collector.ingest(Bytes{1, 2, 3}).ok());

  Bytes wrong_version(kV5HeaderSize, 0);
  wrong_version[1] = 9;
  EXPECT_FALSE(collector.ingest(wrong_version).ok());

  // Count says 2 records, body has none.
  Bytes short_body(kV5HeaderSize, 0);
  short_body[1] = 5;
  short_body[3] = 2;
  EXPECT_FALSE(collector.ingest(short_body).ok());

  // Count above the protocol maximum.
  Bytes big_count(kV5HeaderSize + 40 * kV5RecordSize, 0);
  big_count[1] = 5;
  big_count[2] = 0;
  big_count[3] = 40;
  EXPECT_FALSE(collector.ingest(big_count).ok());
}

TEST(V9Options, TemplateAndDataDecoded) {
  V9Exporter exporter(V9Config{.source_id = 11,
                               .include_options = true,
                               .sampling_interval = 64,
                               .sampling_algorithm = 2});
  std::vector<FlowRecord> records = {record_of(1, 2, 300)};
  auto packets = exporter.export_records(records, 500);
  ASSERT_EQ(packets.size(), 1u);

  V9Collector collector;
  auto decoded = collector.ingest(packets[0]);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().size(), 1u);  // flow records still decode
  EXPECT_EQ(collector.stats().options_templates_learned, 1u);
  ASSERT_EQ(collector.stats().options_records, 1u);
  const auto& options = collector.options()[0];
  EXPECT_EQ(options.source_id, 11u);
  EXPECT_EQ(options.values.at(kFieldSamplingInterval), 64u);
  EXPECT_EQ(options.values.at(kFieldSamplingAlgorithm), 2u);
  EXPECT_TRUE(options.values.count(kFieldTotalFlowsExported));
}

TEST(V9Options, DisabledEmitsNone) {
  V9Exporter exporter(V9Config{.source_id = 1, .include_options = false});
  auto packets = exporter.export_records({}, 0);
  V9Collector collector;
  ASSERT_TRUE(collector.ingest(packets[0]).ok());
  EXPECT_EQ(collector.stats().options_templates_learned, 0u);
  EXPECT_EQ(collector.stats().options_records, 0u);
}

}  // namespace
}  // namespace zkt::netflow
