// Grouped verifiable query tests: guest vs reference equivalence, journal
// round-trips, verification, and tamper rejection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/auditor.h"
#include "core/grouped_query.h"
#include "sim/workload.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

struct Fixture {
  CommitmentBoard board;
  AggregationService service{board};
  Auditor auditor{board};

  explicit Fixture(u64 seed, u32 flows) {
    const auto key = crypto::schnorr_keygen_from_seed(
        "grouped-" + std::to_string(seed));
    Xoshiro256 rng(seed);
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = 1;
    for (u32 f = 0; f < flows; ++f) {
      FlowRecord record;
      PacketObservation pkt;
      pkt.key = sim::synth_flow_key(f, seed);
      pkt.timestamp_ms = 1000 + f;
      pkt.bytes = 200 + static_cast<u32>(rng.uniform(1200));
      pkt.hop_count = static_cast<u8>(1 + rng.uniform(10));
      pkt.rtt_us = static_cast<u32>(5'000 + rng.uniform(60'000));
      record.observe(pkt);
      batch.records.push_back(std::move(record));
    }
    EXPECT_TRUE(
        board.publish(make_commitment(batch, key, 5000).value()).ok());
    auto round = service.aggregate({batch});
    EXPECT_TRUE(round.ok());
    EXPECT_TRUE(auditor.accept_round(round.value().receipt).ok());
  }
};

TEST(GroupedJournal, RoundTrip) {
  GroupedQueryJournal j;
  j.agg_claim_digest = crypto::sha256(std::string_view("claim"));
  j.agg_root = crypto::sha256(std::string_view("root"));
  j.entry_count = 7;
  j.query = Query::sum(QField::bytes);
  j.group_field = QField::protocol;
  j.groups = {{6, {5, 5, 1000, 10, 500}}, {17, {2, 2, 300, 100, 200}}};
  Writer w;
  j.write(w);
  auto parsed = GroupedQueryJournal::parse(w.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().groups, j.groups);
  EXPECT_EQ(parsed.value().group_field, QField::protocol);
}

class GroupedQueries : public ::testing::TestWithParam<u64> {};

TEST_P(GroupedQueries, GuestMatchesReference) {
  Fixture fx(GetParam(), 40);
  struct Case {
    Query query;
    QField group;
  };
  const Case cases[] = {
      {Query::sum(QField::bytes), QField::protocol},
      {Query::count(), QField::dst_port},
      {Query::sum(QField::packets).and_where(QField::rtt_avg_us, CmpOp::lt,
                                             40'000),
       QField::protocol},
      {Query::max(QField::rtt_max_us), QField::hop_sum},
  };
  for (const auto& [query, group] : cases) {
    const auto reference =
        evaluate_grouped(query, group, fx.service.state().entries());
    auto response = run_grouped_query(fx.service, query, group);
    ASSERT_TRUE(response.ok()) << response.error().to_string();
    EXPECT_EQ(response.value().journal.groups, reference);

    auto verified = verify_grouped_query(response.value().receipt,
                                         fx.auditor, &query, &group);
    ASSERT_TRUE(verified.ok()) << verified.error().to_string();
    EXPECT_EQ(verified.value().groups, reference);

    // Group order is ascending and totals match an ungrouped run.
    u64 total_matched = 0;
    for (size_t i = 0; i < verified.value().groups.size(); ++i) {
      if (i > 0) {
        EXPECT_GT(verified.value().groups[i].group_value,
                  verified.value().groups[i - 1].group_value);
      }
      total_matched += verified.value().groups[i].stats.matched;
    }
    EXPECT_EQ(total_matched,
              evaluate_query(query, fx.service.state().entries()).matched);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedQueries, ::testing::Values(1, 2));

TEST(GroupedQuery, EmptyResultForNoMatches) {
  Fixture fx(3, 10);
  Query q = Query::count().and_where(QField::protocol, CmpOp::eq, 200);
  auto response = run_grouped_query(fx.service, q, QField::protocol);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().journal.groups.empty());
  EXPECT_TRUE(
      verify_grouped_query(response.value().receipt, fx.auditor).ok());
}

TEST(GroupedQuery, DoctoredGroupRejected) {
  Fixture fx(4, 20);
  Query q = Query::sum(QField::bytes);
  auto response = run_grouped_query(fx.service, q, QField::protocol);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response.value().journal.groups.empty());

  auto forged = response.value().receipt;
  GroupedQueryJournal j = response.value().journal;
  j.groups[0].stats.sum /= 2;
  Writer w;
  j.write(w);
  forged.journal = std::move(w).take();
  EXPECT_FALSE(verify_grouped_query(forged, fx.auditor, &q).ok());
}

TEST(GroupedQuery, WrongGroupFieldRejected) {
  Fixture fx(5, 20);
  Query q = Query::count();
  auto response = run_grouped_query(fx.service, q, QField::protocol);
  ASSERT_TRUE(response.ok());
  const QField expected = QField::dst_port;
  auto verified = verify_grouped_query(response.value().receipt, fx.auditor,
                                       &q, &expected);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::proof_invalid);
}

TEST(GroupedQuery, UnacceptedRoundRejected) {
  Fixture fx(6, 15);
  Query q = Query::count();
  auto response = run_grouped_query(fx.service, q, QField::protocol);
  ASSERT_TRUE(response.ok());
  Auditor fresh(fx.board);  // accepted nothing
  auto verified = verify_grouped_query(response.value().receipt, fresh, &q);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::chain_broken);
}

}  // namespace
}  // namespace zkt::core
