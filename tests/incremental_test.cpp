// Incremental (delta) aggregation rounds: equivalence with full rebuilds,
// mixed-chain verification, soundness negatives against hand-built delta
// inputs, and crash recovery across incremental rounds.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/auditor.h"
#include "core/chain_summary.h"
#include "core/service.h"
#include "sim/crash.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

RLogBatch batch_of(u32 router, u64 window, std::vector<u32> srcs) {
  RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  for (u32 src : srcs) {
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {src, 0x09090909, 1000, 443, 6};
    pkt.timestamp_ms = window * 5000;
    pkt.bytes = 100 + src % 37;
    pkt.hop_count = 3;
    record.observe(pkt);
    batch.records.push_back(std::move(record));
  }
  return batch;
}

struct Fixture {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("inc");

  RLogBatch committed(u32 router, u64 window, std::vector<u32> srcs) {
    auto batch = batch_of(router, window, std::move(srcs));
    EXPECT_TRUE(
        board.publish(make_commitment(batch, key, window).value()).ok());
    return batch;
  }
};

AggregationOptions forced(AggMode mode) {
  AggregationOptions options;
  options.mode = mode;
  return options;
}

// A stream that exercises merges, middle inserts (cascade), frontier
// inserts, and a front-of-state insert, round by round.
std::vector<std::vector<u32>> kStream = {
    {10, 20, 30, 40},  // genesis (always full)
    {20, 25, 50},      // merge 20, middle insert 25, frontier insert 50
    {60, 20},          // frontier insert + merge
    {5},               // insert before everything (full cascade)
    {25, 25, 61},      // duplicate records within a round + frontier
};

TEST(Incremental, ForcedModesProduceIdenticalRoots) {
  Fixture fx;
  AggregationService full_svc(fx.board, forced(AggMode::full));
  AggregationService inc_svc(fx.board, forced(AggMode::incremental));

  for (size_t w = 0; w < kStream.size(); ++w) {
    auto batch = fx.committed(0, w + 1, kStream[w]);
    auto full_round = full_svc.aggregate({batch});
    auto inc_round = inc_svc.aggregate({batch});
    ASSERT_TRUE(full_round.ok()) << full_round.error().to_string();
    ASSERT_TRUE(inc_round.ok()) << inc_round.error().to_string();

    // Same transition, same root — regardless of which guest proved it.
    EXPECT_EQ(full_round.value().journal.new_root,
              inc_round.value().journal.new_root);
    EXPECT_EQ(full_round.value().journal.new_entry_count,
              inc_round.value().journal.new_entry_count);
    EXPECT_EQ(full_round.value().journal.kind, RoundKind::full);
    // Genesis has no state to anchor a delta on; every later round does.
    EXPECT_EQ(inc_round.value().journal.kind,
              w == 0 ? RoundKind::full : RoundKind::incremental);
    if (w > 0) {
      EXPECT_GE(inc_round.value().journal.touched_entries, 1u);
      // A round that opens EVERY slot (front-of-state insert) legitimately
      // needs zero siblings; anything narrower needs at least one.
      if (inc_round.value().journal.touched_entries <
          full_round.value().journal.new_entry_count - 1) {
        EXPECT_GE(inc_round.value().journal.multiproof_siblings, 1u);
      }
    }
  }
  EXPECT_EQ(full_svc.state().root(), inc_svc.state().root());
  EXPECT_EQ(inc_svc.last_kind(), RoundKind::incremental);
}

TEST(Incremental, AuditorAcceptsIncrementalChain) {
  Fixture fx;
  AggregationService service(fx.board, forced(AggMode::incremental));
  Auditor auditor(fx.board);
  for (size_t w = 0; w < kStream.size(); ++w) {
    auto batch = fx.committed(0, w + 1, kStream[w]);
    auto round = service.aggregate({batch});
    ASSERT_TRUE(round.ok()) << round.error().to_string();
    auto accepted = auditor.accept_round(round.value().receipt);
    ASSERT_TRUE(accepted.ok()) << accepted.error().to_string();
  }
  EXPECT_EQ(auditor.rounds_accepted(), kStream.size());
  EXPECT_EQ(auditor.current_root(), service.state().root());
}

TEST(Incremental, MixedChainVerifiesEndToEnd) {
  // auto_select picks incremental for narrow rounds and falls back to full
  // for state-wide ones; the resulting mixed chain must verify through the
  // auditor, the chain-summary guest, AND queries against the head.
  Fixture fx;
  AggregationService service(fx.board);  // auto_select
  std::vector<zvm::Receipt> receipts;
  std::vector<RoundKind> kinds;

  // Wide genesis so later narrow rounds look cheap to the cost model.
  std::vector<u32> wide;
  for (u32 i = 0; i < 64; ++i) wide.push_back(100 + 4 * i);
  auto seed_round = service.aggregate({fx.committed(0, 1, wide)});
  ASSERT_TRUE(seed_round.ok());
  receipts.push_back(seed_round.value().receipt);
  kinds.push_back(seed_round.value().journal.kind);

  // Narrow round: merge two existing flows -> incremental.
  auto narrow = service.aggregate({fx.committed(0, 2, {100, 104})});
  ASSERT_TRUE(narrow.ok());
  receipts.push_back(narrow.value().receipt);
  kinds.push_back(narrow.value().journal.kind);

  // Front-of-state insert: the cascade opens everything -> full rebuild.
  auto front = service.aggregate({fx.committed(0, 3, {1})});
  ASSERT_TRUE(front.ok());
  receipts.push_back(front.value().receipt);
  kinds.push_back(front.value().journal.kind);

  // Another narrow round on top of the full one.
  auto narrow2 = service.aggregate({fx.committed(0, 4, {1, 100})});
  ASSERT_TRUE(narrow2.ok());
  receipts.push_back(narrow2.value().receipt);
  kinds.push_back(narrow2.value().journal.kind);

  EXPECT_EQ(kinds[0], RoundKind::full);
  EXPECT_EQ(kinds[1], RoundKind::incremental);
  EXPECT_EQ(kinds[2], RoundKind::full);
  EXPECT_EQ(kinds[3], RoundKind::incremental);

  Auditor auditor(fx.board);
  for (const auto& receipt : receipts) {
    ASSERT_TRUE(auditor.accept_round(receipt).ok());
  }

  // One chain-summary receipt covering the mixed chain.
  auto summary = prove_chain_summary(receipts);
  ASSERT_TRUE(summary.ok()) << summary.error().to_string();
  auto verified = verify_chain_summary(summary.value().receipt, fx.board,
                                       summary.value().commitments);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().final_root, service.state().root());

  // Queries bind to the (incremental) head receipt.
  QueryService queries(service);
  auto complete = queries.run(Query::sum(QField::packets));
  ASSERT_TRUE(complete.ok()) << complete.error().to_string();
  EXPECT_TRUE(auditor.verify_query(complete.value().receipt).ok());
  auto selective = queries.run(Query::count(), {.mode = QueryMode::selective,
                                                .prove_options_override = {}});
  ASSERT_TRUE(selective.ok()) << selective.error().to_string();
  EXPECT_TRUE(auditor.verify_query(selective.value().receipt).ok());
}

TEST(Incremental, CapacityGrowthRoundMatchesFullRebuild) {
  // N = 4 fills the padded tree exactly; two frontier inserts force the
  // guest through the virtual-growth path (capacity 4 -> 8).
  Fixture fx;
  AggregationService full_svc(fx.board, forced(AggMode::full));
  AggregationService inc_svc(fx.board, forced(AggMode::incremental));
  auto seed = fx.committed(0, 1, {10, 20, 30, 40});
  ASSERT_TRUE(full_svc.aggregate({seed}).ok());
  ASSERT_TRUE(inc_svc.aggregate({seed}).ok());

  auto growth = fx.committed(0, 2, {50, 60});
  auto full_round = full_svc.aggregate({growth});
  auto inc_round = inc_svc.aggregate({growth});
  ASSERT_TRUE(full_round.ok());
  ASSERT_TRUE(inc_round.ok()) << inc_round.error().to_string();
  EXPECT_EQ(inc_round.value().journal.kind, RoundKind::incremental);
  EXPECT_EQ(full_round.value().journal.new_root,
            inc_round.value().journal.new_root);
  EXPECT_EQ(inc_round.value().journal.new_entry_count, 6u);
}

TEST(Incremental, ForcedIncrementalFallsBackWhenNoDeltaIsPossible) {
  Fixture fx;
  AggregationService service(fx.board, forced(AggMode::incremental));
  // Genesis: nothing to extend — full guest.
  auto genesis = service.aggregate({fx.committed(0, 1, {10})});
  ASSERT_TRUE(genesis.ok());
  EXPECT_EQ(genesis.value().journal.kind, RoundKind::full);
  EXPECT_EQ(service.last_kind(), RoundKind::full);
  // A round with zero records touches nothing — full guest again.
  auto empty = service.aggregate({fx.committed(0, 2, {})});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().journal.kind, RoundKind::full);
  // And a real delta round switches over.
  auto delta = service.aggregate({fx.committed(0, 3, {10, 11})});
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().journal.kind, RoundKind::incremental);
  EXPECT_EQ(service.last_kind(), RoundKind::incremental);
}

TEST(Incremental, BuildDeltaInputRequiresHistory) {
  Fixture fx;
  AggregationService service(fx.board);
  auto batch = fx.committed(0, 1, {10});
  auto before = service.build_delta_input({&batch, 1});
  ASSERT_FALSE(before.ok());
  EXPECT_EQ(before.error().code, Errc::invalid_argument);
}

// ---------------------------------------------------------------------------
// Soundness negatives: hand-built delta inputs straight into the prover.

struct ProverFixture : Fixture {
  AggregationService service{board, forced(AggMode::full)};

  /// Seed the chain with one full round over ascending keys.
  void seed(std::vector<u32> srcs, u64 window = 1) {
    auto batch = committed(0, window, std::move(srcs));
    auto round = service.aggregate({batch});
    ASSERT_TRUE(round.ok()) << round.error().to_string();
  }

  Result<zvm::Receipt> prove_delta(const DeltaAggregateInput& input) {
    zvm::ProveOptions options;
    options.assumptions.push_back(service.last_receipt());
    zvm::Prover prover;
    return prover.prove(guest_images().aggregate_incremental, input.to_bytes(),
                        options, nullptr);
  }
};

TEST(IncrementalSoundness, ValidHandBuiltDeltaProves) {
  // Control for the negatives below: the untampered input proves.
  ProverFixture fx;
  fx.seed({10, 20, 30, 40, 50, 60});
  auto batch = fx.committed(0, 2, {20, 55});
  auto input = fx.service.build_delta_input({&batch, 1});
  ASSERT_TRUE(input.ok()) << input.error().to_string();
  auto receipt = fx.prove_delta(input.value());
  ASSERT_TRUE(receipt.ok()) << receipt.error().to_string();
  auto journal = AggJournal::parse(receipt.value().journal);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal.value().kind, RoundKind::incremental);
  EXPECT_GE(journal.value().multiproof_siblings, 1u);
}

TEST(IncrementalSoundness, TamperedMultiproofSiblingRejected) {
  ProverFixture fx;
  fx.seed({10, 20, 30, 40, 50, 60});
  auto batch = fx.committed(0, 2, {20, 55});
  auto input = fx.service.build_delta_input({&batch, 1});
  ASSERT_TRUE(input.ok());
  ASSERT_FALSE(input.value().proof.siblings.empty());
  input.value().proof.siblings[0].bytes[7] ^= 0x40;
  EXPECT_FALSE(fx.prove_delta(input.value()).ok());
}

TEST(IncrementalSoundness, TamperedOpenedEntryRejected) {
  // Inflating an opened entry's counters breaks the old-lane walk even
  // though the new root is recomputed consistently.
  ProverFixture fx;
  fx.seed({10, 20, 30, 40, 50, 60});
  auto batch = fx.committed(0, 2, {20});
  auto input = fx.service.build_delta_input({&batch, 1});
  ASSERT_TRUE(input.ok());
  ASSERT_FALSE(input.value().opened.empty());
  // Bump a byte inside the serialized entry (counter region, well past the
  // key prefix so the record still parses).
  auto& bytes = input.value().opened[0].entry;
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() - 2] ^= 0x01;
  EXPECT_FALSE(fx.prove_delta(input.value()).ok());
}

TEST(IncrementalSoundness, DuplicateKeyInsertionRejectedByAdjacency) {
  // Present an EXISTING key as "new" by opening a non-adjacent pair that
  // brackets it by key. The multiproof itself is genuine — only the
  // adjacency (non-membership) check can catch the hidden entry.
  ProverFixture fx;
  fx.seed({10, 20, 30, 40, 50, 60});  // state indices 0..5
  const CLogState& state = fx.service.state();
  const u64 n = state.entry_count();
  ASSERT_EQ(n, 6u);

  // The round claims key 50 (state index 4) is new, opening indices 3 and 5
  // — which DO bracket key 50, but are not adjacent.
  auto batch = fx.committed(0, 2, {50});

  DeltaAggregateInput input;
  input.prev_claim_digest = fx.service.last_receipt().claim.digest();
  input.prev_image_kind = fx.service.last_kind();
  input.prev_root = state.root();
  input.prev_entry_count = n;
  for (u64 idx : {u64{3}, u64{5}}) {
    DeltaAggregateInput::OpenedEntry opened;
    opened.index = idx;
    opened.entry = state.entry(idx).canonical_bytes();
    input.opened.push_back(std::move(opened));
  }
  input.proof = state.prove_multi(std::vector<u64>{3, 5, n});
  CommitmentRef ref;
  ref.router_id = batch.router_id;
  ref.window_id = batch.window_id;
  ref.rlog_hash = batch.hash();
  ref.record_count = batch.records.size();
  input.batches.emplace_back(ref, batch.canonical_bytes());

  EXPECT_FALSE(fx.prove_delta(input).ok());
}

TEST(IncrementalSoundness, InsertWithoutCascadeRejected) {
  // A middle insert that opens only its bracketing pair (not the shifted
  // suffix) must be rejected: the entries after the insertion point move,
  // and their digests are unknown to the guest.
  ProverFixture fx;
  fx.seed({10, 20, 30, 40, 50, 60});
  const CLogState& state = fx.service.state();
  const u64 n = state.entry_count();
  auto batch = fx.committed(0, 2, {25});  // belongs between indices 1 and 2

  DeltaAggregateInput input;
  input.prev_claim_digest = fx.service.last_receipt().claim.digest();
  input.prev_image_kind = fx.service.last_kind();
  input.prev_root = state.root();
  input.prev_entry_count = n;
  for (u64 idx : {u64{1}, u64{2}}) {
    DeltaAggregateInput::OpenedEntry opened;
    opened.index = idx;
    opened.entry = state.entry(idx).canonical_bytes();
    input.opened.push_back(std::move(opened));
  }
  input.proof = state.prove_multi(std::vector<u64>{1, 2, n});
  CommitmentRef ref;
  ref.router_id = batch.router_id;
  ref.window_id = batch.window_id;
  ref.rlog_hash = batch.hash();
  ref.record_count = batch.records.size();
  input.batches.emplace_back(ref, batch.canonical_bytes());

  EXPECT_FALSE(fx.prove_delta(input).ok());
}

TEST(IncrementalSoundness, StalePrevRootRejectedInGuest) {
  // Claiming a different prev_root than the multiproof's tree fails the
  // old-lane convergence check.
  ProverFixture fx;
  fx.seed({10, 20, 30, 40, 50, 60});
  auto batch = fx.committed(0, 2, {20});
  auto input = fx.service.build_delta_input({&batch, 1});
  ASSERT_TRUE(input.ok());
  input.value().prev_root.bytes[0] ^= 0x01;
  EXPECT_FALSE(fx.prove_delta(input.value()).ok());
}

TEST(IncrementalSoundness, StaleChainPositionRejectedByAuditor) {
  // A delta receipt proven against an OLD head is internally valid but can
  // no longer extend the chain once a newer round exists.
  ProverFixture fx;
  fx.seed({10, 20, 30, 40, 50, 60});
  auto genesis_receipt = fx.service.last_receipt();
  auto stale_batch = fx.committed(0, 2, {20});
  auto stale_input = fx.service.build_delta_input({&stale_batch, 1});
  ASSERT_TRUE(stale_input.ok());
  auto stale_receipt = fx.prove_delta(stale_input.value());
  ASSERT_TRUE(stale_receipt.ok()) << stale_receipt.error().to_string();

  // The chain moves on.
  auto round2 = fx.service.aggregate({fx.committed(1, 2, {30, 70})});
  ASSERT_TRUE(round2.ok());

  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor.accept_round(genesis_receipt).ok());
  ASSERT_TRUE(auditor.accept_round(round2.value().receipt).ok());
  auto stale = auditor.accept_round(stale_receipt.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, Errc::chain_broken);
}

TEST(IncrementalSoundness, TamperedSnapshotOrderRejected) {
  // The serialized entry order IS the persisted flow-key index; a snapshot
  // with swapped entries must not deserialize.
  ProverFixture fx;
  fx.seed({10, 20, 30});
  const CLogState& state = fx.service.state();
  Writer w;
  w.varint(state.entry_count());
  state.entry(1).serialize(w);  // swapped pair
  state.entry(0).serialize(w);
  state.entry(2).serialize(w);
  Reader r(w.bytes());
  auto tampered = CLogState::deserialize(r);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.error().code, Errc::parse_error);
}

TEST(Incremental, CrashRestartAcrossIncrementalRounds) {
  const auto data_dir =
      std::filesystem::temp_directory_path() /
      ("zkt_crash_incremental_" + std::to_string(::getpid()));
  std::filesystem::remove_all(data_dir);
  ASSERT_TRUE(std::filesystem::create_directories(data_dir));

  sim::CrashRestartConfig config;
  config.data_dir = data_dir.string();
  config.sim.router_count = 2;
  config.sim.window_ms = 2'000;
  config.workload.duration_ms = 10'000;  // ~5 commitment windows
  config.packet_count = 800;
  config.crash_after_rounds = 2;
  config.pipeline.agg_mode = AggMode::incremental;
  config.pipeline.retry.base_backoff = std::chrono::milliseconds(1);
  config.pipeline.retry.max_backoff = std::chrono::milliseconds(2);

  auto report = sim::run_crash_restart(config);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().recovery.resumed);
  EXPECT_GT(report.value().rounds_after_restart, 0u);
  EXPECT_TRUE(report.value().chain_verified);

  // The recovered chain actually contains incremental rounds.
  u64 incremental_rounds = 0;
  for (const auto& receipt : report.value().receipts) {
    auto journal = AggJournal::parse(receipt.journal);
    ASSERT_TRUE(journal.ok());
    if (journal.value().kind == RoundKind::incremental) ++incremental_rounds;
  }
  EXPECT_GT(incremental_rounds, 0u);

  std::filesystem::remove_all(data_dir);
}

}  // namespace
}  // namespace zkt::core
