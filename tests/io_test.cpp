// Artifact-file tests: commitment/receipt save-load round-trips, CRC
// protection, and CLI flag parsing.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/flags.h"
#include "core/io.h"
#include "core/auditor.h"
#include "core/service.h"

namespace zkt::core {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zkt_io_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

netflow::RLogBatch small_batch(u32 router, u64 window) {
  netflow::RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  netflow::FlowRecord rec;
  netflow::PacketObservation pkt;
  pkt.key = {router + 1, 0x09090909, 1000, 443, 6};
  pkt.timestamp_ms = window;
  pkt.bytes = 100;
  rec.observe(pkt);
  batch.records.push_back(rec);
  return batch;
}

TEST_F(IoTest, CommitmentsRoundTrip) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("io-commit");
  for (u32 r = 0; r < 3; ++r) {
    for (u64 w = 1; w <= 2; ++w) {
      ASSERT_TRUE(
          board.publish(make_commitment(small_batch(r, w), key, w).value())
              .ok());
    }
  }
  ASSERT_TRUE(save_commitments(board, path("comm.bin")).ok());

  CommitmentBoard loaded;
  ASSERT_TRUE(load_commitments(path("comm.bin"), loaded).ok());
  EXPECT_EQ(loaded.size(), 6u);
  EXPECT_EQ(loaded.get(2, 1)->rlog_hash, board.get(2, 1)->rlog_hash);
}

TEST_F(IoTest, ReceiptsRoundTrip) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("io-receipts");
  auto batch = small_batch(0, 1);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 1).value()).ok());
  AggregationService service(board);
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());

  ASSERT_TRUE(save_receipts({round.value().receipt}, path("r.bin")).ok());
  auto loaded = load_receipts(path("r.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].claim.digest(),
            round.value().receipt.claim.digest());

  // The loaded receipt still verifies in a fresh auditor over the loaded
  // board file.
  ASSERT_TRUE(save_commitments(board, path("comm.bin")).ok());
  CommitmentBoard board2;
  ASSERT_TRUE(load_commitments(path("comm.bin"), board2).ok());
  Auditor auditor(board2);
  EXPECT_TRUE(auditor.accept_round(loaded.value()[0]).ok());
}

TEST_F(IoTest, EmptyListsRoundTrip) {
  CommitmentBoard board;
  ASSERT_TRUE(save_commitments(board, path("empty_c.bin")).ok());
  CommitmentBoard loaded;
  EXPECT_TRUE(load_commitments(path("empty_c.bin"), loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);

  ASSERT_TRUE(save_receipts({}, path("empty_r.bin")).ok());
  auto receipts = load_receipts(path("empty_r.bin"));
  ASSERT_TRUE(receipts.ok());
  EXPECT_TRUE(receipts.value().empty());
}

TEST_F(IoTest, CorruptFileRejected) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("io-corrupt");
  ASSERT_TRUE(
      board.publish(make_commitment(small_batch(0, 1), key, 1).value()).ok());
  ASSERT_TRUE(save_commitments(board, path("c.bin")).ok());

  auto data = read_file(path("c.bin"));
  ASSERT_TRUE(data.ok());
  Bytes corrupted = data.value();
  corrupted[corrupted.size() / 2] ^= 0xFF;
  ASSERT_TRUE(write_file(path("c.bin"), corrupted).ok());

  CommitmentBoard loaded;
  EXPECT_FALSE(load_commitments(path("c.bin"), loaded).ok());
}

TEST_F(IoTest, WrongMagicRejected) {
  ASSERT_TRUE(write_file(path("junk.bin"), bytes_of("not a zkt file")).ok());
  CommitmentBoard board;
  EXPECT_FALSE(load_commitments(path("junk.bin"), board).ok());
  EXPECT_FALSE(load_receipts(path("junk.bin")).ok());
}

TEST_F(IoTest, MissingFileReported) {
  CommitmentBoard board;
  EXPECT_FALSE(load_commitments(path("nope.bin"), board).ok());
  EXPECT_FALSE(load_receipts(path("nope.bin")).ok());
}

}  // namespace
}  // namespace zkt::core

namespace zkt {
namespace {

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, NamedWithEquals) {
  auto f = make_flags({"--out-dir=/tmp/x", "--count=5"});
  EXPECT_EQ(f.get("out-dir"), "/tmp/x");
  EXPECT_EQ(f.get_u64("count", 0), 5u);
}

TEST(Flags, NamedWithSpace) {
  auto f = make_flags({"--out-dir", "/tmp/y", "--rate", "0.25"});
  EXPECT_EQ(f.get("out-dir"), "/tmp/y");
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 0.25);
}

TEST(Flags, BareSwitchAndDefaults) {
  auto f = make_flags({"--verbose", "--next-flag=1"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_EQ(f.get("verbose"), "");
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.get("missing", "fallback"), "fallback");
  EXPECT_EQ(f.get_u64("missing", 7), 7u);
}

TEST(Flags, Positional) {
  auto f = make_flags({"input.bin", "--flag=x", "output.bin"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.bin");
  EXPECT_EQ(f.positional()[1], "output.bin");
}

TEST(Flags, BadNumberFallsBack) {
  auto f = make_flags({"--n=abc"});
  EXPECT_EQ(f.get_u64("n", 9), 9u);
}

}  // namespace
}  // namespace zkt
