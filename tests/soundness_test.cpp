// Empirical soundness of the spot-check argument: a cheating prover who
// corrupts exactly one trace row escapes detection only if none of the
// Fiat–Shamir openings land on that row — probability ~ (1 - 1/n)^k for n
// rows and k openings. These tests build genuinely cheating receipts (bad
// row committed in the trace tree, honestly derived openings) and measure
// the detection rate, checking it tracks the analytical bound.
//
// This is the quantitative justification for the verifier's min_queries
// policy and for DESIGN.md's "demo-grade soundness" caveat.
#include <gtest/gtest.h>

#include "crypto/merkle.h"
#include "zvm/env.h"
#include "zvm/image.h"
#include "zvm/prover.h"
#include "zvm/verifier.h"

namespace zkt::zvm {
namespace {

using crypto::Digest32;

// A guest with a wide, flat trace: n ALU rows.
Status wide_guest(Env& env) {
  auto n = env.read_u64();
  if (!n.ok()) return n.error();
  u64 acc = 0;
  for (u64 i = 0; i < n.value(); ++i) {
    acc = env.alu(AluOp::add, acc, i);
  }
  env.commit_u64(acc);
  return {};
}

ImageID wide_image() {
  static const ImageID id =
      ImageRegistry::instance().add("test.wide", 1, wide_guest);
  return id;
}

/// Build a receipt whose trace has one corrupted ALU row (wrong result),
/// committed and opened exactly as an honest prover would — the cheating
/// strategy the FS openings exist to catch. `salt` varies the claim so each
/// receipt gets fresh challenge indices.
Receipt make_cheating_receipt(u64 rows, u32 num_queries, u64 bad_row,
                              u64 salt) {
  Writer input;
  input.u64v(rows);
  input.u64v(salt);  // consumed? no — extra input only changes input digest

  // Execute honestly.
  Env env(input.bytes(), {});
  Claim claim;
  claim.image_id = wide_image();
  claim.input_digest = env.bind_input();
  // Replicate wide_guest without the trailing-input check.
  u64 acc = 0;
  for (u64 i = 0; i < rows; ++i) acc = env.alu(AluOp::add, acc, i);
  env.commit_u64(acc);
  claim.journal_digest = env.bind_journal();
  claim.cycle_count = env.cycles();

  // Serialize rows, then corrupt one ALU row's result.
  std::vector<Bytes> row_bytes;
  std::vector<Digest32> leaves;
  u64 seen_alu = 0;
  for (const auto& row : env.trace()) {
    TraceRow copy = row;
    if (auto* alu = std::get_if<RowAlu>(&copy.op)) {
      if (seen_alu++ == bad_row) {
        alu->c += 1;  // the lie
      }
    }
    Writer w;
    copy.serialize(w);
    row_bytes.push_back(std::move(w).take());
    leaves.push_back(crypto::MerkleTree::hash_leaf(row_bytes.back()));
  }
  crypto::MerkleTree tree(leaves);

  Receipt receipt;
  receipt.claim = claim;
  receipt.journal = env.journal();
  receipt.seal_kind = SealKind::composite;
  SegmentSeal segment;
  segment.trace_root = tree.root();
  segment.row_count = row_bytes.size();
  receipt.composite.segments.push_back(segment);

  const auto indices = derive_query_indices(
      claim.digest(), receipt.composite.roots_digest(), 0, tree.root(),
      row_bytes.size(), num_queries);
  for (u64 idx : indices) {
    SealOpening opening;
    opening.row_index = idx;
    opening.row_bytes = row_bytes[idx];
    opening.proof = tree.prove(idx);
    receipt.composite.segments[0].openings.push_back(std::move(opening));
  }
  return receipt;
}

TEST(Soundness, HonestReceiptStillVerifies) {
  Prover prover;
  Verifier verifier;
  Writer input;
  input.u64v(50);
  ProveOptions options;
  options.seal_kind = SealKind::composite;
  auto receipt = prover.prove(wide_image(), input.bytes(), options);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(verifier.verify(receipt.value(), wide_image()).ok());
}

TEST(Soundness, DetectionRateTracksAnalyticalBound) {
  // ~60 total rows (50 ALU + hashing/bind rows); with k openings, escape
  // probability ≈ prod_{i<k} (1 - 1/(n-i)). Check low-k detection is in the
  // right band and that k = n detects always.
  constexpr u64 kAluRows = 50;
  constexpr int kTrials = 120;

  struct Band {
    u32 queries;
    double min_rate;
    double max_rate;
  };
  // Total rows = kAluRows + ~7 overhead rows (input/journal hash + binds).
  // Expected detection = 1 - (1 - k/n) roughly; generous bands.
  const Band bands[] = {
      {2, 0.005, 0.20},    // ≈ 2/57 ≈ 3.5%
      {16, 0.12, 0.50},    // ≈ 25%
      {40, 0.45, 0.90},    // ≈ 70%
  };
  Verifier lenient(0);  // accept any opening count; we control k exactly

  for (const auto& band : bands) {
    int detected = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const u64 bad_row = static_cast<u64>(trial) % kAluRows;
      const auto receipt = make_cheating_receipt(kAluRows, band.queries,
                                                 bad_row, trial * 7919);
      if (!lenient.verify(receipt, wide_image()).ok()) ++detected;
    }
    const double rate = static_cast<double>(detected) / kTrials;
    EXPECT_GE(rate, band.min_rate) << "k=" << band.queries;
    EXPECT_LE(rate, band.max_rate) << "k=" << band.queries;
  }
}

TEST(Soundness, FullOpeningAlwaysDetects) {
  Verifier lenient(0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto receipt =
        make_cheating_receipt(30, 1000, trial % 30, trial * 104729);
    EXPECT_FALSE(lenient.verify(receipt, wide_image()).ok()) << trial;
  }
}

TEST(Soundness, DefaultPolicyRejectsUnderOpenedSeals) {
  // A cheating prover who simply omits openings is stopped by the
  // min_queries floor regardless of luck.
  const auto receipt = make_cheating_receipt(50, 2, 0, 1);
  Verifier strict;  // default min_queries = 32
  EXPECT_FALSE(strict.verify(receipt, wide_image()).ok());
}

}  // namespace
}  // namespace zkt::zvm
