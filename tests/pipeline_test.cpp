// ProviderPipeline tests: incremental aggregation of stored windows,
// receipt persistence, and failure blocking.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/pipeline.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

struct Fixture {
  store::LogStore store;
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("pipe");

  void store_window(u64 window, u32 routers, bool commit = true,
                    bool tamper = false) {
    for (u32 r = 0; r < routers; ++r) {
      RLogBatch batch;
      batch.router_id = r;
      batch.window_id = window;
      FlowRecord record;
      PacketObservation pkt;
      pkt.key = {r + 1, 0x09090909, 1000, 443, 6};
      pkt.timestamp_ms = window * 5000;
      pkt.bytes = 100;
      record.observe(pkt);
      batch.records.push_back(record);
      if (commit) {
        ASSERT_TRUE(
            board.publish(make_commitment(batch, key, window).value()).ok());
      }
      if (tamper) batch.records[0].bytes += 1;
      ASSERT_TRUE(store
                      .append(store::kTableRlogs, window, r,
                              batch.canonical_bytes())
                      .ok());
    }
  }
};

TEST(Pipeline, AggregatesAllStoredWindowsInOrder) {
  Fixture fx;
  fx.store_window(3, 2);
  fx.store_window(1, 2);
  fx.store_window(2, 2);

  ProviderPipeline pipeline(fx.store, fx.board);
  EXPECT_EQ(pipeline.pending_windows().value(), (std::vector<u64>{1, 2, 3}));
  auto rounds = pipeline.aggregate_pending();
  ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
  ASSERT_EQ(rounds.value().size(), 3u);
  EXPECT_EQ(rounds.value()[0].primary().journal.commitments[0].window_id, 1u);
  EXPECT_EQ(rounds.value()[2].primary().journal.commitments[0].window_id, 3u);
  EXPECT_TRUE(pipeline.pending_windows().value().empty());
  EXPECT_EQ(fx.store.row_count(store::kTableReceipts), 3u);

  // The persisted receipts replay through an auditor.
  Auditor auditor(fx.board);
  for (const auto& row : fx.store.scan(store::kTableReceipts, 0, ~0ULL)) {
    auto receipt = zvm::Receipt::from_bytes(row.payload);
    ASSERT_TRUE(receipt.ok());
    ASSERT_TRUE(auditor.accept_round(receipt.value()).ok());
  }
  EXPECT_EQ(auditor.rounds_accepted(), 3u);
}

TEST(Pipeline, IncrementalRuns) {
  Fixture fx;
  ProviderPipeline pipeline(fx.store, fx.board);
  EXPECT_TRUE(pipeline.aggregate_pending().value().empty());

  fx.store_window(1, 1);
  auto first = pipeline.aggregate_pending();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().size(), 1u);

  fx.store_window(2, 1);
  fx.store_window(3, 1);
  auto second = pipeline.aggregate_pending();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().size(), 2u);
  EXPECT_EQ(pipeline.receipts().size(), 3u);
}

TEST(Pipeline, TamperedWindowBlocksChain) {
  Fixture fx;
  fx.store_window(1, 1);
  fx.store_window(2, 1, /*commit=*/true, /*tamper=*/true);
  fx.store_window(3, 1);

  ProviderPipeline pipeline(fx.store, fx.board);
  auto result = pipeline.aggregate_pending();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::guest_abort);
  // Window 1 succeeded before the failure; 2 and 3 remain pending.
  EXPECT_EQ(pipeline.receipts().size(), 1u);
  EXPECT_EQ(pipeline.pending_windows().value(), (std::vector<u64>{2, 3}));
}

TEST(Pipeline, TransientScanFaultIsAbsorbedByRetry) {
  Fixture fx;
  fx.store_window(1, 1);
  store::FaultInjector faults;
  fx.store.set_fault_injector(&faults);
  faults.arm(store::FaultPoint::scan);

  PipelineOptions options;
  options.retry.max_attempts = 3;
  options.retry.base_backoff = std::chrono::milliseconds(1);
  options.retry.max_backoff = std::chrono::milliseconds(2);
  ProviderPipeline pipeline(fx.store, fx.board, options);
  auto rounds = pipeline.aggregate_pending();
  ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
  EXPECT_EQ(rounds.value().size(), 1u);
  EXPECT_EQ(faults.injected(), 1u);  // the fault fired and was retried over
  fx.store.set_fault_injector(nullptr);
}

TEST(Pipeline, ExhaustedRetriesSurfaceTypedIoError) {
  Fixture fx;
  fx.store_window(1, 1);
  store::FaultInjector faults;
  fx.store.set_fault_injector(&faults);

  PipelineOptions options;
  options.retry.max_attempts = 1;  // no second chance
  ProviderPipeline pipeline(fx.store, fx.board, options);

  faults.arm(store::FaultPoint::scan);
  auto pending = pipeline.pending_windows();
  ASSERT_FALSE(pending.ok());  // an unreadable store is not "no work"
  EXPECT_EQ(pending.error().code, Errc::io_error);

  faults.arm(store::FaultPoint::scan);
  auto rounds = pipeline.aggregate_pending();
  ASSERT_FALSE(rounds.ok());
  EXPECT_EQ(rounds.error().code, Errc::io_error);

  // Transient means transient: once the store heals, the same pipeline
  // picks the window up.
  fx.store.set_fault_injector(nullptr);
  auto retried = pipeline.aggregate_pending();
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value().size(), 1u);
}

TEST(Pipeline, PruneDropsOnlyAggregatedWindows) {
  Fixture fx;
  fx.store_window(1, 2);
  fx.store_window(2, 2);
  ProviderPipeline pipeline(fx.store, fx.board);
  EXPECT_EQ(pipeline.prune_aggregated(), 0u);  // nothing aggregated yet
  ASSERT_TRUE(pipeline.aggregate_pending().ok());

  fx.store_window(3, 2);  // arrives after the last aggregation
  EXPECT_EQ(pipeline.prune_aggregated(), 4u);  // windows 1 and 2 dropped
  EXPECT_EQ(fx.store.row_count(store::kTableRlogs), 2u);
  EXPECT_EQ(pipeline.pending_windows().value(), (std::vector<u64>{3}));

  // The chain continues over pruned history (receipts carry it).
  auto rounds = pipeline.aggregate_pending();
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(rounds.value().size(), 1u);

  // The full receipt trail still audits even though raw logs are gone.
  Auditor auditor(fx.board);
  for (const auto& receipt : pipeline.receipts()) {
    ASSERT_TRUE(auditor.accept_round(receipt).ok());
  }
  EXPECT_EQ(auditor.rounds_accepted(), 3u);
}

TEST(Pipeline, UncommittedWindowBlocks) {
  Fixture fx;
  fx.store_window(1, 1, /*commit=*/false);
  ProviderPipeline pipeline(fx.store, fx.board);
  auto result = pipeline.aggregate_pending();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::commitment_missing);
}

}  // namespace
}  // namespace zkt::core
