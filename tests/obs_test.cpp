// zkt::obs tests: lock-free instrument correctness under contention, span
// nesting, snapshot determinism, and end-to-end pipeline instrumentation.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zkt::obs {
namespace {

TEST(ObsCounter, ConcurrentAddsAreExact) {
  Registry reg;
  Counter& hits = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hits] {
      for (u64 i = 0; i < kPerThread; ++i) hits.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hits.value(), kThreads * kPerThread);
  hits.reset();
  EXPECT_EQ(hits.value(), 0u);
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCountSumMinMax) {
  Registry reg;
  Histogram& h = reg.histogram("latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Integer-valued samples so the double sum is exact.
        h.record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = reg.snapshot();
  const HistogramSnapshot* hs = snap.find_histogram("latency");
  ASSERT_NE(hs, nullptr);
  constexpr u64 kTotal = u64{kThreads} * kPerThread;
  EXPECT_EQ(hs->count, kTotal);
  EXPECT_EQ(hs->min, 0.0);
  EXPECT_EQ(hs->max, static_cast<double>(kTotal - 1));
  EXPECT_EQ(hs->sum, static_cast<double>(kTotal) * (kTotal - 1) / 2.0);
  u64 bucket_total = 0;
  for (const auto& [upper, count] : hs->buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(ObsHistogram, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1);    // [1, 2)
  EXPECT_EQ(Histogram::bucket_index(1.999), 1);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2);    // [2, 4)
  EXPECT_EQ(Histogram::bucket_index(1024.0), 11);
  // Far past the last bucket: clamps instead of overflowing.
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 1.0);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1024.0);
  // Negative and NaN samples must not corrupt the distribution.
  Registry reg;
  Histogram& h = reg.histogram("edge");
  h.record(-5.0);  // clamped to 0
  h.record(std::nan(""));  // dropped
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsHistogram, QuantilesBracketTheData) {
  Registry reg;
  Histogram& h = reg.histogram("q");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const auto snap = reg.snapshot();
  const HistogramSnapshot* hs = snap.find_histogram("q");
  ASSERT_NE(hs, nullptr);
  EXPECT_NEAR(hs->mean(), 500.5, 1e-9);
  // Log-bucketed quantiles are estimates; they must stay within the
  // enclosing power-of-two bucket of the true quantile.
  EXPECT_GE(hs->p50(), 256.0);
  EXPECT_LE(hs->p50(), 1000.0);
  EXPECT_GE(hs->p99(), 512.0);
  EXPECT_LE(hs->p99(), 1000.0);
  EXPECT_GE(hs->quantile(0.0), hs->min);
  EXPECT_LE(hs->quantile(1.0), hs->max);
}

TEST(ObsSpan, NestingJoinsPathsAndRecordsOnClose) {
  Registry reg;
  {
    ScopedSpan outer("aggregate", reg);
    EXPECT_EQ(outer.path(), "aggregate");
    EXPECT_EQ(ScopedSpan::depth(), 1u);
    {
      ScopedSpan inner("commit", reg);
      EXPECT_EQ(inner.path(), "aggregate/commit");
      EXPECT_EQ(ScopedSpan::depth(), 2u);
    }
    EXPECT_EQ(ScopedSpan::depth(), 1u);
  }
  EXPECT_EQ(ScopedSpan::depth(), 0u);

  const auto snap = reg.snapshot();
  const u64* outer_calls = snap.find_counter("span.aggregate.calls");
  const u64* inner_calls = snap.find_counter("span.aggregate/commit.calls");
  ASSERT_NE(outer_calls, nullptr);
  ASSERT_NE(inner_calls, nullptr);
  EXPECT_EQ(*outer_calls, 1u);
  EXPECT_EQ(*inner_calls, 1u);
  ASSERT_NE(snap.find_histogram("span.aggregate.ms"), nullptr);
  EXPECT_EQ(snap.find_histogram("span.aggregate.ms")->count, 1u);
  ASSERT_NE(snap.find_histogram("span.aggregate/commit.ms"), nullptr);
}

TEST(ObsSpan, EachThreadRootsItsOwnPath) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg] {
      ScopedSpan root("shard", reg);
      EXPECT_EQ(root.path(), "shard");
      ScopedSpan leaf("prove", reg);
      EXPECT_EQ(leaf.path(), "shard/prove");
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  const u64* calls = snap.find_counter("span.shard.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(*calls, 4u);
}

TEST(ObsSnapshot, DeterministicAndSorted) {
  Registry reg;
  reg.counter("z.last").add(3);
  reg.counter("a.first").add(1);
  reg.gauge("m.middle").set(2.5);
  reg.histogram("h.series").record(7.0);

  const auto s1 = reg.snapshot();
  const auto s2 = reg.snapshot();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.to_json(), s2.to_json());
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].first, "a.first");
  EXPECT_EQ(s1.counters[1].first, "z.last");

  const std::string json = s1.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.first\": 1"), std::string::npos);
  // Registry mutation after the snapshot does not alter it.
  reg.counter("a.first").add(10);
  EXPECT_EQ(s1.to_json(), json);

  reg.reset();
  const auto zeroed = reg.snapshot();
  const u64* a = zeroed.find_counter("a.first");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, 0u);  // registration survives reset; value does not
  EXPECT_EQ(zeroed.find_histogram("h.series")->count, 0u);
}

TEST(ObsRegistry, ReferencesAreStableAcrossLookups) {
  Registry reg;
  Counter& c1 = reg.counter("stable");
  Counter& c2 = reg.counter("stable");
  EXPECT_EQ(&c1, &c2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&reg, t] {
      // Concurrent create-or-lookup of overlapping names.
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared." + std::to_string(i % 10)).add(1);
        reg.histogram("hist." + std::to_string(t)).record(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  u64 total = 0;
  for (const auto& [name, value] : snap.counters) total += value;
  EXPECT_EQ(total, 6u * 200u + 0u /* "stable" */);
}

// End-to-end: a full provider pipeline round populates the metric names the
// tools and benches export (docs/OBSERVABILITY.md catalog).
TEST(ObsIntegration, PipelineRoundPopulatesCatalogMetrics) {
  Registry::instance().reset();

  store::LogStore store;
  core::CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("obs-pipe");
  for (u64 window = 1; window <= 2; ++window) {
    for (u32 r = 0; r < 2; ++r) {
      netflow::RLogBatch batch;
      batch.router_id = r;
      batch.window_id = window;
      netflow::FlowRecord record;
      netflow::PacketObservation pkt;
      pkt.key = {r + 1, 0x09090909, 1000, 443, 6};
      pkt.timestamp_ms = window * 5000;
      pkt.bytes = 100;
      record.observe(pkt);
      batch.records.push_back(record);
      ASSERT_TRUE(
          board.publish(core::make_commitment(batch, key, window).value())
              .ok());
      ASSERT_TRUE(store
                      .append(store::kTableRlogs, window, r,
                              batch.canonical_bytes())
                      .ok());
    }
  }

  core::ProviderPipeline pipeline(store, board);
  auto rounds = pipeline.aggregate_pending();
  ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
  ASSERT_EQ(rounds.value().size(), 2u);

  const auto snap = Registry::instance().snapshot();
  for (const char* name :
       {"core.pipeline.windows_aggregated", "core.agg.rounds",
        "core.agg.batches", "zvm.prover.proofs", "zvm.prover.cycles",
        "zvm.prover.sha_rows", "span.pipeline_aggregate_pending.calls"}) {
    const u64* value = snap.find_counter(name);
    ASSERT_NE(value, nullptr) << name;
    EXPECT_GT(*value, 0u) << name;
  }
  for (const char* name :
       {"core.pipeline.round_ms", "core.pipeline.batches_per_round",
        "core.agg.round_ms", "zvm.prover.segment_commit_ms",
        "zvm.prover.execute_ms", "zvm.prover.total_ms",
        "span.pipeline_aggregate_pending.ms"}) {
    const HistogramSnapshot* h = snap.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
  }
  EXPECT_EQ(*snap.find_counter("core.pipeline.windows_aggregated"), 2u);
  EXPECT_EQ(*snap.find_counter("core.agg.rounds"), 2u);
  const double* entries = snap.find_gauge("core.agg.entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_GT(*entries, 0.0);
  // Nested prover spans hang off the pipeline root.
  EXPECT_NE(
      snap.find_counter("span.pipeline_aggregate_pending/agg_round.calls"),
      nullptr);
}

}  // namespace
}  // namespace zkt::obs
