#!/bin/sh
# End-to-end test of the CLI tools: simulate -> prove -> verify -> inspect,
# plus the tamper path (a doctored store must make zkt-prove fail).
# Run by ctest with the build directory as $1.
set -e

BUILD_DIR="${1:?usage: cli_pipeline_test.sh BUILD_DIR}"
TOOLS="$BUILD_DIR/tools"
WORK="$(mktemp -d /tmp/zkt_cli_test.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

echo "== honest pipeline =="
"$TOOLS/zkt-sim" --out-dir "$WORK/data" --packets 3000 --flows 40 \
    --duration-ms 8000 --seed 7
"$TOOLS/zkt-prove" --data-dir "$WORK/data" \
    --query "sum(bytes) where protocol = 6"
"$TOOLS/zkt-verify" --data-dir "$WORK/data" \
    --query "sum(bytes) where protocol = 6"
"$TOOLS/zkt-inspect" --commitments "$WORK/data/commitments.bin" \
    "$WORK/data/aggregation_receipts.bin" "$WORK/data/query_receipt.bin" \
    > /dev/null

echo "== selective and grouped query modes =="
"$TOOLS/zkt-prove" --data-dir "$WORK/data" --query "count" --selective
"$TOOLS/zkt-verify" --data-dir "$WORK/data" --query "count"
"$TOOLS/zkt-prove" --data-dir "$WORK/data" --query "sum(packets)" \
    --group-by protocol
"$TOOLS/zkt-verify" --data-dir "$WORK/data" --query "sum(packets)"

echo "== wrong expected query must be rejected =="
if "$TOOLS/zkt-verify" --data-dir "$WORK/data" --query "sum(bytes)" \
    > /dev/null 2>&1; then
  echo "FAIL: verifier accepted a receipt for a different query"
  exit 1
fi

echo "== logs that mismatch the published commitments must fail proving =="
"$TOOLS/zkt-sim" --out-dir "$WORK/tampered" --packets 1000 --flows 20 \
    --duration-ms 5000 --seed 8
cp "$WORK/tampered/commitments.bin" "$WORK/commitments.orig"
# The provider swaps its raw logs for different traffic (seed change), but
# the public board still holds the original commitments.
"$TOOLS/zkt-sim" --out-dir "$WORK/tampered" --packets 1000 --flows 20 \
    --duration-ms 5000 --seed 10
cp "$WORK/commitments.orig" "$WORK/tampered/commitments.bin"
if "$TOOLS/zkt-prove" --data-dir "$WORK/tampered" > /dev/null 2>&1; then
  echo "FAIL: prover succeeded on logs that do not match the commitments"
  exit 1
fi

echo "== corrupted receipts must fail verification =="
"$TOOLS/zkt-sim" --out-dir "$WORK/forge" --packets 1000 --flows 20 \
    --duration-ms 5000 --seed 9
"$TOOLS/zkt-prove" --data-dir "$WORK/forge"
SIZE=$(wc -c < "$WORK/forge/aggregation_receipts.bin")
OFFSET=$((SIZE / 3))
printf '\377' | dd of="$WORK/forge/aggregation_receipts.bin" bs=1 \
    seek="$OFFSET" count=1 conv=notrunc 2> /dev/null
if "$TOOLS/zkt-verify" --data-dir "$WORK/forge" > /dev/null 2>&1; then
  echo "FAIL: verifier accepted corrupted receipts"
  exit 1
fi

echo "cli pipeline test OK"
