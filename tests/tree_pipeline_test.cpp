// Sharded pipeline tests: end-to-end windows through split -> shard chains
// -> tree seal, pipeline-depth equivalence (byte-identical receipts at
// every depth), crash-restart recovery over the sharded tables (verified
// prefix adopted, receipts replayed never re-proven, missing seals
// re-folded), mixed-mode store rejection, and the sharded fault-injection
// sweep with crash points inside the fold persist and while the next
// window is staged.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/pipeline.h"
#include "store/fault.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

class TreePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ =
        std::filesystem::temp_directory_path() /
        ("zkt_tree_pipeline_test_" + std::to_string(::getpid()) + "_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         ".wal");
    clean();
  }
  void TearDown() override { clean(); }
  void clean() {
    std::filesystem::remove(wal_path_);
    std::filesystem::remove(wal_path_.string() + ".snap");
    std::filesystem::remove(wal_path_.string() + ".snap.tmp");
  }

  store::StoreConfig config() const {
    return store::StoreConfig{.wal_path = wal_path_.string()};
  }

  static PipelineOptions sharded_options(u32 shards, u32 fanout = 2,
                                         u32 depth = 1) {
    PipelineOptions options;
    options.sharded.shard_count = shards;
    options.sharded.join_fanout = fanout;
    options.sharded.pipeline_depth = depth;
    return options;
  }

  RLogBatch make_batch(u64 window, u32 router) const {
    RLogBatch batch;
    batch.router_id = router;
    batch.window_id = window;
    for (u32 f = 0; f < 8; ++f) {
      FlowRecord record;
      PacketObservation pkt;
      pkt.key = {0x0A000000 + f * 13 + router, 0x0B0B0B0B,
                 static_cast<u16>(3000 + f), 443, 6};
      pkt.timestamp_ms = window * 5000 + f;
      pkt.bytes = 100 + window + f;
      record.observe(pkt);
      batch.records.push_back(std::move(record));
    }
    return batch;
  }

  void store_window(store::LogStore& store, CommitmentBoard& board,
                    u64 window, u32 routers = 1) {
    for (u32 r = 0; r < routers; ++r) {
      RLogBatch batch = make_batch(window, r);
      ASSERT_TRUE(
          board.publish(make_commitment(batch, key_, window).value()).ok());
      ASSERT_TRUE(store
                      .append(store::kTableRlogs, window, r,
                              batch.canonical_bytes())
                      .ok());
    }
  }

  crypto::SchnorrKeyPair key_ = crypto::schnorr_keygen_from_seed("tree-pipe");
  std::filesystem::path wal_path_;
};

TEST_F(TreePipelineTest, ShardedWindowsSealAndAudit) {
  store::LogStore store;
  CommitmentBoard board;
  store_window(store, board, 1, 2);
  store_window(store, board, 2, 2);
  store_window(store, board, 3, 2);

  ProviderPipeline pipeline(store, board, sharded_options(2));
  ASSERT_TRUE(pipeline.sharded());
  auto rounds = pipeline.aggregate_pending();
  ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
  ASSERT_EQ(rounds.value().size(), 3u);
  EXPECT_EQ(pipeline.tree_seals().size(), 3u);

  // Persisted shape: one sharded snapshot + K shard receipts + one seal
  // per window; none of the single-chain tables.
  EXPECT_EQ(store.row_count(store::kTableShardState), 3u);
  EXPECT_EQ(store.row_count(store::kTableShardReceipts), 6u);
  EXPECT_EQ(store.row_count(store::kTableTreeSeals), 3u);
  EXPECT_EQ(store.row_count(store::kTableChainState), 0u);
  EXPECT_EQ(store.row_count(store::kTableReceipts), 0u);

  // Every round audits through its tree seal (the stock verifier path).
  ShardedAuditor auditor(board, 2);
  for (const auto& round : rounds.value()) {
    ASSERT_TRUE(round.tree_seal.has_value());
    auto accepted = auditor.accept_round(round);
    ASSERT_TRUE(accepted.ok()) << accepted.to_string();
  }
  EXPECT_EQ(auditor.rounds_accepted(), 3u);
}

TEST_F(TreePipelineTest, PipelineDepthsProduceByteIdenticalProofs) {
  // Depth 1 is the sequential loop; depths 2 and 3 overlap staging and
  // folding. The proof objects — and hence auditor decisions — must be
  // byte-identical, since chain linking stays serial in window order.
  std::vector<Bytes> reference_seals;
  std::vector<Bytes> reference_receipts;
  for (u32 depth : {1u, 2u, 3u}) {
    SCOPED_TRACE("pipeline_depth=" + std::to_string(depth));
    store::LogStore store;
    CommitmentBoard board;
    store_window(store, board, 1, 2);
    store_window(store, board, 2, 2);
    store_window(store, board, 3, 2);
    store_window(store, board, 4, 2);

    ProviderPipeline pipeline(store, board, sharded_options(4, 2, depth));
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    ASSERT_EQ(rounds.value().size(), 4u);

    std::vector<Bytes> seals;
    for (const auto& seal : pipeline.tree_seals()) {
      seals.push_back(seal.to_bytes());
    }
    std::vector<Bytes> receipts;
    for (const auto& round : rounds.value()) {
      for (const auto& shard : round.shard_rounds) {
        receipts.push_back(shard.receipt.to_bytes());
      }
    }
    if (depth == 1) {
      reference_seals = std::move(seals);
      reference_receipts = std::move(receipts);
    } else {
      EXPECT_EQ(seals, reference_seals);
      EXPECT_EQ(receipts, reference_receipts);
    }
  }
}

TEST_F(TreePipelineTest, KillAndRestartResumesShardedChain) {
  CommitmentBoard board;
  // Process 1: two sharded windows, then die.
  {
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    store_window(store, board, 1);
    store_window(store, board, 2);
    ProviderPipeline pipeline(store, board, sharded_options(2));
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    ASSERT_EQ(rounds.value().size(), 2u);
  }

  // Process 2: resume, then prove the window that arrived meanwhile.
  store::LogStore store(config());
  ASSERT_TRUE(store.recover().ok());
  store_window(store, board, 3);
  const u64 receipt_rows_before =
      store.row_count(store::kTableShardReceipts);
  ProviderPipeline pipeline(store, board, sharded_options(2));
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_TRUE(recovery.value().resumed);
  EXPECT_EQ(recovery.value().rounds_restored, 2u);
  EXPECT_EQ(recovery.value().rounds_replayed, 0u);
  EXPECT_EQ(recovery.value().seals_refolded, 0u);
  EXPECT_EQ(recovery.value().last_window, 2u);
  EXPECT_EQ(pipeline.tree_seals().size(), 2u);
  // Recovery adopted the stored proofs — it appended nothing.
  EXPECT_EQ(store.row_count(store::kTableShardReceipts),
            receipt_rows_before);

  auto rounds = pipeline.aggregate_pending();
  ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
  ASSERT_EQ(rounds.value().size(), 1u);
  EXPECT_EQ(pipeline.tree_seals().size(), 3u);
  ShardedAuditor auditor(board, 2);
  // The post-restart round chains onto the recovered state, so its links
  // carry has_prev — a fresh auditor rejects it only if the chain forked.
  // Audit it with adopted context: links[s].prev_* must equal process 1's
  // heads, which the seal transitively proves. Here we check the round
  // verifies as a join receipt and extends entry counts monotonically.
  zvm::Verifier verifier;
  ASSERT_TRUE(rounds.value()[0].tree_seal.has_value());
  ASSERT_TRUE(
      verify_join_receipt(verifier, *rounds.value()[0].tree_seal).ok());
  auto journal = JoinJournal::parse(rounds.value()[0].tree_seal->journal);
  ASSERT_TRUE(journal.ok());
  for (const auto& link : journal.value().links) {
    EXPECT_TRUE(link.has_prev);
    EXPECT_GE(link.new_entry_count, link.prev_entry_count);
  }
}

TEST_F(TreePipelineTest, ReceiptsPastSnapshotReplayedNotReproven) {
  CommitmentBoard board;
  PipelineOptions options = sharded_options(2);
  options.checkpoint_every_n_rounds = 2;  // snapshot after round 2 only
  {
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    store_window(store, board, 1);
    store_window(store, board, 2);
    store_window(store, board, 3);
    ProviderPipeline pipeline(store, board, options);
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    ASSERT_EQ(rounds.value().size(), 3u);
  }

  store::LogStore store(config());
  ASSERT_TRUE(store.recover().ok());
  EXPECT_EQ(store.row_count(store::kTableShardState), 1u);
  const u64 receipt_rows_before =
      store.row_count(store::kTableShardReceipts);
  ProviderPipeline pipeline(store, board, options);
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().rounds_restored, 2u);
  EXPECT_EQ(recovery.value().rounds_replayed, 1u);  // window 3: replayed
  EXPECT_EQ(recovery.value().last_window, 3u);
  EXPECT_EQ(pipeline.tree_seals().size(), 3u);
  // Replay adopted the stored receipts verbatim — nothing re-proven.
  EXPECT_EQ(store.row_count(store::kTableShardReceipts),
            receipt_rows_before);
  EXPECT_TRUE(pipeline.pending_windows().value().empty());
}

TEST_F(TreePipelineTest, MissingSealIsRefoldedOnRecovery) {
  // Crash after the shard receipts, before the seal append: the restarted
  // process re-folds the seal from the verified receipts (O(K) joins, no
  // re-proving of the round).
  store::LogStore store;
  CommitmentBoard board;
  store_window(store, board, 1);
  {
    ProviderPipeline pipeline(store, board, sharded_options(2));
    ASSERT_TRUE(pipeline.aggregate_pending().ok());
  }
  ASSERT_EQ(store.drop_rows(store::kTableTreeSeals, ~0ULL), 1u);
  const u64 receipt_rows_before =
      store.row_count(store::kTableShardReceipts);

  ProviderPipeline pipeline(store, board, sharded_options(2));
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().seals_refolded, 1u);
  EXPECT_EQ(pipeline.tree_seals().size(), 1u);
  EXPECT_EQ(store.row_count(store::kTableTreeSeals), 1u);
  EXPECT_EQ(store.row_count(store::kTableShardReceipts),
            receipt_rows_before);
  zvm::Verifier verifier;
  EXPECT_TRUE(verify_join_receipt(verifier, pipeline.tree_seals()[0]).ok());
}

TEST_F(TreePipelineTest, MixedModeStoresAreRejected) {
  // A single-chain store cannot be recovered by a sharded pipeline (the
  // chains would fork), and vice versa — both are terminal typed errors,
  // not silent fresh starts.
  store::LogStore store;
  CommitmentBoard board;
  store_window(store, board, 1);
  {
    ProviderPipeline plain(store, board);
    ASSERT_TRUE(plain.aggregate_pending().ok());
  }
  ProviderPipeline sharded(store, board, sharded_options(2));
  auto sharded_over_plain = sharded.recover();
  ASSERT_FALSE(sharded_over_plain.ok());
  EXPECT_EQ(sharded_over_plain.error().code, Errc::invalid_argument);

  store::LogStore sharded_store;
  CommitmentBoard board2;
  {
    RLogBatch batch = make_batch(1, 0);
    ASSERT_TRUE(
        board2.publish(make_commitment(batch, key_, 1).value()).ok());
    ASSERT_TRUE(sharded_store
                    .append(store::kTableRlogs, 1, 0,
                            batch.canonical_bytes())
                    .ok());
    ProviderPipeline writer(sharded_store, board2, sharded_options(2));
    ASSERT_TRUE(writer.aggregate_pending().ok());
  }
  ProviderPipeline plain(sharded_store, board2);
  auto plain_over_sharded = plain.recover();
  ASSERT_FALSE(plain_over_sharded.ok());
  EXPECT_EQ(plain_over_sharded.error().code, Errc::invalid_argument);
}

TEST_F(TreePipelineTest, ShardCountMismatchOnRecoveryIsTerminal) {
  store::LogStore store;
  CommitmentBoard board;
  store_window(store, board, 1);
  {
    ProviderPipeline pipeline(store, board, sharded_options(3));
    ASSERT_TRUE(pipeline.aggregate_pending().ok());
  }
  ProviderPipeline wider(store, board, sharded_options(4));
  auto wider_recovery = wider.recover();
  ASSERT_FALSE(wider_recovery.ok());
  EXPECT_EQ(wider_recovery.error().code, Errc::invalid_argument);

  ProviderPipeline narrower(store, board, sharded_options(2, /*fanout=*/0));
  ASSERT_TRUE(narrower.sharded());
  // Re-check with fewer shards than the store holds: receipt rows for
  // shard ids past the configured count make the mismatch visible even
  // without a snapshot.
  ASSERT_EQ(store.drop_rows(store::kTableShardState, ~0ULL), 1u);
  auto narrower_recovery = narrower.recover();
  ASSERT_FALSE(narrower_recovery.ok());
  EXPECT_EQ(narrower_recovery.error().code, Errc::invalid_argument);
}

// The sharded acceptance sweep: crash points land inside every persist of
// the pipelined loop — the sharded snapshot, the shard receipts, the tree
// seal append (i.e. during the fold's persist), and the scans that stage
// window i+1 while window i proves (pipeline_depth 2). After a restart the
// chain must complete with the stored prefix adopted, not re-proven.
TEST_F(TreePipelineTest, FaultSweepShardedCrashPointsRecoverOrFailTyped) {
  struct Case {
    store::FaultPoint point;
    u64 after_n;
  };
  std::vector<Case> cases;
  // 3 windows × (1 snapshot + 2 shard receipts + 1 seal) = 12 append-class
  // hits per run; offsets 0..11 put a crash inside every one, including
  // the seal appends (fold persist). Scan-class hits cover the pending
  // scan and the staged-ahead batch loads of window i+1.
  for (u64 n = 0; n < 12; n += 1) {
    cases.push_back({store::FaultPoint::wal_append, n});
    cases.push_back({store::FaultPoint::wal_torn_write, n});
  }
  for (u64 n = 0; n < 5; ++n) {
    cases.push_back({store::FaultPoint::scan, n});
    cases.push_back({store::FaultPoint::fsync, n});
  }

  PipelineOptions options = sharded_options(2, 2, /*depth=*/2);
  options.retry.max_attempts = 2;
  options.retry.base_backoff = std::chrono::milliseconds(1);
  options.retry.max_backoff = std::chrono::milliseconds(2);

  for (const auto& test_case : cases) {
    SCOPED_TRACE(std::string(store::fault_point_name(test_case.point)) +
                 " after " + std::to_string(test_case.after_n) + " hits");
    clean();
    CommitmentBoard board;
    store::FaultInjector faults;

    // Process 1: populate, arm the fault, pipeline into it at depth 2
    // (window i+1 stages while window i proves and window i-1 folds).
    {
      store::LogStore store(config());
      ASSERT_TRUE(store.recover().ok());
      store_window(store, board, 1);
      store_window(store, board, 2);
      store_window(store, board, 3);
      faults.arm(test_case.point, test_case.after_n);
      store.set_fault_injector(&faults);
      ProviderPipeline pipeline(store, board, options);
      auto rounds = pipeline.aggregate_pending();
      if (!rounds.ok()) {
        EXPECT_EQ(rounds.error().code, Errc::io_error)
            << rounds.error().to_string();
      }
      store.set_fault_injector(nullptr);
    }

    // Process 2: restart healthy; recovery adopts the stored prefix and
    // aggregate_pending completes only the windows the crash lost.
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    ProviderPipeline pipeline(store, board, options);
    auto recovery = pipeline.recover();
    ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
    const u64 already_proven = recovery.value().rounds_restored +
                               recovery.value().rounds_replayed;
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    EXPECT_EQ(already_proven + rounds.value().size(), 3u);
    EXPECT_TRUE(pipeline.pending_windows().value().empty());
    EXPECT_EQ(pipeline.tree_seals().size(), 3u);
    zvm::Verifier verifier;
    for (const auto& seal : pipeline.tree_seals()) {
      ASSERT_TRUE(verify_join_receipt(verifier, seal).ok());
    }
  }
}

}  // namespace
}  // namespace zkt::core
