// Auditor (verifier-side) tests: chain acceptance rules, board cross-checks,
// and query-receipt validation against accepted rounds.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/service.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

struct Pipeline {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("auditor-t");
  AggregationService service{board};
  u64 next_window = 1;

  RLogBatch make_batch(std::vector<std::pair<u32, u64>> flows) {
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = next_window++;
    for (auto [src, packets] : flows) {
      FlowRecord record;
      for (u64 i = 0; i < packets; ++i) {
        PacketObservation pkt;
        pkt.key = {src, 0x09090909, 1000, 443, 6};
        pkt.timestamp_ms = batch.window_id * 5000 + i;
        pkt.bytes = 100;
        pkt.hop_count = 4;
        record.observe(pkt);
      }
      batch.records.push_back(std::move(record));
    }
    EXPECT_TRUE(board
                    .publish(make_commitment(batch, key,
                                             batch.window_id * 5000)
                                 .value())
                    .ok());
    return batch;
  }

  AggregationRound round(std::vector<std::pair<u32, u64>> flows) {
    auto r = service.aggregate({make_batch(std::move(flows))});
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
    return std::move(r.value());
  }
};

TEST(Auditor, AcceptsChainInOrder) {
  Pipeline p;
  Auditor auditor(p.board);
  auto r0 = p.round({{1, 2}});
  auto r1 = p.round({{1, 3}, {2, 1}});
  auto r2 = p.round({{2, 5}});
  ASSERT_TRUE(auditor.accept_round(r0.receipt).ok());
  ASSERT_TRUE(auditor.accept_round(r1.receipt).ok());
  ASSERT_TRUE(auditor.accept_round(r2.receipt).ok());
  EXPECT_EQ(auditor.rounds_accepted(), 3u);
  EXPECT_EQ(auditor.current_entry_count(), 2u);
  EXPECT_EQ(auditor.current_root(), p.service.state().root());
}

TEST(Auditor, RejectsSkippedRound) {
  Pipeline p;
  Auditor auditor(p.board);
  auto r0 = p.round({{1, 2}});
  auto r1 = p.round({{1, 3}});
  auto r2 = p.round({{1, 4}});
  ASSERT_TRUE(auditor.accept_round(r0.receipt).ok());
  // Skipping r1: r2 does not chain onto r0.
  auto rejected = auditor.accept_round(r2.receipt);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::chain_broken);
  // r1 then r2 in order still works.
  ASSERT_TRUE(auditor.accept_round(r1.receipt).ok());
  ASSERT_TRUE(auditor.accept_round(r2.receipt).ok());
}

TEST(Auditor, RejectsNonGenesisFirst) {
  Pipeline p;
  auto r0 = p.round({{1, 2}});
  auto r1 = p.round({{1, 3}});
  Auditor auditor(p.board);
  auto rejected = auditor.accept_round(r1.receipt);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::chain_broken);
}

TEST(Auditor, RejectsReplayedGenesisAfterProgress) {
  Pipeline p;
  Auditor auditor(p.board);
  auto r0 = p.round({{1, 2}});
  auto r1 = p.round({{1, 3}});
  ASSERT_TRUE(auditor.accept_round(r0.receipt).ok());
  ASSERT_TRUE(auditor.accept_round(r1.receipt).ok());
  EXPECT_FALSE(auditor.accept_round(r0.receipt).ok());
}

TEST(Auditor, RejectsRoundWithUnpublishedCommitment) {
  // Build a separate pipeline whose board the auditor does not trust.
  Pipeline trusted;
  Pipeline rogue;
  auto rogue_round = rogue.round({{1, 2}});
  Auditor auditor(trusted.board);  // auditor watches the trusted board only
  auto rejected = auditor.accept_round(rogue_round.receipt);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::commitment_missing);
}

TEST(Auditor, RejectsTamperedRoundJournal) {
  Pipeline p;
  Auditor auditor(p.board);
  auto r0 = p.round({{1, 2}});
  auto tampered = r0.receipt;
  AggJournal j = r0.journal;
  j.new_entry_count += 1;
  Writer w;
  j.write(w);
  tampered.journal = std::move(w).take();
  EXPECT_FALSE(auditor.accept_round(tampered).ok());
}

TEST(Auditor, QueryAgainstUnacceptedRoundRejected) {
  Pipeline p;
  auto r0 = p.round({{1, 2}});
  QueryService queries(p.service);
  auto resp = queries.run(Query::count());
  ASSERT_TRUE(resp.ok());

  Auditor auditor(p.board);  // never accepted any round
  auto rejected = auditor.verify_query(resp.value().receipt);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::chain_broken);
}

TEST(Auditor, QueryAgainstOlderAcceptedRoundStillVerifies) {
  Pipeline p;
  Auditor auditor(p.board);
  auto r0 = p.round({{1, 2}});
  ASSERT_TRUE(auditor.accept_round(r0.receipt).ok());

  QueryService queries(p.service);
  auto resp_old = queries.run(Query::count());
  ASSERT_TRUE(resp_old.ok());

  auto r1 = p.round({{2, 2}});
  ASSERT_TRUE(auditor.accept_round(r1.receipt).ok());

  // The earlier query (against round 0) still verifies: it targets an
  // accepted claim, just not the newest one.
  EXPECT_TRUE(auditor.verify_query(resp_old.value().receipt).ok());
}

TEST(Auditor, ExpectedQueryMismatchRejected) {
  Pipeline p;
  Auditor auditor(p.board);
  auto r0 = p.round({{1, 2}});
  ASSERT_TRUE(auditor.accept_round(r0.receipt).ok());
  QueryService queries(p.service);
  const Query asked = Query::sum(QField::packets);
  const Query other = Query::sum(QField::bytes);
  auto resp = queries.run(asked);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(auditor.verify_query(resp.value().receipt, {.expected_query = &asked}).ok());
  auto mismatch = auditor.verify_query(resp.value().receipt, {.expected_query = &other});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.error().code, Errc::proof_invalid);
}

TEST(Auditor, ModeConfusionRejected) {
  // A selective receipt whose journal is rewritten to claim complete mode
  // must fail (journal digest breaks); and vice versa.
  Pipeline p;
  Auditor auditor(p.board);
  auto r0 = p.round({{1, 2}, {2, 3}});
  ASSERT_TRUE(auditor.accept_round(r0.receipt).ok());
  QueryService queries(p.service);
  const Query q = Query::count();
  auto selective = queries.run(q, {.mode = QueryMode::selective,
                                   .prove_options_override = {}});
  ASSERT_TRUE(selective.ok());

  auto confused = selective.value().receipt;
  QueryJournal j = selective.value().journal;
  j.mode = QueryMode::complete;
  Writer w;
  j.write(w);
  confused.journal = std::move(w).take();
  EXPECT_FALSE(auditor.verify_query(confused, {.expected_query = &q}).ok());
}

}  // namespace
}  // namespace zkt::core
