// Commitment and bulletin-board tests: signing, verification, pinning,
// equivocation rejection, and serialization.
#include <gtest/gtest.h>

#include "core/commitment.h"

namespace zkt::core {
namespace {

netflow::RLogBatch batch_for(u32 router, u64 window, u64 marker = 0) {
  netflow::RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  netflow::FlowRecord rec;
  netflow::PacketObservation pkt;
  pkt.key = {router, 0x09090909, 1000, 443, 6};
  pkt.timestamp_ms = 100 + marker;
  pkt.bytes = 100;
  rec.observe(pkt);
  batch.records.push_back(rec);
  return batch;
}

TEST(Commitment, MakeAndVerify) {
  const auto key = crypto::schnorr_keygen_from_seed("commit-test");
  const auto batch = batch_for(1, 2);
  auto c = make_commitment(batch, key, 10'000);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().router_id, 1u);
  EXPECT_EQ(c.value().window_id, 2u);
  EXPECT_EQ(c.value().record_count, 1u);
  EXPECT_EQ(c.value().rlog_hash, batch.hash());
  EXPECT_TRUE(verify_commitment(c.value()).ok());
}

TEST(Commitment, TamperedFieldsFailVerification) {
  const auto key = crypto::schnorr_keygen_from_seed("commit-tamper");
  auto c = make_commitment(batch_for(1, 2), key, 10'000).value();

  auto t1 = c;
  t1.rlog_hash.bytes[0] ^= 1;
  EXPECT_FALSE(verify_commitment(t1).ok());
  auto t2 = c;
  t2.window_id += 1;
  EXPECT_FALSE(verify_commitment(t2).ok());
  auto t3 = c;
  t3.record_count += 1;
  EXPECT_FALSE(verify_commitment(t3).ok());
  auto t4 = c;
  t4.router_id += 1;
  EXPECT_FALSE(verify_commitment(t4).ok());
  auto t5 = c;
  t5.signature.bytes[10] ^= 1;
  EXPECT_FALSE(verify_commitment(t5).ok());
}

TEST(Commitment, SerializationRoundTrip) {
  const auto key = crypto::schnorr_keygen_from_seed("commit-serial");
  const auto c = make_commitment(batch_for(3, 4), key, 20'000).value();
  const Bytes wire = c.to_bytes();
  Reader r(wire);
  auto parsed = Commitment::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(parsed.value().signing_digest(), c.signing_digest());
  EXPECT_TRUE(verify_commitment(parsed.value()).ok());
}

TEST(Board, PublishAndGet) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("board-1");
  const auto c = make_commitment(batch_for(1, 5), key, 25'000).value();
  ASSERT_TRUE(board.publish(c).ok());
  EXPECT_EQ(board.size(), 1u);
  auto got = board.get(1, 5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->rlog_hash, c.rlog_hash);
  EXPECT_FALSE(board.get(1, 6).has_value());
  EXPECT_FALSE(board.get(2, 5).has_value());
}

TEST(Board, IdempotentRepublishAllowed) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("board-idem");
  const auto c = make_commitment(batch_for(1, 5), key, 25'000).value();
  ASSERT_TRUE(board.publish(c).ok());
  EXPECT_TRUE(board.publish(c).ok());
  EXPECT_EQ(board.size(), 1u);
}

TEST(Board, EquivocationRejected) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("board-equiv");
  ASSERT_TRUE(
      board.publish(make_commitment(batch_for(1, 5, 0), key, 1).value()).ok());
  auto second = board.publish(
      make_commitment(batch_for(1, 5, 99), key, 2).value());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), Errc::duplicate);
}

TEST(Board, FirstUseKeyPinning) {
  CommitmentBoard board;
  const auto key1 = crypto::schnorr_keygen_from_seed("board-pin-1");
  const auto key2 = crypto::schnorr_keygen_from_seed("board-pin-2");
  ASSERT_TRUE(
      board.publish(make_commitment(batch_for(1, 1), key1, 1).value()).ok());
  // Same router id, different key: rejected even with a valid signature.
  auto other = board.publish(make_commitment(batch_for(1, 2), key2, 2).value());
  EXPECT_FALSE(other.ok());
  EXPECT_EQ(other.code(), Errc::signature_invalid);
}

TEST(Board, ExplicitRegistrationBlocksOtherKeys) {
  CommitmentBoard board;
  const auto real = crypto::schnorr_keygen_from_seed("board-real");
  const auto imposter = crypto::schnorr_keygen_from_seed("board-imposter");
  board.register_router(7, real.public_key);
  EXPECT_FALSE(
      board.publish(make_commitment(batch_for(7, 1), imposter, 1).value())
          .ok());
  EXPECT_TRUE(
      board.publish(make_commitment(batch_for(7, 1), real, 1).value()).ok());
}

TEST(Board, InvalidSignatureRejectedBeforeStorage) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("board-sig");
  auto c = make_commitment(batch_for(1, 1), key, 1).value();
  c.signature.bytes[0] ^= 1;
  EXPECT_FALSE(board.publish(c).ok());
  EXPECT_EQ(board.size(), 0u);
}

TEST(Board, WindowScan) {
  CommitmentBoard board;
  for (u32 r = 0; r < 4; ++r) {
    const auto key =
        crypto::schnorr_keygen_from_seed("board-w-" + std::to_string(r));
    ASSERT_TRUE(
        board.publish(make_commitment(batch_for(r, 9), key, 1).value()).ok());
    ASSERT_TRUE(
        board.publish(make_commitment(batch_for(r, 10), key, 2).value()).ok());
  }
  EXPECT_EQ(board.window(9).size(), 4u);
  EXPECT_EQ(board.window(10).size(), 4u);
  EXPECT_EQ(board.window(11).size(), 0u);
  EXPECT_EQ(board.all().size(), 8u);
}

}  // namespace
}  // namespace zkt::core
