// ChaCha20 tests against RFC 8439 vectors plus DRBG behaviour.
#include <gtest/gtest.h>

#include <set>

#include "crypto/chacha20.h"

namespace zkt::crypto {
namespace {

std::array<u8, 32> key_from_hex(std::string_view hex) {
  const Bytes b = hex_bytes(hex);
  std::array<u8, 32> key{};
  std::copy(b.begin(), b.end(), key.begin());
  return key;
}

std::array<u8, 12> nonce_from_hex(std::string_view hex) {
  const Bytes b = hex_bytes(hex);
  std::array<u8, 12> nonce{};
  std::copy(b.begin(), b.end(), nonce.begin());
  return nonce;
}

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  const auto key = key_from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce_from_hex("000000090000004a00000000");
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex(BytesView(block.data(), block.size())),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2 encryption test vector.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  const auto key = key_from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce_from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes ciphertext =
      chacha20_xor(key, nonce, 1, bytes_of(plaintext));
  EXPECT_EQ(to_hex(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const auto key = key_from_hex(
      "1111111111111111111111111111111111111111111111111111111111111111");
  const auto nonce = nonce_from_hex("000000000000000000000001");
  const Bytes msg = bytes_of("some telemetry payload, 77 bytes or so, long "
                             "enough to span two keystream blocks!");
  const Bytes ct = chacha20_xor(key, nonce, 0, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20_xor(key, nonce, 0, ct), msg);
}

TEST(ChaCha20, CounterAdvancesKeystream) {
  const auto key = key_from_hex(
      "2222222222222222222222222222222222222222222222222222222222222222");
  const auto nonce = nonce_from_hex("000000000000000000000000");
  EXPECT_NE(chacha20_block(key, nonce, 0), chacha20_block(key, nonce, 1));
}

TEST(Drbg, DeterministicFromSeed) {
  ChaChaDrbg a(std::string_view("seed")), b(std::string_view("seed"));
  ChaChaDrbg c(std::string_view("other"));
  const Bytes ba = a.bytes(100);
  EXPECT_EQ(ba, b.bytes(100));
  EXPECT_NE(ba, c.bytes(100));
}

TEST(Drbg, FillCrossesBlockBoundaries) {
  ChaChaDrbg a(std::string_view("boundary"));
  ChaChaDrbg b(std::string_view("boundary"));
  Bytes one = a.bytes(200);
  Bytes pieces;
  for (size_t n : {1u, 63u, 64u, 65u, 7u}) append(pieces, b.bytes(n));
  EXPECT_EQ(BytesView(one).subspan(0, pieces.size()).size(), pieces.size());
  EXPECT_TRUE(std::equal(pieces.begin(), pieces.end(), one.begin()));
}

TEST(Drbg, UniformBounds) {
  ChaChaDrbg drbg(std::string_view("uniform"));
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = drbg.uniform(13);
    EXPECT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // all residues hit
}

TEST(Drbg, NextDigestDistinct) {
  ChaChaDrbg drbg(std::string_view("digests"));
  EXPECT_NE(drbg.next_digest(), drbg.next_digest());
}

}  // namespace
}  // namespace zkt::crypto
