// Fiat–Shamir transcript tests: determinism, binding to every absorbed
// value, domain/label separation, and unbiased index sampling — the
// properties the zvm seal's non-interactive soundness rests on.
#include <gtest/gtest.h>

#include <set>

#include "crypto/sha256.h"
#include "crypto/transcript.h"

namespace zkt::crypto {
namespace {

TEST(Transcript, DeterministicReplay) {
  auto run = [] {
    Transcript t("test");
    t.absorb("a", bytes_of("one"));
    t.absorb_u64("n", 42);
    return t.challenge("c");
  };
  EXPECT_EQ(run(), run());
}

TEST(Transcript, DomainSeparation) {
  Transcript t1("domain-one");
  Transcript t2("domain-two");
  t1.absorb("a", bytes_of("x"));
  t2.absorb("a", bytes_of("x"));
  EXPECT_NE(t1.challenge("c"), t2.challenge("c"));
}

TEST(Transcript, BindsAbsorbedData) {
  Transcript t1("d"), t2("d");
  t1.absorb("a", bytes_of("one"));
  t2.absorb("a", bytes_of("two"));
  EXPECT_NE(t1.challenge("c"), t2.challenge("c"));
}

TEST(Transcript, BindsLabels) {
  Transcript t1("d"), t2("d");
  t1.absorb("label1", bytes_of("x"));
  t2.absorb("label2", bytes_of("x"));
  EXPECT_NE(t1.challenge("c"), t2.challenge("c"));
}

TEST(Transcript, LabelDataBoundaryUnambiguous) {
  // ("ab", "c") must differ from ("a", "bc").
  Transcript t1("d"), t2("d");
  t1.absorb("ab", bytes_of("c"));
  t2.absorb("a", bytes_of("bc"));
  EXPECT_NE(t1.challenge("c"), t2.challenge("c"));
}

TEST(Transcript, OrderMatters) {
  Transcript t1("d"), t2("d");
  t1.absorb("a", bytes_of("1"));
  t1.absorb("b", bytes_of("2"));
  t2.absorb("b", bytes_of("2"));
  t2.absorb("a", bytes_of("1"));
  EXPECT_NE(t1.challenge("c"), t2.challenge("c"));
}

TEST(Transcript, ChallengesChainForward) {
  Transcript t("d");
  t.absorb("a", bytes_of("x"));
  const Digest32 c1 = t.challenge("c");
  const Digest32 c2 = t.challenge("c");
  EXPECT_NE(c1, c2);  // second challenge depends on the first

  // Replays agree on the whole sequence.
  Transcript t2("d");
  t2.absorb("a", bytes_of("x"));
  EXPECT_EQ(t2.challenge("c"), c1);
  EXPECT_EQ(t2.challenge("c"), c2);
}

TEST(Transcript, ChallengeAfterExtraAbsorbDiffers) {
  Transcript t1("d"), t2("d");
  t1.absorb("a", bytes_of("x"));
  t2.absorb("a", bytes_of("x"));
  t2.absorb("b", BytesView{});
  EXPECT_NE(t1.challenge("c"), t2.challenge("c"));
}

TEST(Transcript, IndexWithinBound) {
  Transcript t("d");
  t.absorb("seed", bytes_of("s"));
  for (u64 bound : {1ULL, 2ULL, 7ULL, 100ULL, 12345ULL}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_LT(t.challenge_index("q", bound), bound);
    }
  }
}

TEST(Transcript, IndexCoversRange) {
  Transcript t("d");
  std::set<u64> seen;
  for (int i = 0; i < 400; ++i) seen.insert(t.challenge_index("q", 8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Transcript, U64ChallengeDeterministic) {
  Transcript t1("d"), t2("d");
  t1.absorb_u64("n", 5);
  t2.absorb_u64("n", 5);
  EXPECT_EQ(t1.challenge_u64("c"), t2.challenge_u64("c"));
}

}  // namespace
}  // namespace zkt::crypto
