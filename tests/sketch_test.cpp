// Sketch tests: Count-Min guarantees (no underestimation, error bounds,
// merge semantics, serialization) and Space-Saving heavy-hitter guarantees,
// plus the verifiable sketch-query path.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/sketch_query.h"
#include "netflow/sketch.h"
#include "sim/workload.h"

namespace zkt::netflow {
namespace {

FlowKey key_of(u64 i) { return sim::synth_flow_key(i, 77); }

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch sketch(CountMinParams{.width = 128, .depth = 4, .seed = 1});
  std::map<u64, u64> truth;
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const u64 flow = rng.uniform(300);
    const u64 count = 1 + rng.uniform(5);
    sketch.update(key_of(flow), count);
    truth[flow] += count;
  }
  for (const auto& [flow, count] : truth) {
    EXPECT_GE(sketch.estimate(key_of(flow)), count) << flow;
  }
}

TEST(CountMin, ExactWhenSparse) {
  // Few flows in a wide sketch: estimates should be exact w.h.p.
  CountMinSketch sketch(CountMinParams{.width = 4096, .depth = 4, .seed = 2});
  for (u64 f = 0; f < 10; ++f) sketch.update(key_of(f), (f + 1) * 10);
  for (u64 f = 0; f < 10; ++f) {
    EXPECT_EQ(sketch.estimate(key_of(f)), (f + 1) * 10);
  }
  EXPECT_EQ(sketch.estimate(key_of(999)), 0u);
}

TEST(CountMin, ErrorBoundHolds) {
  // CM guarantee: estimate <= true + 2N/width with prob 1-(1/2)^depth; test
  // the aggregate bound loosely across many flows.
  const u32 width = 256;
  CountMinSketch sketch(CountMinParams{.width = width, .depth = 5, .seed = 3});
  std::map<u64, u64> truth;
  Xoshiro256 rng(6);
  u64 total = 0;
  for (int i = 0; i < 20'000; ++i) {
    const u64 flow = rng.uniform(2000);
    sketch.update(key_of(flow), 1);
    truth[flow] += 1;
    ++total;
  }
  const u64 bound = 4 * total / width;  // loose (2x the expected bound)
  u64 violations = 0;
  for (const auto& [flow, count] : truth) {
    if (sketch.estimate(key_of(flow)) > count + bound) ++violations;
  }
  EXPECT_LE(violations, truth.size() / 100);
}

TEST(CountMin, MergeEqualsCombinedStream) {
  const CountMinParams params{.width = 512, .depth = 4, .seed = 9};
  CountMinSketch a(params), b(params), combined(params);
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const u64 flow = rng.uniform(100);
    if (i % 2 == 0) a.update(key_of(flow), 1);
    else b.update(key_of(flow), 1);
    combined.update(key_of(flow), 1);
  }
  ASSERT_TRUE(a.merge(b).ok());
  EXPECT_EQ(a.total_updates(), combined.total_updates());
  EXPECT_EQ(a.hash(), combined.hash());
}

TEST(CountMin, MergeRejectsParamMismatch) {
  CountMinSketch a(CountMinParams{.width = 128, .depth = 4, .seed = 1});
  CountMinSketch b(CountMinParams{.width = 256, .depth = 4, .seed = 1});
  EXPECT_FALSE(a.merge(b).ok());
  CountMinSketch c(CountMinParams{.width = 128, .depth = 4, .seed = 2});
  EXPECT_FALSE(a.merge(c).ok());
}

TEST(CountMin, SerializationRoundTripAndHash) {
  CountMinSketch sketch(CountMinParams{.width = 64, .depth = 3, .seed = 4});
  for (u64 f = 0; f < 50; ++f) sketch.update(key_of(f), f);
  const Bytes wire = sketch.canonical_bytes();
  Reader r(wire);
  auto parsed = CountMinSketch::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(parsed.value().hash(), sketch.hash());
  EXPECT_EQ(parsed.value().estimate(key_of(30)), sketch.estimate(key_of(30)));

  // A counter flip changes the hash.
  CountMinSketch other(CountMinParams{.width = 64, .depth = 3, .seed = 4});
  for (u64 f = 0; f < 50; ++f) other.update(key_of(f), f);
  other.update(key_of(0), 1);
  EXPECT_NE(other.hash(), sketch.hash());
}

TEST(CountMin, DeserializeRejectsHugeDimensions) {
  Writer w;
  w.str("CMS1");
  w.u32v(1 << 20);
  w.u32v(1 << 10);
  w.u64v(0);
  w.u64v(0);
  Reader r(w.bytes());
  EXPECT_FALSE(CountMinSketch::deserialize(r).ok());
}

TEST(CountMin, CounterOverflowSaturates) {
  EXPECT_EQ(sat_add(~0ULL, 1), ~0ULL);
  EXPECT_EQ(sat_add(~0ULL - 3, 10), ~0ULL);
  EXPECT_EQ(sat_add(5, 7), 12u);

  // Repeated near-max updates pin the counters (and the total) at the
  // ceiling instead of wrapping — host and guest must agree on this.
  CountMinSketch sketch(CountMinParams{.width = 32, .depth = 2, .seed = 8});
  sketch.update(key_of(1), ~0ULL - 1);
  sketch.update(key_of(1), ~0ULL - 1);
  EXPECT_EQ(sketch.estimate(key_of(1)), ~0ULL);
  EXPECT_EQ(sketch.total_updates(), ~0ULL);

  // Merging two saturated sketches stays saturated.
  CountMinSketch other(CountMinParams{.width = 32, .depth = 2, .seed = 8});
  other.update(key_of(1), ~0ULL);
  ASSERT_TRUE(sketch.merge(other).ok());
  EXPECT_EQ(sketch.estimate(key_of(1)), ~0ULL);
  EXPECT_EQ(sketch.total_updates(), ~0ULL);
}

TEST(CountMin, MergeOfEmptySketchesIsIdentity) {
  const CountMinParams params{.width = 128, .depth = 4, .seed = 12};
  CountMinSketch empty_a(params), empty_b(params);
  const auto empty_hash = empty_a.hash();
  ASSERT_TRUE(empty_a.merge(empty_b).ok());
  EXPECT_EQ(empty_a.hash(), empty_hash);
  EXPECT_EQ(empty_a.total_updates(), 0u);

  // Empty is the merge identity on a populated sketch, in either order.
  CountMinSketch populated(params);
  for (u64 f = 0; f < 20; ++f) populated.update(key_of(f), f + 1);
  const auto populated_hash = populated.hash();
  ASSERT_TRUE(populated.merge(empty_b).ok());
  EXPECT_EQ(populated.hash(), populated_hash);
  CountMinSketch from_empty(params);
  for (u64 f = 0; f < 20; ++f) from_empty.update(key_of(f), f + 1);
  CountMinSketch lhs(params);
  ASSERT_TRUE(lhs.merge(from_empty).ok());
  EXPECT_EQ(lhs.hash(), populated_hash);
}

TEST(SpaceSaving, TracksExactWhenUnderCapacity) {
  SpaceSaving tracker(16);
  for (u64 f = 0; f < 10; ++f) tracker.update(key_of(f), f + 1);
  EXPECT_EQ(tracker.size(), 10u);
  for (u64 f = 0; f < 10; ++f) {
    auto entry = tracker.find(key_of(f));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->count, f + 1);
    EXPECT_EQ(entry->error, 0u);
  }
}

TEST(SpaceSaving, GuaranteesHeavyHitterRetention) {
  // A flow with >1/capacity of the total stream must be retained.
  SpaceSaving tracker(10);
  Xoshiro256 rng(8);
  const FlowKey elephant = key_of(9999);
  u64 elephant_count = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (i % 3 == 0) {
      tracker.update(elephant, 1);
      ++elephant_count;
    } else {
      tracker.update(key_of(rng.uniform(5000)), 1);
    }
  }
  auto entry = tracker.find(elephant);
  ASSERT_TRUE(entry.has_value());
  // Space-Saving overestimates: count >= truth, count - error <= truth.
  EXPECT_GE(entry->count, elephant_count);
  EXPECT_LE(entry->count - entry->error, elephant_count);

  auto hitters = tracker.heavy_hitters(tracker.total() / 10);
  ASSERT_FALSE(hitters.empty());
  EXPECT_EQ(hitters[0].key, elephant);
}

TEST(SpaceSaving, HeavyHittersSortedDescending) {
  SpaceSaving tracker(8);
  for (u64 f = 0; f < 5; ++f) tracker.update(key_of(f), (f + 1) * 100);
  auto hitters = tracker.heavy_hitters(100);
  ASSERT_EQ(hitters.size(), 5u);
  for (size_t i = 1; i < hitters.size(); ++i) {
    EXPECT_GE(hitters[i - 1].count, hitters[i].count);
  }
}

TEST(SpaceSaving, MergeRejectsCapacityMismatch) {
  SpaceSaving a(16), b(32);
  a.update(key_of(1), 5);
  b.update(key_of(2), 7);
  EXPECT_FALSE(a.merge(b).ok());
  // And the reject left `a` untouched.
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.find(key_of(1))->count, 5u);
}

TEST(SpaceSaving, MergeOfEmptyTrackersAndSaturation) {
  SpaceSaving empty_a(8), empty_b(8);
  ASSERT_TRUE(empty_a.merge(empty_b).ok());
  EXPECT_EQ(empty_a.size(), 0u);
  EXPECT_EQ(empty_a.total(), 0u);

  // Empty is the merge identity on a populated tracker.
  SpaceSaving populated(8);
  populated.update(key_of(1), 10);
  populated.update(key_of(2), 3);
  ASSERT_TRUE(populated.merge(empty_b).ok());
  EXPECT_EQ(populated.size(), 2u);
  EXPECT_EQ(populated.find(key_of(1))->count, 10u);

  // Counts saturate instead of wrapping when two huge trackers combine.
  SpaceSaving big_a(8), big_b(8);
  big_a.update(key_of(1), ~0ULL - 1);
  big_b.update(key_of(1), ~0ULL - 1);
  ASSERT_TRUE(big_a.merge(big_b).ok());
  EXPECT_EQ(big_a.find(key_of(1))->count, ~0ULL);
  EXPECT_EQ(big_a.total(), ~0ULL);
}

TEST(SpaceSaving, HeavyHittersZeroThresholdReturnsAllTracked) {
  SpaceSaving tracker(16);
  tracker.update(key_of(1), 9);
  tracker.update(key_of(2), 4);
  tracker.update(key_of(3), 4);
  const auto hits = tracker.heavy_hitters(0);
  ASSERT_EQ(hits.size(), 3u);
  // Canonical order: count descending, key ascending as the tiebreak.
  EXPECT_EQ(hits[0].count, 9u);
  EXPECT_EQ(hits[1].count, 4u);
  EXPECT_EQ(hits[2].count, 4u);
  EXPECT_LT(hits[1].key, hits[2].key);
}

TEST(RoundSketch, MergeRejectsParamsSwap) {
  SketchParams base;
  base.cm = {.width = 128, .depth = 4, .seed = 1};
  base.heavy_capacity = 16;
  SketchParams wrong_cm = base;
  wrong_cm.cm.seed = 2;
  SketchParams wrong_cap = base;
  wrong_cap.heavy_capacity = 32;

  RoundSketch a(base);
  a.update(key_of(1), 3);
  EXPECT_FALSE(a.merge(RoundSketch(wrong_cm)).ok());
  EXPECT_FALSE(a.merge(RoundSketch(wrong_cap)).ok());
  ASSERT_TRUE(a.merge(RoundSketch(base)).ok());
  EXPECT_EQ(a.total(), 3u);
}

}  // namespace
}  // namespace zkt::netflow

namespace zkt::core {
namespace {

using netflow::CountMinParams;
using netflow::CountMinSketch;
using netflow::FlowKey;

struct SketchFixture {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("sketch-q");
  CountMinSketch sketch{CountMinParams{.width = 256, .depth = 4, .seed = 11}};
  CommitmentRef ref;

  SketchFixture() {
    for (u64 f = 0; f < 100; ++f) {
      sketch.update(sim::synth_flow_key(f, 11), f + 1);
    }
    auto commitment = make_commitment_raw(0, 1, sketch.hash(),
                                          sketch.total_updates(), key, 5000);
    EXPECT_TRUE(commitment.ok());
    EXPECT_TRUE(board.publish(commitment.value()).ok());
    ref = CommitmentRef{0, 1, sketch.hash(), sketch.total_updates()};
  }
};

TEST(SketchQuery, ProveAndVerify) {
  SketchFixture fx;
  const FlowKey target = sim::synth_flow_key(42, 11);
  auto response = prove_sketch_query(fx.ref, fx.sketch, target);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().journal.estimate, fx.sketch.estimate(target));
  EXPECT_GE(response.value().journal.estimate, 43u);  // never underestimates

  auto verified =
      verify_sketch_query(response.value().receipt, fx.board, &target);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().estimate, fx.sketch.estimate(target));
}

TEST(SketchQuery, TamperedSketchFailsProving) {
  SketchFixture fx;
  CountMinSketch doctored = fx.sketch;
  doctored.update(sim::synth_flow_key(42, 11), 1);  // post-commitment edit
  auto response =
      prove_sketch_query(fx.ref, doctored, sim::synth_flow_key(42, 11));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, Errc::guest_abort);
}

TEST(SketchQuery, WrongKeyRejectedByVerifier) {
  SketchFixture fx;
  const FlowKey asked = sim::synth_flow_key(1, 11);
  const FlowKey other = sim::synth_flow_key(2, 11);
  auto response = prove_sketch_query(fx.ref, fx.sketch, other);
  ASSERT_TRUE(response.ok());
  auto verified = verify_sketch_query(response.value().receipt, fx.board,
                                      &asked);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::proof_invalid);
}

TEST(SketchQuery, UnpublishedCommitmentRejected) {
  SketchFixture fx;
  CommitmentBoard empty_board;
  auto response =
      prove_sketch_query(fx.ref, fx.sketch, sim::synth_flow_key(1, 11));
  ASSERT_TRUE(response.ok());
  auto verified =
      verify_sketch_query(response.value().receipt, empty_board, nullptr);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, Errc::commitment_missing);
}

TEST(SketchQuery, DoctoredEstimateRejected) {
  SketchFixture fx;
  const FlowKey target = sim::synth_flow_key(3, 11);
  auto response = prove_sketch_query(fx.ref, fx.sketch, target);
  ASSERT_TRUE(response.ok());
  auto forged = response.value().receipt;
  SketchQueryJournal j = response.value().journal;
  j.estimate /= 2;
  Writer w;
  j.write(w);
  forged.journal = std::move(w).take();
  EXPECT_FALSE(verify_sketch_query(forged, fx.board, &target).ok());
}

}  // namespace
}  // namespace zkt::core
