// Simulator tests: workload generators (statistical properties,
// determinism) and the multi-threaded router simulator (windows,
// commitments, store contents, v9 round-trip integrity).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "core/auditor.h"
#include "core/service.h"
#include "sim/crash.h"
#include "sim/simulator.h"

namespace zkt::sim {
namespace {

TEST(Workload, ZipfDeterministicPerSeed) {
  ZipfWorkloadConfig config;
  config.seed = 99;
  auto a = zipf_workload(config, 500);
  auto b = zipf_workload(config, 500);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].timestamp_ms, b[i].timestamp_ms);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
  config.seed = 100;
  auto c = zipf_workload(config, 500);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].key == c[i].key)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, ZipfTimestampsMonotoneWithinDuration) {
  ZipfWorkloadConfig config;
  config.start_ms = 1000;
  config.duration_ms = 10'000;
  auto packets = zipf_workload(config, 2000);
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].timestamp_ms, packets[i - 1].timestamp_ms);
  }
  EXPECT_GE(packets.front().timestamp_ms, 1000u);
}

TEST(Workload, ZipfIsHeavyTailed) {
  ZipfWorkloadConfig config;
  config.flow_count = 1000;
  config.zipf_s = 1.2;
  auto packets = zipf_workload(config, 20'000);
  std::map<netflow::FlowKey, u64> counts;
  for (const auto& pkt : packets) ++counts[pkt.key];
  u64 max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  // The most popular flow should take far more than a uniform 1/1000 share.
  EXPECT_GT(max_count, packets.size() / 100);
}

TEST(Workload, SlaClassesSeparated) {
  SlaWorkloadConfig config;
  config.flow_count = 100;
  config.violating_fraction = 0.2;
  config.compliant_rtt_us = 10'000;
  config.violating_rtt_us = 100'000;
  auto workload = sla_workload(config, 20'000);
  EXPECT_EQ(workload.compliant_flows + workload.violating_flows, 100u);
  EXPECT_EQ(workload.violating_flows, 20u);

  // Bucket packet RTTs: there must be clear mass near both means.
  u64 low = 0, high = 0;
  for (const auto& pkt : workload.packets) {
    if (pkt.rtt_us < 50'000) ++low;
    else ++high;
  }
  EXPECT_GT(low, workload.packets.size() / 2);
  EXPECT_GT(high, workload.packets.size() / 10);
}

TEST(Workload, NeutralityDiscriminationShiftsB) {
  NeutralityWorkloadConfig config;
  config.discriminate_b = true;
  auto workload = neutrality_workload(config, 20'000);
  double rtt_a = 0, rtt_b = 0;
  u64 n_a = 0, n_b = 0;
  for (const auto& pkt : workload.packets) {
    if ((pkt.key.dst_ip & 0xFFFF0000) == workload.provider_a_prefix) {
      rtt_a += pkt.rtt_us;
      ++n_a;
    } else {
      rtt_b += pkt.rtt_us;
      ++n_b;
    }
  }
  ASSERT_GT(n_a, 0u);
  ASSERT_GT(n_b, 0u);
  EXPECT_GT(rtt_b / n_b, rtt_a / n_a + 20'000);
}

TEST(Workload, SynthFlowKeyDeterministic) {
  EXPECT_EQ(synth_flow_key(5, 7), synth_flow_key(5, 7));
  EXPECT_FALSE(synth_flow_key(5, 7) == synth_flow_key(6, 7));
  EXPECT_FALSE(synth_flow_key(5, 7) == synth_flow_key(5, 8));
}

// ---------------------------------------------------------------------------
// Simulator

TEST(Simulator, PathsAreDeterministicAndSized) {
  store::LogStore logs;
  core::CommitmentBoard board;
  SimConfig config;
  config.router_count = 4;
  config.path_length = 2;
  NetFlowSimulator simulator(config, logs, board);
  const netflow::FlowKey key{1, 2, 3, 4, 6};
  const auto path = simulator.path_for(key);
  EXPECT_EQ(path.size(), 2u);
  EXPECT_EQ(path, simulator.path_for(key));
  for (u32 router : path) EXPECT_LT(router, 4u);
  EXPECT_NE(path[0], path[1]);
}

TEST(Simulator, CommitsEveryWindowWithSignedHashes) {
  store::LogStore logs;
  core::CommitmentBoard board;
  SimConfig config;
  config.router_count = 4;
  config.window_ms = 5000;
  NetFlowSimulator simulator(config, logs, board);

  ZipfWorkloadConfig workload;
  workload.flow_count = 50;
  workload.duration_ms = 12'000;  // ~3 windows
  ASSERT_TRUE(simulator.run(zipf_workload(workload, 5000)).ok());

  const auto windows = simulator.committed_windows();
  ASSERT_GE(windows.size(), 2u);
  for (u64 window : windows) {
    auto batches = simulator.batches_for_window(window);
    ASSERT_TRUE(batches.ok());
    ASSERT_FALSE(batches.value().empty());
    for (const auto& batch : batches.value()) {
      auto commitment = board.get(batch.router_id, window);
      ASSERT_TRUE(commitment.has_value())
          << "router " << batch.router_id << " window " << window;
      // The stored batch hashes to exactly the published commitment.
      EXPECT_EQ(batch.hash(), commitment->rlog_hash);
      EXPECT_EQ(batch.records.size(), commitment->record_count);
      EXPECT_TRUE(core::verify_commitment(*commitment).ok());
    }
  }
}

TEST(Simulator, PacketsReplicatedAcrossPath) {
  store::LogStore logs;
  core::CommitmentBoard board;
  SimConfig config;
  config.router_count = 4;
  config.path_length = 3;
  NetFlowSimulator simulator(config, logs, board);

  ZipfWorkloadConfig workload;
  workload.flow_count = 10;
  workload.duration_ms = 4000;
  const u64 n = 1000;
  ASSERT_TRUE(simulator.run(zipf_workload(workload, n)).ok());

  u64 total_observed = 0;
  for (const auto& stats : simulator.router_stats()) {
    total_observed += stats.packets;
  }
  EXPECT_EQ(total_observed, n * 3);
}

TEST(Simulator, V9WireTogglePreservesRecords) {
  // With and without the v9 wire, the committed batches must be identical
  // (the wire is lossless for our template).
  auto run_once = [](bool use_v9) {
    store::LogStore logs;
    core::CommitmentBoard board;
    SimConfig config;
    config.use_v9_wire = use_v9;
    config.key_seed = 5;
    NetFlowSimulator simulator(config, logs, board);
    ZipfWorkloadConfig workload;
    workload.flow_count = 30;
    workload.duration_ms = 6000;
    EXPECT_TRUE(simulator.run(zipf_workload(workload, 3000)).ok());
    std::vector<netflow::RLogBatch> all;
    for (u64 window : simulator.committed_windows()) {
      auto batches = simulator.batches_for_window(window);
      EXPECT_TRUE(batches.ok());
      for (auto& batch : batches.value()) all.push_back(std::move(batch));
    }
    return all;
  };
  const auto with_v9 = run_once(true);
  const auto without_v9 = run_once(false);
  ASSERT_EQ(with_v9.size(), without_v9.size());
  for (size_t i = 0; i < with_v9.size(); ++i) {
    EXPECT_EQ(with_v9[i].hash(), without_v9[i].hash()) << i;
  }
}

TEST(Simulator, EndToEndWithAggregationAndAudit) {
  store::LogStore logs;
  core::CommitmentBoard board;
  SimConfig config;
  config.router_count = 4;
  NetFlowSimulator simulator(config, logs, board);

  ZipfWorkloadConfig workload;
  workload.flow_count = 40;
  workload.duration_ms = 8000;
  ASSERT_TRUE(simulator.run(zipf_workload(workload, 4000)).ok());

  core::AggregationService service(board);
  core::Auditor auditor(board);
  for (u64 window : simulator.committed_windows()) {
    auto batches = simulator.batches_for_window(window);
    ASSERT_TRUE(batches.ok());
    auto round = service.aggregate(batches.value());
    ASSERT_TRUE(round.ok()) << round.error().to_string();
    ASSERT_TRUE(auditor.accept_round(round.value().receipt).ok());
  }
  EXPECT_GT(auditor.current_entry_count(), 0u);

  core::QueryService queries(service);
  auto resp = queries.run(core::Query::sum(core::QField::packets));
  ASSERT_TRUE(resp.ok());
  auto verified = auditor.verify_query(resp.value().receipt);
  ASSERT_TRUE(verified.ok());
  // Total delivered packets must not exceed total emitted × path length.
  EXPECT_GT(verified.value().result.sum, 0u);
}

TEST(Simulator, SingleRouterConfig) {
  store::LogStore logs;
  core::CommitmentBoard board;
  SimConfig config;
  config.router_count = 1;
  config.path_length = 3;  // clamped to 1
  NetFlowSimulator simulator(config, logs, board);
  EXPECT_EQ(simulator.path_for({1, 2, 3, 4, 6}).size(), 1u);
  ZipfWorkloadConfig workload;
  workload.duration_ms = 3000;
  ASSERT_TRUE(simulator.run(zipf_workload(workload, 500)).ok());
  EXPECT_GE(simulator.committed_windows().size(), 1u);
}

TEST(Simulator, EmptyWorkloadIsFine) {
  store::LogStore logs;
  core::CommitmentBoard board;
  NetFlowSimulator simulator(SimConfig{}, logs, board);
  EXPECT_TRUE(simulator.run({}).ok());
  EXPECT_TRUE(simulator.committed_windows().empty());
}

TEST(Simulator, CrashRestartScenarioRecoversChain) {
  const auto data_dir =
      std::filesystem::temp_directory_path() /
      ("zkt_crash_restart_" + std::to_string(::getpid()));
  std::filesystem::remove_all(data_dir);
  ASSERT_TRUE(std::filesystem::create_directories(data_dir));

  CrashRestartConfig config;
  config.data_dir = data_dir.string();
  config.sim.router_count = 2;
  config.sim.window_ms = 2'000;
  config.workload.duration_ms = 10'000;  // ~5 commitment windows
  config.packet_count = 800;
  config.crash_after_rounds = 2;
  config.pipeline.retry.base_backoff = std::chrono::milliseconds(1);
  config.pipeline.retry.max_backoff = std::chrono::milliseconds(2);

  auto report = run_crash_restart(config);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().windows_committed, 2u);
  EXPECT_EQ(report.value().rounds_before_crash, 2u);
  EXPECT_GE(report.value().truncated_frames, 1u);  // the torn frame
  EXPECT_TRUE(report.value().recovery.resumed);
  EXPECT_EQ(report.value().recovery.rounds_restored, 2u);
  EXPECT_GT(report.value().rounds_after_restart, 0u);
  EXPECT_EQ(report.value().receipts.size(),
            report.value().windows_committed);
  EXPECT_TRUE(report.value().chain_verified);

  std::filesystem::remove_all(data_dir);
}

}  // namespace
}  // namespace zkt::sim
