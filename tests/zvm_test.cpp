// zkVM tests: guest environment semantics, trace-row checking, prover/
// verifier round-trips, Fiat–Shamir binding, seal tampering, receipt
// serialization, and the assumption (receipt chaining) mechanism.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "zvm/env.h"
#include "zvm/image.h"
#include "zvm/prover.h"
#include "zvm/verifier.h"

namespace zkt::zvm {
namespace {

using crypto::Digest32;
using crypto::sha256;

// A test guest: reads two u64s and a blob, asserts a < b, hashes the blob,
// and commits results.
Status adder_guest(Env& env) {
  auto a = env.read_u64();
  if (!a.ok()) return a.error();
  auto b = env.read_u64();
  if (!b.ok()) return b.error();
  auto blob = env.read_blob();
  if (!blob.ok()) return blob.error();

  ZKT_TRY(env.assert_true(env.alu(AluOp::ltu, a.value(), b.value()) == 1,
                          "a < b"));
  const u64 sum = env.alu(AluOp::add, a.value(), b.value());
  const Digest32 digest = env.sha256(blob.value());
  env.commit_u64(sum);
  env.commit_digest(digest);
  return {};
}

ImageID register_adder() {
  static const ImageID id =
      ImageRegistry::instance().add("test.adder", 1, adder_guest);
  return id;
}

Bytes adder_input(u64 a, u64 b, std::string_view blob) {
  Writer w;
  w.u64v(a);
  w.u64v(b);
  w.blob(bytes_of(blob));
  return std::move(w).take();
}

// ---------------------------------------------------------------------------
// ALU semantics

struct AluCase {
  AluOp op;
  u64 a, b, expect;
};

class AluEval : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluEval, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(alu_eval(c.op, c.a, c.b), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluEval,
    ::testing::Values(
        AluCase{AluOp::add, 2, 3, 5}, AluCase{AluOp::add, ~0ULL, 1, 0},
        AluCase{AluOp::sub, 3, 5, ~0ULL - 1},
        AluCase{AluOp::mul, 1ULL << 32, 1ULL << 32, 0},
        AluCase{AluOp::divu, 17, 5, 3}, AluCase{AluOp::divu, 17, 0, 0},
        AluCase{AluOp::remu, 17, 5, 2}, AluCase{AluOp::remu, 17, 0, 17},
        AluCase{AluOp::and_, 0b1100, 0b1010, 0b1000},
        AluCase{AluOp::or_, 0b1100, 0b1010, 0b1110},
        AluCase{AluOp::xor_, 0b1100, 0b1010, 0b0110},
        AluCase{AluOp::shl, 1, 8, 256}, AluCase{AluOp::shl, 1, 64, 1},
        AluCase{AluOp::shr, 256, 8, 1}, AluCase{AluOp::shr, 1, 65, 0},
        AluCase{AluOp::eq, 7, 7, 1}, AluCase{AluOp::eq, 7, 8, 0},
        AluCase{AluOp::ltu, 7, 8, 1}, AluCase{AluOp::ltu, 8, 7, 0},
        AluCase{AluOp::ltu, 7, 7, 0}));

// ---------------------------------------------------------------------------
// Env semantics

TEST(Env, TracedSha256MatchesNative) {
  Env env({}, {});
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 200u}) {
    Bytes data(n, static_cast<u8>(n));
    EXPECT_EQ(env.sha256(data), sha256(data)) << n;
  }
}

TEST(Env, HashNodeMatchesMerkle) {
  Env env({}, {});
  const Digest32 a = sha256(std::string_view("a"));
  const Digest32 b = sha256(std::string_view("b"));
  EXPECT_EQ(env.hash_node(a, b), crypto::MerkleTree::hash_node(a, b));
  EXPECT_EQ(env.hash_leaf(bytes_of("x")),
            crypto::MerkleTree::hash_leaf(bytes_of("x")));
}

TEST(Env, CyclesCountRows) {
  Env env({}, {});
  EXPECT_EQ(env.cycles(), 0u);
  env.alu(AluOp::add, 1, 2);
  EXPECT_EQ(env.cycles(), 1u);
  env.sha256(Bytes(64, 0));  // 64 bytes -> 2 compressions
  EXPECT_EQ(env.cycles(), 3u);
}

TEST(Env, AssertFalseAborts) {
  Env env({}, {});
  const Status ok = env.assert_true(true, "fine");
  EXPECT_TRUE(ok.ok());
  const Status bad = env.assert_true(false, "nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), Errc::guest_abort);
}

TEST(Env, VerifyMerkleTracedAgreesWithNative) {
  std::vector<Digest32> leaves;
  for (int i = 0; i < 9; ++i) {
    leaves.push_back(crypto::MerkleTree::hash_leaf(as_bytes_view(i)));
  }
  crypto::MerkleTree tree(leaves);
  Env env({}, {});
  for (u64 i = 0; i < 9; ++i) {
    EXPECT_TRUE(env.verify_merkle(tree.root(), leaves[i], tree.prove(i)).ok());
  }
  // Wrong root aborts.
  Digest32 bad_root = tree.root();
  bad_root.bytes[5] ^= 1;
  EXPECT_FALSE(env.verify_merkle(bad_root, leaves[0], tree.prove(0)).ok());
}

TEST(Env, VerifyMerkleMultiTracedAgreesWithNative) {
  std::vector<Digest32> leaves;
  for (int i = 0; i < 11; ++i) {
    leaves.push_back(crypto::MerkleTree::hash_leaf(as_bytes_view(i)));
  }
  crypto::MerkleTree tree(leaves);
  const auto proof = tree.prove_multi(std::vector<u64>{1, 4, 5, 10});
  std::vector<std::pair<u64, Digest32>> opened;
  for (u64 i : proof.indices) opened.emplace_back(i, leaves[i]);

  Env env({}, {});
  EXPECT_TRUE(env.verify_merkle_multi(tree.root(), opened, proof).ok());
  EXPECT_GT(env.cycles(), 0u);

  // Wrong root aborts.
  Digest32 bad_root = tree.root();
  bad_root.bytes[0] ^= 1;
  Env env2({}, {});
  EXPECT_FALSE(env2.verify_merkle_multi(bad_root, opened, proof).ok());

  // Misaligned leaf set aborts.
  Env env3({}, {});
  auto shuffled = opened;
  std::swap(shuffled[0], shuffled[1]);
  EXPECT_FALSE(
      env3.verify_merkle_multi(tree.root(), shuffled, proof).ok());
}

TEST(Env, ReadPastEndFails) {
  Writer w;
  w.u64v(1);
  Env env(w.bytes(), {});
  EXPECT_TRUE(env.read_u64().ok());
  EXPECT_FALSE(env.read_u64().ok());
}

TEST(Env, JournalFraming) {
  Env env({}, {});
  env.commit_u64(7);
  env.commit_blob(bytes_of("abc"));
  env.commit_string("str");
  Reader r(env.journal());
  EXPECT_EQ(r.u64v().value(), 7u);
  EXPECT_EQ(r.blob().value(), bytes_of("abc"));
  EXPECT_EQ(r.str().value(), "str");
  EXPECT_TRUE(r.done());
}

// ---------------------------------------------------------------------------
// Trace rows

TEST(TraceRow, SerializationRoundTripAllKinds) {
  std::vector<TraceRow> rows;
  RowSha256 sha;
  sha.state_in = crypto::Sha256State::initial();
  sha.block.fill(0x42);
  sha.state_out = crypto::sha256_compress(sha.state_in, sha.block);
  rows.push_back(TraceRow{sha});
  rows.push_back(TraceRow{RowAlu{AluOp::mul, 6, 7, 42}});
  rows.push_back(TraceRow{RowAssert{1, sha256(std::string_view("ctx"))}});
  rows.push_back(TraceRow{RowAssertEqDigest{sha256(std::string_view("a")),
                                            sha256(std::string_view("a"))}});
  rows.push_back(
      TraceRow{RowBindDigest{BindTarget::journal, sha256(std::string_view("j"))}});
  rows.push_back(TraceRow{RowAssume{sha256(std::string_view("img")),
                                    sha256(std::string_view("claim"))}});

  for (const auto& row : rows) {
    Writer w;
    row.serialize(w);
    Reader r(w.bytes());
    auto parsed = TraceRow::deserialize(r);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(r.done());
    EXPECT_EQ(parsed.value().kind(), row.kind());
    EXPECT_EQ(parsed.value().leaf_digest(), row.leaf_digest());
    EXPECT_TRUE(parsed.value().check().ok());
  }
}

TEST(TraceRow, CheckCatchesBadSemantics) {
  RowSha256 sha;
  sha.state_in = crypto::Sha256State::initial();
  sha.block.fill(0);
  sha.state_out = sha.state_in;  // wrong
  EXPECT_FALSE(TraceRow{sha}.check().ok());

  const TraceRow bad_alu{RowAlu{AluOp::add, 2, 2, 5}};
  EXPECT_FALSE(bad_alu.check().ok());
  const TraceRow bad_assert{RowAssert{0, {}}};
  EXPECT_FALSE(bad_assert.check().ok());
  const TraceRow bad_eq{RowAssertEqDigest{sha256(std::string_view("a")),
                                          sha256(std::string_view("b"))}};
  EXPECT_FALSE(bad_eq.check().ok());
}

TEST(TraceRow, DeserializeRejectsGarbage) {
  const Bytes junk = {99};
  Reader r(junk);
  EXPECT_FALSE(TraceRow::deserialize(r).ok());
  Reader empty({});
  EXPECT_FALSE(TraceRow::deserialize(empty).ok());
}

// ---------------------------------------------------------------------------
// Prover / Verifier

TEST(ProveVerify, SucceedsAndBindsJournal) {
  Prover prover;
  Verifier verifier;
  ProveInfo info;
  auto receipt = prover.prove(register_adder(), adder_input(2, 40, "data"),
                              {}, &info);
  ASSERT_TRUE(receipt.ok()) << receipt.error().to_string();
  EXPECT_TRUE(verifier.verify(receipt.value(), register_adder()).ok());
  EXPECT_GT(info.cycles, 0u);
  EXPECT_EQ(info.cycles, receipt.value().claim.cycle_count);

  Reader r(receipt.value().journal);
  EXPECT_EQ(r.u64v().value(), 42u);
  Digest32 digest;
  ASSERT_TRUE(r.fixed(digest.bytes).ok());
  EXPECT_EQ(digest, sha256(std::string_view("data")));
}

TEST(ProveVerify, GuestAbortFailsProving) {
  Prover prover;
  auto receipt = prover.prove(register_adder(), adder_input(40, 2, "x"));
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.error().code, Errc::guest_abort);
}

TEST(ProveVerify, UnknownImageFails) {
  Prover prover;
  const ImageID bogus = compute_image_id("does.not.exist", 1);
  EXPECT_FALSE(prover.prove(bogus, {}).ok());
}

TEST(ProveVerify, WrongExpectedImageRejected) {
  Prover prover;
  Verifier verifier;
  auto receipt = prover.prove(register_adder(), adder_input(1, 2, "x"));
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(
      verifier.verify(receipt.value(), compute_image_id("other", 1)).ok());
}

class SealKinds : public ::testing::TestWithParam<SealKind> {};

TEST_P(SealKinds, TamperedJournalRejected) {
  Prover prover;
  Verifier verifier;
  ProveOptions options;
  options.seal_kind = GetParam();
  auto receipt = prover.prove(register_adder(), adder_input(1, 2, "x"),
                              options);
  ASSERT_TRUE(receipt.ok());
  auto tampered = receipt.value();
  tampered.journal[0] ^= 1;
  EXPECT_FALSE(verifier.verify(tampered, register_adder()).ok());
}

TEST_P(SealKinds, TamperedClaimRejected) {
  Prover prover;
  Verifier verifier;
  ProveOptions options;
  options.seal_kind = GetParam();
  auto receipt = prover.prove(register_adder(), adder_input(1, 2, "x"),
                              options);
  ASSERT_TRUE(receipt.ok());
  auto tampered = receipt.value();
  tampered.claim.input_digest.bytes[0] ^= 1;
  EXPECT_FALSE(verifier.verify(tampered, register_adder()).ok());
  auto tampered2 = receipt.value();
  tampered2.claim.cycle_count += 1;
  EXPECT_FALSE(verifier.verify(tampered2, register_adder()).ok());
}

TEST_P(SealKinds, ReceiptSerializationRoundTrip) {
  Prover prover;
  Verifier verifier;
  ProveOptions options;
  options.seal_kind = GetParam();
  auto receipt = prover.prove(register_adder(), adder_input(5, 6, "blob"),
                              options);
  ASSERT_TRUE(receipt.ok());
  const Bytes wire = receipt.value().to_bytes();
  auto parsed = Receipt::from_bytes(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(verifier.verify(parsed.value(), register_adder()).ok());
  EXPECT_EQ(parsed.value().claim.digest(), receipt.value().claim.digest());
  EXPECT_EQ(parsed.value().journal, receipt.value().journal);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SealKinds,
                         ::testing::Values(SealKind::composite,
                                           SealKind::succinct));

TEST(ProveVerify, SuccinctSealIsConstantSize) {
  Prover prover;
  for (int blob_size : {10, 1000, 50'000}) {
    auto receipt = prover.prove(
        register_adder(), adder_input(1, 2, std::string(blob_size, 'x')));
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(receipt.value().proof_size_bytes(), kSuccinctSealSize);
  }
}

TEST(ProveVerify, SuccinctSealByteFlipsRejected) {
  Prover prover;
  Verifier verifier;
  auto receipt = prover.prove(register_adder(), adder_input(1, 2, "x"));
  ASSERT_TRUE(receipt.ok());
  for (size_t i = 0; i < kSuccinctSealSize; i += 17) {
    auto tampered = receipt.value();
    tampered.succinct.bytes[i] ^= 1;
    EXPECT_FALSE(verifier.verify(tampered, register_adder()).ok())
        << "byte " << i;
  }
}

TEST(ProveVerify, CompositeOpeningTamperRejected) {
  Prover prover;
  Verifier verifier;
  ProveOptions options;
  options.seal_kind = SealKind::composite;
  auto receipt = prover.prove(register_adder(), adder_input(1, 2, "payload"),
                              options);
  ASSERT_TRUE(receipt.ok());
  ASSERT_EQ(receipt.value().composite.segments.size(), 1u);
  ASSERT_FALSE(receipt.value().composite.segments[0].openings.empty());

  // Tamper with an opened row's bytes.
  auto t1 = receipt.value();
  t1.composite.segments[0].openings[0].row_bytes[1] ^= 1;
  EXPECT_FALSE(verifier.verify(t1, register_adder()).ok());

  // Tamper with the trace root.
  auto t2 = receipt.value();
  t2.composite.segments[0].trace_root.bytes[0] ^= 1;
  EXPECT_FALSE(verifier.verify(t2, register_adder()).ok());

  // Claim a different row count.
  auto t3 = receipt.value();
  t3.composite.segments[0].row_count += 1;
  EXPECT_FALSE(verifier.verify(t3, register_adder()).ok());

  // Drop an opening.
  auto t4 = receipt.value();
  t4.composite.segments[0].openings.pop_back();
  EXPECT_FALSE(verifier.verify(t4, register_adder()).ok());

  // Drop a whole segment (with a multi-segment receipt).
  ProveOptions small_segments = options;
  small_segments.max_segment_rows = 4;
  auto multi = prover.prove(register_adder(), adder_input(1, 2, "payload"),
                            small_segments);
  ASSERT_TRUE(multi.ok());
  ASSERT_GT(multi.value().composite.segments.size(), 1u);
  EXPECT_TRUE(verifier.verify(multi.value(), register_adder()).ok());
  auto t5 = multi.value();
  t5.composite.segments.pop_back();
  EXPECT_FALSE(verifier.verify(t5, register_adder()).ok());

  // Swap two segments.
  auto t6 = multi.value();
  std::swap(t6.composite.segments[0], t6.composite.segments[1]);
  EXPECT_FALSE(verifier.verify(t6, register_adder()).ok());
}

TEST(Segments, SegmentedProofsVerifyAndMatchUnsegmented) {
  Prover prover;
  Verifier verifier;
  const Bytes input = adder_input(3, 5, std::string(500, 'q'));

  ProveOptions one_segment;
  one_segment.seal_kind = SealKind::composite;
  auto whole = prover.prove(register_adder(), input, one_segment);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.value().composite.segments.size(), 1u);

  for (u64 max_rows : {1ULL, 3ULL, 8ULL, 64ULL}) {
    ProveOptions options;
    options.seal_kind = SealKind::composite;
    options.max_segment_rows = max_rows;
    ProveInfo info;
    auto receipt = prover.prove(register_adder(), input, options, &info);
    ASSERT_TRUE(receipt.ok()) << max_rows;
    const u64 expect_segments =
        (info.cycles + max_rows - 1) / max_rows;
    EXPECT_EQ(info.segments, expect_segments);
    EXPECT_EQ(receipt.value().composite.segments.size(), expect_segments);
    EXPECT_TRUE(verifier.verify(receipt.value(), register_adder()).ok())
        << max_rows;
    // Same claim regardless of segmentation.
    EXPECT_EQ(receipt.value().claim.digest(), whole.value().claim.digest());
  }
}

TEST(Segments, SuccinctWrapCoversSegmentedSeal) {
  Prover prover;
  Verifier verifier;
  ProveOptions options;
  options.seal_kind = SealKind::succinct;
  options.max_segment_rows = 8;
  auto receipt = prover.prove(register_adder(),
                              adder_input(1, 2, std::string(300, 'z')),
                              options);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.value().proof_size_bytes(), kSuccinctSealSize);
  EXPECT_TRUE(verifier.verify(receipt.value(), register_adder()).ok());
}

TEST(ProveVerify, SmallTraceOpensEverything) {
  // A guest with fewer rows than num_queries: all rows opened, still valid.
  static const ImageID tiny = ImageRegistry::instance().add(
      "test.tiny", 1, [](Env& env) -> Status {
        env.commit_u64(env.alu(AluOp::add, 1, 1));
        return {};
      });
  Prover prover;
  Verifier verifier;
  ProveOptions options;
  options.seal_kind = SealKind::composite;
  options.num_queries = 1000;
  auto receipt = prover.prove(tiny, {}, options);
  ASSERT_TRUE(receipt.ok());
  ASSERT_EQ(receipt.value().composite.segments.size(), 1u);
  EXPECT_EQ(receipt.value().composite.segments[0].openings.size(),
            receipt.value().composite.segments[0].row_count);
  EXPECT_TRUE(verifier.verify(receipt.value(), tiny).ok());
}

TEST(QueryIndices, DeterministicAndDistinct) {
  const Digest32 claim = sha256(std::string_view("claim"));
  const Digest32 roots = sha256(std::string_view("roots"));
  const Digest32 root = sha256(std::string_view("root"));
  const auto a = derive_query_indices(claim, roots, 0, root, 1000, 32);
  const auto b = derive_query_indices(claim, roots, 0, root, 1000, 32);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u);
  std::set<u64> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
  for (u64 idx : a) EXPECT_LT(idx, 1000u);

  // Any change to the binding context changes the indices.
  EXPECT_NE(a, derive_query_indices(claim, roots, 0,
                                    sha256(std::string_view("r2")), 1000, 32));
  EXPECT_NE(a, derive_query_indices(claim, roots, 1, root, 1000, 32));
  EXPECT_NE(a, derive_query_indices(claim, sha256(std::string_view("other")),
                                    0, root, 1000, 32));
}

// ---------------------------------------------------------------------------
// Assumptions (receipt chaining)

Status chained_guest(Env& env) {
  auto image = env.read_digest();
  if (!image.ok()) return image.error();
  auto claim = env.read_digest();
  if (!claim.ok()) return claim.error();
  ZKT_TRY(env.verify_assumption(image.value(), claim.value()));
  env.commit_digest(claim.value());
  return {};
}

ImageID register_chained() {
  static const ImageID id =
      ImageRegistry::instance().add("test.chained", 1, chained_guest);
  return id;
}

TEST(Assumptions, ProveWithInnerReceipt) {
  Prover prover;
  Verifier verifier;
  auto inner = prover.prove(register_adder(), adder_input(1, 2, "inner"));
  ASSERT_TRUE(inner.ok());

  Writer w;
  w.fixed(register_adder().bytes);
  w.fixed(inner.value().claim.digest().bytes);
  ProveOptions options;
  options.assumptions.push_back(inner.value());
  auto outer = prover.prove(register_chained(), w.bytes(), options);
  ASSERT_TRUE(outer.ok()) << outer.error().to_string();
  EXPECT_EQ(outer.value().claim.assumptions.size(), 1u);
  EXPECT_TRUE(verifier.verify(outer.value(), register_chained()).ok());
}

TEST(Assumptions, MissingInnerReceiptFailsProving) {
  Prover prover;
  Writer w;
  w.fixed(register_adder().bytes);
  w.fixed(sha256(std::string_view("no such claim")).bytes);
  auto outer = prover.prove(register_chained(), w.bytes(), {});
  EXPECT_FALSE(outer.ok());
}

TEST(Assumptions, CompositeEmbedsAndChecksInner) {
  Prover prover;
  Verifier verifier;
  auto inner = prover.prove(register_adder(), adder_input(1, 2, "inner"));
  ASSERT_TRUE(inner.ok());

  Writer w;
  w.fixed(register_adder().bytes);
  w.fixed(inner.value().claim.digest().bytes);
  ProveOptions options;
  options.seal_kind = SealKind::composite;
  options.assumptions.push_back(inner.value());
  auto outer = prover.prove(register_chained(), w.bytes(), options);
  ASSERT_TRUE(outer.ok());
  ASSERT_EQ(outer.value().assumption_receipts.size(), 1u);
  EXPECT_TRUE(verifier.verify(outer.value(), register_chained()).ok());

  // Removing the embedded inner receipt breaks verification.
  auto stripped = outer.value();
  stripped.assumption_receipts.clear();
  EXPECT_FALSE(verifier.verify(stripped, register_chained()).ok());
}

TEST(Assumptions, InvalidInnerReceiptRejectedAtProveTime) {
  Prover prover;
  auto inner = prover.prove(register_adder(), adder_input(1, 2, "inner"));
  ASSERT_TRUE(inner.ok());
  auto corrupted = inner.value();
  corrupted.journal[0] ^= 1;

  Writer w;
  w.fixed(register_adder().bytes);
  w.fixed(corrupted.claim.digest().bytes);
  ProveOptions options;
  options.assumptions.push_back(corrupted);
  EXPECT_FALSE(prover.prove(register_chained(), w.bytes(), options).ok());
}

// ---------------------------------------------------------------------------
// Images

TEST(Images, IdsAreStableAndDistinct) {
  EXPECT_EQ(compute_image_id("a", 1), compute_image_id("a", 1));
  EXPECT_NE(compute_image_id("a", 1), compute_image_id("a", 2));
  EXPECT_NE(compute_image_id("a", 1), compute_image_id("b", 1));
}

TEST(Images, RegistryFinds) {
  const ImageID id = register_adder();
  const Image* image = ImageRegistry::instance().find(id);
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(image->name, "test.adder");
  EXPECT_EQ(ImageRegistry::instance().find(compute_image_id("nope", 9)),
            nullptr);
}

}  // namespace
}  // namespace zkt::zvm
