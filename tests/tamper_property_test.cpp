// Property tests for the paper's central security claim (§5): ANY
// modification of committed data — a single bit flip anywhere in an RLog
// batch, any byte of a receipt, any entry of the aggregated state — must
// make proof generation or verification fail.
#include <gtest/gtest.h>

#include "core/auditor.h"
#include "core/service.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

RLogBatch build_batch(u32 router, u64 window, u32 flows) {
  RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  for (u32 f = 0; f < flows; ++f) {
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {0x0A000000 + f, 0x09090909, static_cast<u16>(1000 + f), 443, 6};
    pkt.timestamp_ms = window * 5000 + f;
    pkt.bytes = 500 + f;
    pkt.hop_count = static_cast<u8>(f % 16);
    pkt.rtt_us = 10'000 + f * 100;
    record.observe(pkt);
    batch.records.push_back(std::move(record));
  }
  return batch;
}

// Flip one bit of the serialized batch, re-deserialize, and attempt an
// aggregation against the original commitment. Either deserialization
// rejects it or the guest's hash check aborts proving. (Parameterized over
// byte positions spread through the buffer.)
class BatchBitFlips : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchBitFlips, AnyFlipIsDetected) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("bitflip");
  RLogBatch batch = build_batch(0, 1, 10);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 5000).value()).ok());

  Bytes wire = batch.canonical_bytes();
  const size_t pos = GetParam() % wire.size();
  wire[pos] ^= 0x01;

  Reader r(wire);
  auto tampered = RLogBatch::deserialize(r);
  if (!tampered.ok() || !r.done()) {
    SUCCEED() << "flip broke framing, rejected at parse";
    return;
  }
  AggregationService service(board);
  auto round = service.aggregate({std::move(tampered.value())});
  if (round.ok()) {
    // The only acceptable success: the flip did not survive canonical
    // re-serialization (e.g. a non-canonical varint), so the data equals the
    // committed original.
    EXPECT_EQ(tampered.value().canonical_bytes(), batch.canonical_bytes());
  } else {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Positions, BatchBitFlips,
                         ::testing::Values(0, 1, 3, 7, 17, 43, 101, 211, 307,
                                           401, 503, 601, 701, 797, 887, 997));

// Flip one byte of the serialized aggregation receipt: parsing or
// verification must fail (or the byte is outside any checked field AND the
// re-serialized receipt is identical — impossible for a canonical format,
// but we assert it explicitly).
class ReceiptByteFlips : public ::testing::TestWithParam<size_t> {};

TEST_P(ReceiptByteFlips, AnyFlipIsDetected) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("receiptflip");
  RLogBatch batch = build_batch(0, 1, 6);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 5000).value()).ok());
  AggregationService service(board);
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());

  Bytes wire = round.value().receipt.to_bytes();
  const size_t pos = GetParam() % wire.size();
  wire[pos] ^= 0x01;

  auto parsed = zvm::Receipt::from_bytes(wire);
  if (!parsed.ok()) {
    SUCCEED() << "rejected at parse";
    return;
  }
  Auditor auditor(board);
  auto accepted = auditor.accept_round(parsed.value());
  if (accepted.ok()) {
    // Only acceptable if the flip round-tripped to identical bytes (a
    // non-canonical encoding that reparses to the same receipt).
    EXPECT_EQ(parsed.value().to_bytes(), round.value().receipt.to_bytes());
  } else {
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Positions, ReceiptByteFlips,
                         ::testing::Values(0, 2, 5, 11, 23, 47, 97, 193, 389,
                                           761, 1021, 1531));

// Tampering with the prover's CLog state between rounds: the next round's
// guest recomputes the previous root from the supplied entries and aborts.
TEST(StateTamper, ModifiedHostStateBreaksNextRound) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("stateflip");
  AggregationService service(board);
  auto batch1 = build_batch(0, 1, 5);
  ASSERT_TRUE(board.publish(make_commitment(batch1, key, 5000).value()).ok());
  ASSERT_TRUE(service.aggregate({batch1}).ok());

  // The provider "loses" its state and substitutes doctored entries by
  // constructing a fresh service with a different history, then tries to
  // continue the old chain by replaying the old receipt as its assumption.
  auto batch2 = build_batch(0, 2, 5);
  ASSERT_TRUE(board.publish(make_commitment(batch2, key, 10000).value()).ok());

  AggregateInput input;
  input.has_prev = true;
  input.prev_claim_digest = service.last_claim_digest().value();
  input.prev_root = service.state().root();
  input.prev_entries = service.state().entry_bytes();
  // Tamper: inflate a counter in entry 0 (root no longer matches entries).
  {
    Reader r(input.prev_entries[0]);
    auto entry = FlowRecord::deserialize(r).value();
    entry.packets += 1000;
    input.prev_entries[0] = entry.canonical_bytes();
  }
  CommitmentRef ref;
  ref.router_id = 0;
  ref.window_id = 2;
  ref.rlog_hash = batch2.hash();
  ref.record_count = batch2.records.size();
  input.batches.emplace_back(ref, batch2.canonical_bytes());

  zvm::ProveOptions options;
  options.assumptions.push_back(service.last_receipt());
  zvm::Prover prover;
  auto receipt = prover.prove(guest_images().aggregate, input.to_bytes(),
                              options);
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.error().code, Errc::guest_abort);
}

// Feeding a different batch than committed (same size, different content).
TEST(StateTamper, SubstitutedBatchDetected) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("substitution");
  auto real = build_batch(0, 1, 8);
  ASSERT_TRUE(board.publish(make_commitment(real, key, 5000).value()).ok());

  auto fake = build_batch(0, 1, 8);
  fake.records[3].rtt_sum_us /= 2;  // the lie

  AggregationService service(board);
  auto round = service.aggregate({fake});
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.error().code, Errc::guest_abort);
}

// The selective query guest must reject non-matching opened entries and
// double-opened entries, which a dishonest prover could otherwise use to
// skew aggregates.
TEST(QueryTamper, SelectiveCannotIncludeNonMatchingEntry) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("sel-nonmatch");
  auto batch = build_batch(0, 1, 6);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 5000).value()).ok());
  AggregationService service(board);
  ASSERT_TRUE(service.aggregate({batch}).ok());

  // Query matching ~half the entries.
  const Query q = Query::sum(QField::bytes)
                      .and_where(QField::src_port, CmpOp::lt, 1003);
  SelectiveQueryInput input;
  input.agg_claim = service.last_receipt().claim;
  input.agg_journal = service.last_receipt().journal;
  input.query = q;
  // Open ALL entries, including non-matching ones.
  std::vector<u64> indices;
  for (u64 i = 0; i < service.state().entry_count(); ++i) {
    SelectiveQueryInput::OpenedEntry opened;
    opened.index = i;
    opened.entry = service.state().entry(i).canonical_bytes();
    input.opened.push_back(std::move(opened));
    indices.push_back(i);
  }
  input.proof = service.state().prove_multi(indices);
  zvm::ProveOptions options;
  options.assumptions.push_back(service.last_receipt());
  zvm::Prover prover;
  auto receipt = prover.prove(guest_images().query_selective,
                              input.to_bytes(), options);
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.error().code, Errc::guest_abort);
}

TEST(QueryTamper, SelectiveCannotDoubleCount) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("sel-double");
  auto batch = build_batch(0, 1, 4);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 5000).value()).ok());
  AggregationService service(board);
  ASSERT_TRUE(service.aggregate({batch}).ok());

  const Query q = Query::sum(QField::bytes);
  SelectiveQueryInput input;
  input.agg_claim = service.last_receipt().claim;
  input.agg_journal = service.last_receipt().journal;
  input.query = q;
  for (int dup = 0; dup < 2; ++dup) {
    SelectiveQueryInput::OpenedEntry opened;
    opened.index = 0;
    opened.entry = service.state().entry(0).canonical_bytes();
    input.opened.push_back(std::move(opened));
  }
  // A multiproof cannot even express a duplicated index (it deduplicates);
  // the guest's alignment/ascension asserts must catch the mismatch.
  input.proof = service.state().prove_multi(std::vector<u64>{0});
  zvm::ProveOptions options;
  options.assumptions.push_back(service.last_receipt());
  zvm::Prover prover;
  auto receipt = prover.prove(guest_images().query_selective,
                              input.to_bytes(), options);
  ASSERT_FALSE(receipt.ok());
}

TEST(QueryTamper, SelectiveCannotUseForeignEntry) {
  // Opening an entry (with a valid-looking proof) from a DIFFERENT state
  // must fail the Merkle check against the queried root.
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("sel-foreign");
  auto batch = build_batch(0, 1, 4);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 5000).value()).ok());
  AggregationService service(board);
  ASSERT_TRUE(service.aggregate({batch}).ok());

  // A second, unrelated state with different counters.
  CLogState foreign;
  auto other = build_batch(0, 9, 4);
  other.records[0].bytes *= 100;
  foreign.apply_records(other.records);

  const Query q = Query::sum(QField::bytes);
  SelectiveQueryInput input;
  input.agg_claim = service.last_receipt().claim;
  input.agg_journal = service.last_receipt().journal;
  input.query = q;
  SelectiveQueryInput::OpenedEntry opened;
  opened.index = 0;
  opened.entry = foreign.entry(0).canonical_bytes();
  input.opened.push_back(std::move(opened));
  input.proof = foreign.prove_multi(std::vector<u64>{0});

  zvm::ProveOptions options;
  options.assumptions.push_back(service.last_receipt());
  zvm::Prover prover;
  auto receipt = prover.prove(guest_images().query_selective,
                              input.to_bytes(), options);
  ASSERT_FALSE(receipt.ok());
}

}  // namespace
}  // namespace zkt::core
