// Flow-cache tests: accumulation, active/inactive timeout expiry, flush,
// and emergency expiration under capacity pressure.
#include <gtest/gtest.h>

#include "netflow/cache.h"

namespace zkt::netflow {
namespace {

PacketObservation pkt_at(u32 src, u64 ts_ms, u32 bytes = 100) {
  PacketObservation pkt;
  pkt.key = {src, 0x09090909, 1234, 443, 6};
  pkt.timestamp_ms = ts_ms;
  pkt.bytes = bytes;
  return pkt;
}

TEST(FlowCache, AccumulatesPerFlow) {
  FlowCache cache;
  EXPECT_TRUE(cache.observe(pkt_at(1, 100)).empty());
  EXPECT_TRUE(cache.observe(pkt_at(1, 200)).empty());
  EXPECT_TRUE(cache.observe(pkt_at(2, 300)).empty());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().packets_observed, 3u);
  EXPECT_EQ(cache.stats().flows_created, 2u);

  auto all = cache.flush();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(cache.size(), 0u);
  for (const auto& rec : all) {
    if (rec.key.src_ip == 1) {
      EXPECT_EQ(rec.packets, 2u);
    }
    if (rec.key.src_ip == 2) {
      EXPECT_EQ(rec.packets, 1u);
    }
  }
}

TEST(FlowCache, InactiveTimeoutExpires) {
  FlowCacheConfig config;
  config.inactive_timeout_ms = 1000;
  config.active_timeout_ms = 1'000'000;
  FlowCache cache(config);
  cache.observe(pkt_at(1, 0));
  cache.observe(pkt_at(2, 900));

  // At t=1500, flow 1 (idle since 0) expires; flow 2 (idle since 900) stays.
  auto expired = cache.expire(1500);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].key.src_ip, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().inactive_timeouts, 1u);
}

TEST(FlowCache, ActiveTimeoutExpiresLongFlows) {
  FlowCacheConfig config;
  config.inactive_timeout_ms = 1'000'000;
  config.active_timeout_ms = 5'000;
  FlowCache cache(config);
  // Keep a flow continuously active past the active timeout.
  for (u64 t = 0; t <= 6000; t += 100) cache.observe(pkt_at(1, t));
  auto expired = cache.expire(6000);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(cache.stats().active_timeouts, 1u);
  EXPECT_EQ(expired[0].packets, 61u);
}

TEST(FlowCache, ExpireKeepsFreshFlows) {
  FlowCache cache;
  cache.observe(pkt_at(1, 1000));
  EXPECT_TRUE(cache.expire(1001).empty());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FlowCache, EmergencyExpirationAtCapacity) {
  FlowCacheConfig config;
  config.max_entries = 16;
  FlowCache cache(config);
  std::vector<FlowRecord> evicted;
  for (u32 i = 0; i < 40; ++i) {
    auto out = cache.observe(pkt_at(i + 1, i * 10));
    for (auto& rec : out) evicted.push_back(std::move(rec));
  }
  EXPECT_LE(cache.size(), 16u);
  EXPECT_FALSE(evicted.empty());
  EXPECT_GT(cache.stats().emergency_expirations, 0u);
  // Evicted + resident covers every created flow exactly once.
  EXPECT_EQ(evicted.size() + cache.size(), 40u);
}

TEST(FlowCache, EvictsOldestFirst) {
  FlowCacheConfig config;
  config.max_entries = 8;
  FlowCache cache(config);
  for (u32 i = 0; i < 8; ++i) cache.observe(pkt_at(i + 1, i));
  // Inserting a 9th flow evicts the oldest eighth (1 entry): flow 1 (ts 0).
  auto evicted = cache.observe(pkt_at(100, 1000));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key.src_ip, 1u);
}

TEST(FlowCache, FlushIsComplete) {
  FlowCache cache;
  for (u32 i = 0; i < 10; ++i) cache.observe(pkt_at(i, 0));
  EXPECT_EQ(cache.flush().size(), 10u);
  EXPECT_TRUE(cache.flush().empty());
}

}  // namespace
}  // namespace zkt::netflow
