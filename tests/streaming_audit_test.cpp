// Batch/streaming verifier tests: BatchVerifier and Auditor::accept_rounds/
// audit must make byte-for-byte the same accept/reject decisions as the
// sequential accept_round walk — across mixed full+incremental chains,
// SHA-256 backends, pool shapes, and corrupted receipt files — while the
// streaming path holds only one window of receipts resident.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "core/auditor.h"
#include "core/batch_verifier.h"
#include "core/io.h"
#include "core/service.h"
#include "crypto/sha256_backend.h"
#include "store/fault.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

struct Pipeline {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("stream-t");
  AggregationService service;
  u64 next_window = 1;

  explicit Pipeline(AggregationOptions options = {})
      : service(board, std::move(options)) {}

  RLogBatch make_batch(std::vector<std::pair<u32, u64>> flows) {
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = next_window++;
    for (auto [src, packets] : flows) {
      FlowRecord record;
      for (u64 i = 0; i < packets; ++i) {
        PacketObservation pkt;
        pkt.key = {src, 0x09090909, 1000, 443, 6};
        pkt.timestamp_ms = batch.window_id * 5000 + i;
        pkt.bytes = 100;
        pkt.hop_count = 4;
        record.observe(pkt);
      }
      batch.records.push_back(std::move(record));
    }
    EXPECT_TRUE(board
                    .publish(make_commitment(batch, key,
                                             batch.window_id * 5000)
                                 .value())
                    .ok());
    return batch;
  }

  zvm::Receipt round(std::vector<std::pair<u32, u64>> flows) {
    auto r = service.aggregate({make_batch(std::move(flows))});
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
    return std::move(r.value().receipt);
  }

  /// A chain mixing guest kinds when the service mode allows it: genesis is
  /// always a full rebuild, later rounds follow the configured AggMode.
  std::vector<zvm::Receipt> chain(size_t rounds) {
    std::vector<zvm::Receipt> receipts;
    for (size_t i = 0; i < rounds; ++i) {
      receipts.push_back(
          round({{static_cast<u32>(i % 3 + 1), i + 2}, {7, 1}}));
    }
    return receipts;
  }
};

AggregationOptions incremental_mode() {
  AggregationOptions options;
  options.mode = AggMode::incremental;
  return options;
}

class StreamingAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("zkt_stream_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

/// Heads must match field by field.
void expect_same_head(const ChainHead& a, const ChainHead& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.claim_digest, b.claim_digest);
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.entry_count, b.entry_count);
}

// ---------------------------------------------------------------------------
// Batch vs sequential equivalence.

TEST_F(StreamingAuditTest, BatchMatchesSequentialOnMixedChain) {
  // Incremental mode makes round 0 a full rebuild and later rounds AGGI
  // deltas — the chain mixes both guest kinds. Composite seals so each
  // round embeds its predecessor receipt (succinct seals carry assumption
  // digests only, with nothing to dedup).
  AggregationOptions options = incremental_mode();
  options.prove_options.seal_kind = zvm::SealKind::composite;
  Pipeline p(std::move(options));
  const auto receipts = p.chain(5);
  ASSERT_NE(receipts[0].claim.image_id, receipts[2].claim.image_id);

  Auditor sequential(p.board);
  for (const auto& receipt : receipts) {
    ASSERT_TRUE(sequential.accept_round(receipt).ok());
  }

  Auditor batched(p.board);
  zvm::VerifyStats stats;
  auto accepted = batched.accept_rounds(receipts, &stats);
  ASSERT_TRUE(accepted.ok()) << accepted.error().to_string();
  EXPECT_EQ(accepted.value(), 5u);
  expect_same_head(sequential.head(), batched.head());
  // Every non-genesis round embeds its predecessor as an assumption
  // receipt; the batch resolves those from the predecessor lane instead of
  // re-verifying.
  EXPECT_EQ(stats.assumptions_skipped, 4u);
}

TEST_F(StreamingAuditTest, PooledBatchMatchesSerialBatch) {
  Pipeline p;
  const auto receipts = p.chain(6);

  common::ThreadPool pool(common::ThreadPool::Options{.threads = 4});
  AuditorOptions pooled_options;
  pooled_options.batch.pool = &pool;
  Auditor pooled(p.board, pooled_options);

  AuditorOptions serial_options;
  serial_options.batch.parallel = false;
  Auditor serial(p.board, serial_options);

  auto a = pooled.accept_rounds(receipts);
  auto b = serial.accept_rounds(receipts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  expect_same_head(pooled.head(), serial.head());
}

TEST_F(StreamingAuditTest, TamperedMiddleReceiptSameDecisionEverywhere) {
  Pipeline p;
  auto receipts = p.chain(5);
  // Rewrite round 2's journal: the claim's journal digest no longer
  // matches, so verification (not chaining) must reject it.
  receipts[2].journal.push_back(0x5a);

  Auditor sequential(p.board);
  Status seq_error;
  size_t seq_accepted = 0;
  for (const auto& receipt : receipts) {
    auto accepted = sequential.accept_round(receipt);
    if (!accepted.ok()) {
      seq_error = accepted.error();
      break;
    }
    ++seq_accepted;
  }
  ASSERT_FALSE(seq_error.ok());
  EXPECT_EQ(seq_accepted, 2u);

  Auditor batched(p.board);
  auto batch_result = batched.accept_rounds(receipts);
  ASSERT_FALSE(batch_result.ok());
  EXPECT_EQ(batch_result.error().code, seq_error.error().code);
  EXPECT_EQ(batch_result.error().message, seq_error.error().message);
  EXPECT_EQ(batched.rounds_accepted(), 2u);
  expect_same_head(sequential.head(), batched.head());
}

TEST_F(StreamingAuditTest, BatchEquivalentAcrossBackends) {
  Pipeline p(incremental_mode());
  const auto receipts = p.chain(4);
  ChainHead reference{};
  bool have_reference = false;
  for (u8 b = 0; b < crypto::kSha256BackendCount; ++b) {
    const auto backend = static_cast<crypto::Sha256Backend>(b);
    if (!crypto::sha256_force_backend(backend)) continue;
    Auditor auditor(p.board);
    auto accepted = auditor.accept_rounds(receipts);
    ASSERT_TRUE(accepted.ok())
        << crypto::sha256_backend_name(backend) << ": "
        << accepted.error().to_string();
    if (!have_reference) {
      reference = auditor.head();
      have_reference = true;
    } else {
      expect_same_head(reference, auditor.head());
    }
  }
  crypto::sha256_force_backend(std::nullopt);
  EXPECT_TRUE(have_reference);
}

TEST_F(StreamingAuditTest, CompositeChainDedupSharesWork) {
  AggregationOptions options;
  options.prove_options.seal_kind = zvm::SealKind::composite;
  Pipeline p(std::move(options));
  const auto receipts = p.chain(3);

  // Sequential baseline: every embedded predecessor re-verified.
  zvm::Verifier verifier;
  zvm::VerifyStats seq_stats;
  for (const auto& receipt : receipts) {
    zvm::VerifyContext context{nullptr, &seq_stats};
    ASSERT_TRUE(
        verify_aggregation_receipt(verifier, receipt, context).ok());
  }

  BatchVerifier batch;
  zvm::VerifyStats batch_stats;
  const auto outcomes = batch.verify_aggregation(receipts, &batch_stats);
  for (const auto& outcome : outcomes) EXPECT_TRUE(outcome.ok());
  // Chain dedup: both non-genesis rounds resolve their embedded
  // predecessor from the previous lane, and converging Merkle paths within
  // each segment share node hashes.
  EXPECT_EQ(batch_stats.assumptions_skipped, 2u);
  EXPECT_LT(batch_stats.receipts, seq_stats.receipts);
  EXPECT_GT(batch_stats.node_hashes_shared, 0u);
}

TEST_F(StreamingAuditTest, BatchRepairsOptimisticSkipAfterPredecessorFails) {
  // receipts[1] is corrupted, and receipts[2] embeds a byte-identical copy
  // of it. The parallel pass may have skipped re-verifying that embedded
  // copy (optimistic predecessor seed); the repair pass must reject it the
  // way a sequential walk would.
  Pipeline p;
  auto receipts = p.chain(3);
  receipts[1].journal.push_back(0x00);

  BatchVerifier batch;
  const auto outcomes = batch.verify_aggregation(receipts);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  // receipts[2] is still internally valid — its embedded assumption is the
  // ORIGINAL (uncorrupted) round-1 receipt, which no longer matches the
  // corrupted lane, so it must have been verified in full, not skipped.
  zvm::Verifier verifier;
  EXPECT_EQ(outcomes[2].ok(),
            verify_aggregation_receipt(verifier, receipts[2]).ok());
}

// ---------------------------------------------------------------------------
// Streaming audit.

TEST_F(StreamingAuditTest, StreamingAuditMatchesMaterialized) {
  Pipeline p(incremental_mode());
  const auto receipts = p.chain(5);
  ASSERT_TRUE(save_receipts(receipts, path("chain.bin")).ok());

  Auditor materialized(p.board);
  ASSERT_TRUE(materialized.accept_rounds(receipts).ok());

  for (u64 batch_size : {u64{1}, u64{2}, u64{64}}) {
    auto source = ReceiptFileSource::open(path("chain.bin"));
    ASSERT_TRUE(source.ok());
    EXPECT_EQ(source.value().declared_count(), 5u);
    Auditor streaming(p.board);
    auto report =
        streaming.audit(source.value(), AuditOptions{batch_size, nullptr});
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    EXPECT_EQ(report.value().rounds, 5u);
    EXPECT_EQ(source.value().read_count(), 5u);
    expect_same_head(materialized.head(), report.value().head);
  }

  // The in-memory adapter audits identically.
  ReceiptSpanSource span_source{std::span<const zvm::Receipt>(receipts)};
  Auditor from_span(p.board);
  auto report = from_span.audit(span_source);
  ASSERT_TRUE(report.ok());
  expect_same_head(materialized.head(), report.value().head);
}

TEST_F(StreamingAuditTest, AuditContinuesAfterManualPrefix) {
  Pipeline p;
  const auto receipts = p.chain(4);
  // Accept round 0 by hand, then stream the remainder from a file.
  Auditor auditor(p.board);
  ASSERT_TRUE(auditor.accept_round(receipts[0]).ok());
  ASSERT_TRUE(save_receipts({receipts.begin() + 1, receipts.end()},
                            path("rest.bin"))
                  .ok());
  auto source = ReceiptFileSource::open(path("rest.bin"));
  ASSERT_TRUE(source.ok());
  auto report = auditor.audit(source.value());
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().rounds, 3u);
  EXPECT_EQ(auditor.rounds_accepted(), 4u);
}

TEST_F(StreamingAuditTest, EmptyFileAuditsToZeroRounds) {
  Pipeline p;
  ASSERT_TRUE(save_receipts({}, path("empty.bin")).ok());
  auto source = ReceiptFileSource::open(path("empty.bin"));
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.value().declared_count(), 0u);
  Auditor auditor(p.board);
  auto report = auditor.audit(source.value());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rounds, 0u);
}

TEST_F(StreamingAuditTest, TruncatedFileFailsCleanly) {
  Pipeline p;
  const auto receipts = p.chain(3);
  ASSERT_TRUE(save_receipts(receipts, path("chain.bin")).ok());
  const auto size = std::filesystem::file_size(path("chain.bin"));
  std::filesystem::resize_file(path("chain.bin"), size - 7);

  auto source = ReceiptFileSource::open(path("chain.bin"));
  ASSERT_TRUE(source.ok());
  Auditor auditor(p.board);
  auto report = auditor.audit(source.value(), AuditOptions{1, nullptr});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::parse_error);
  // Everything before the damage was accepted; the error is sticky.
  EXPECT_EQ(auditor.rounds_accepted(), 2u);
  auto again = source.value().next();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, Errc::parse_error);
}

TEST_F(StreamingAuditTest, TrailingBytesRejected) {
  Pipeline p;
  const auto receipts = p.chain(2);
  ASSERT_TRUE(save_receipts(receipts, path("chain.bin")).ok());
  {
    std::ofstream out(path("chain.bin"), std::ios::app | std::ios::binary);
    out << "junk";
  }
  auto source = ReceiptFileSource::open(path("chain.bin"));
  ASSERT_TRUE(source.ok());
  Auditor auditor(p.board);
  auto report = auditor.audit(source.value());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::parse_error);
}

TEST_F(StreamingAuditTest, CorruptedItemFailsCrc) {
  Pipeline p;
  const auto receipts = p.chain(2);
  ASSERT_TRUE(save_receipts(receipts, path("chain.bin")).ok());
  // Flip one byte near the end of the first item's payload.
  {
    std::fstream f(path("chain.bin"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    f.put(static_cast<char>(0xff));
  }
  auto source = ReceiptFileSource::open(path("chain.bin"));
  ASSERT_TRUE(source.ok());
  auto first = source.value().next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, Errc::parse_error);
}

TEST_F(StreamingAuditTest, ReorderedAndDuplicatedReceiptsRejected) {
  Pipeline p;
  const auto receipts = p.chain(4);

  auto reordered = receipts;
  std::swap(reordered[1], reordered[2]);
  auto duplicated = receipts;
  duplicated.insert(duplicated.begin() + 2, receipts[1]);

  for (const auto& bad : {reordered, duplicated}) {
    // Sequential reference decision.
    Auditor sequential(p.board);
    Status seq_error;
    for (const auto& receipt : bad) {
      auto accepted = sequential.accept_round(receipt);
      if (!accepted.ok()) {
        seq_error = accepted.error();
        break;
      }
    }
    ASSERT_FALSE(seq_error.ok());
    EXPECT_EQ(seq_error.error().code, Errc::chain_broken);

    // Batched and streamed walks agree exactly.
    Auditor batched(p.board);
    auto batch_result = batched.accept_rounds(bad);
    ASSERT_FALSE(batch_result.ok());
    EXPECT_EQ(batch_result.error().code, seq_error.error().code);
    EXPECT_EQ(batch_result.error().message, seq_error.error().message);
    EXPECT_EQ(batched.rounds_accepted(), sequential.rounds_accepted());

    ASSERT_TRUE(save_receipts(bad, path("bad.bin")).ok());
    auto source = ReceiptFileSource::open(path("bad.bin"));
    ASSERT_TRUE(source.ok());
    Auditor streamed(p.board);
    auto report = streamed.audit(source.value(), AuditOptions{2, nullptr});
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error().code, seq_error.error().code);
    EXPECT_EQ(streamed.rounds_accepted(), sequential.rounds_accepted());
  }
}

TEST_F(StreamingAuditTest, InjectedReadFaultSurfacesAsIoError) {
  Pipeline p;
  const auto receipts = p.chain(4);
  ASSERT_TRUE(save_receipts(receipts, path("chain.bin")).ok());

  store::FaultInjector faults;
  faults.arm(store::FaultPoint::scan, 2);  // receipts 0 and 1 pass
  ReceiptFileSource::Options options;
  options.fault = &faults;
  auto source = ReceiptFileSource::open(path("chain.bin"), options);
  ASSERT_TRUE(source.ok());

  Auditor auditor(p.board);
  auto report = auditor.audit(source.value(), AuditOptions{1, nullptr});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::io_error);
  EXPECT_EQ(auditor.rounds_accepted(), 2u);
}

// ---------------------------------------------------------------------------
// Accepted-claim window.

TEST(AcceptedClaimWindow, EvictsOldestBeyondCapacity) {
  AcceptedClaimWindow window(2);
  Digest32 a, b, c;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  c.bytes[0] = 3;
  window.insert(a);
  window.insert(a);  // duplicate: no double entry
  window.insert(b);
  EXPECT_EQ(window.size(), 2u);
  EXPECT_TRUE(window.contains(a));
  window.insert(c);
  EXPECT_EQ(window.size(), 2u);
  EXPECT_FALSE(window.contains(a));
  EXPECT_TRUE(window.contains(b));
  EXPECT_TRUE(window.contains(c));
}

TEST(AcceptedClaimWindow, ZeroCapacityIsUnbounded) {
  AcceptedClaimWindow window(0);
  for (u8 i = 0; i < 50; ++i) {
    Digest32 d;
    d.bytes[0] = i;
    window.insert(d);
  }
  EXPECT_EQ(window.size(), 50u);
  Digest32 first;
  first.bytes[0] = 0;
  EXPECT_TRUE(window.contains(first));
}

TEST_F(StreamingAuditTest, QueryBeyondClaimWindowRejected) {
  Pipeline p;
  const auto receipts = p.chain(2);
  QueryService queries(p.service);
  auto resp = queries.run(Query::count());  // targets round 1
  ASSERT_TRUE(resp.ok());
  const auto later = p.chain(2);  // rounds 2 and 3

  // Window of 2: rounds 2 and 3 evict rounds 0 and 1.
  AuditorOptions small_window;
  small_window.accepted_claim_window = 2;
  Auditor bounded(p.board, small_window);
  ASSERT_TRUE(bounded.accept_rounds(receipts).ok());
  ASSERT_TRUE(bounded.accept_rounds(later).ok());
  auto rejected = bounded.verify_query(resp.value().receipt);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::chain_broken);

  // Unbounded auditor still accepts the same (older) query target.
  AuditorOptions unbounded;
  unbounded.accepted_claim_window = 0;
  Auditor keeper(p.board, unbounded);
  ASSERT_TRUE(keeper.accept_rounds(receipts).ok());
  ASSERT_TRUE(keeper.accept_rounds(later).ok());
  EXPECT_TRUE(keeper.verify_query(resp.value().receipt).ok());
}

// ---------------------------------------------------------------------------
// Modern surface equivalences (the deprecated positional shims these once
// compared against are gone; the struct-based calls are the only spelling).

TEST_F(StreamingAuditTest, HeadAdoptionAndOptionsVerifyAgree) {
  Pipeline p;
  const auto receipts = p.chain(2);
  Auditor modern(p.board);
  ASSERT_TRUE(modern.accept_rounds(receipts).ok());
  const ChainHead head = modern.head();

  Auditor adopted(p.board);
  ASSERT_TRUE(adopted.adopt_summary(head).ok());
  expect_same_head(adopted.head(), head);

  QueryService queries(p.service);
  const Query q = Query::count();
  auto resp = queries.run(q);
  ASSERT_TRUE(resp.ok());
  auto via_options =
      modern.verify_query(resp.value().receipt, {.expected_query = &q});
  ASSERT_TRUE(via_options.ok());
  auto via_default = modern.verify_query(resp.value().receipt, {});
  ASSERT_TRUE(via_default.ok());
  EXPECT_EQ(via_options.value().result.matched,
            via_default.value().result.matched);
}

}  // namespace
}  // namespace zkt::core
