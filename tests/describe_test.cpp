// Receipt introspection tests: describe/summarize must decode every guest's
// journal and never crash on malformed input.
#include <gtest/gtest.h>

#include "core/describe.h"
#include "core/grouped_query.h"
#include "core/service.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

struct Fixture {
  CommitmentBoard board;
  AggregationService service{board};

  Fixture() {
    const auto key = crypto::schnorr_keygen_from_seed("describe");
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = 1;
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {0x01010101, 0x09090909, 80, 443, 6};
    pkt.timestamp_ms = 100;
    pkt.bytes = 900;
    record.observe(pkt);
    batch.records.push_back(record);
    EXPECT_TRUE(
        board.publish(make_commitment(batch, key, 5000).value()).ok());
    EXPECT_TRUE(service.aggregate({batch}).ok());
  }
};

TEST(Describe, AggregationReceipt) {
  Fixture fx;
  const std::string text = describe_receipt(fx.service.last_receipt());
  EXPECT_NE(text.find("zkt.guest.aggregate"), std::string::npos);
  EXPECT_NE(text.find("genesis"), std::string::npos);
  EXPECT_NE(text.find("entries      0 -> 1"), std::string::npos);
  EXPECT_NE(text.find("router 0 window 1"), std::string::npos);
}

TEST(Describe, IncrementalAggregationReceipt) {
  Fixture fx;
  const auto key = crypto::schnorr_keygen_from_seed("describe");
  RLogBatch batch;
  batch.router_id = 0;
  batch.window_id = 2;
  FlowRecord record;
  PacketObservation pkt;
  pkt.key = {0x01010101, 0x09090909, 80, 443, 6};
  pkt.timestamp_ms = 10100;
  pkt.bytes = 400;
  record.observe(pkt);
  batch.records.push_back(record);
  ASSERT_TRUE(fx.board.publish(make_commitment(batch, key, 10000).value()).ok());

  AggregationService inc(fx.board,
                         {.prove_options = {}, .mode = AggMode::incremental});
  ASSERT_TRUE(inc.restore(fx.service.state(), fx.service.last_receipt(), 1,
                          fx.service.sketch())
                  .ok());
  ASSERT_TRUE(inc.aggregate({batch}).ok());
  ASSERT_EQ(inc.last_kind(), RoundKind::incremental);

  const std::string text = describe_receipt(inc.last_receipt());
  EXPECT_NE(text.find("zkt.guest.aggregate_incremental"), std::string::npos);
  EXPECT_NE(text.find("aggregation round (incremental)"), std::string::npos);
  EXPECT_NE(text.find("delta shape  1 opened entry"), std::string::npos);
}

TEST(Describe, QueryReceiptBothModes) {
  Fixture fx;
  QueryService queries(fx.service);
  Query q = Query::sum(QField::bytes);
  auto complete = queries.run(q);
  auto selective = queries.run(q, {.mode = QueryMode::selective,
                                   .prove_options_override = {}});
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(selective.ok());
  EXPECT_NE(describe_receipt(complete.value().receipt).find("complete scan"),
            std::string::npos);
  EXPECT_NE(describe_receipt(selective.value().receipt).find("selective"),
            std::string::npos);
  EXPECT_NE(describe_receipt(complete.value().receipt)
                .find("SELECT SUM(bytes)"),
            std::string::npos);
}

TEST(Describe, GroupedReceipt) {
  Fixture fx;
  auto grouped =
      run_grouped_query(fx.service, Query::count(), QField::protocol);
  ASSERT_TRUE(grouped.ok());
  const std::string text = describe_receipt(grouped.value().receipt);
  EXPECT_NE(text.find("GROUP BY protocol"), std::string::npos);
  EXPECT_NE(text.find("protocol=6"), std::string::npos);
}

TEST(Describe, UnknownImageAndMalformedJournal) {
  Fixture fx;
  auto receipt = fx.service.last_receipt();
  // Unknown image.
  auto unknown = receipt;
  unknown.claim.image_id = crypto::sha256(std::string_view("mystery"));
  EXPECT_NE(describe_receipt(unknown).find("unknown-image"),
            std::string::npos);
  // Malformed journal (described, not crashed — note the digest no longer
  // matches, which only *verification* would reject).
  auto malformed = receipt;
  malformed.journal = bytes_of("garbage");
  EXPECT_NE(describe_receipt(malformed).find("MALFORMED"),
            std::string::npos);
}

TEST(Describe, CompositeSegmentsListed) {
  Fixture fx;
  zvm::ProveOptions options;
  options.seal_kind = zvm::SealKind::composite;
  QueryService queries(fx.service, QueryServiceOptions{options});
  auto resp = queries.run(Query::count());
  ASSERT_TRUE(resp.ok());
  const std::string text = describe_receipt(resp.value().receipt);
  EXPECT_NE(text.find("segments: 1"), std::string::npos);
  EXPECT_NE(text.find("opened"), std::string::npos);
}

TEST(Describe, SummaryIsOneLine) {
  Fixture fx;
  const std::string line = summarize_receipt(fx.service.last_receipt());
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("cycles"), std::string::npos);
}

}  // namespace
}  // namespace zkt::core
