// zkt-lint engine tests: per-rule fixtures (a violation, the same violation
// suppressed, and a clean file), config parsing, and a self-check that this
// repository lints clean under its own .zkt-lint.toml.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/config.h"
#include "analysis/lint.h"
#include "analysis/load.h"

namespace zkt::analysis {
namespace {

// ---------------------------------------------------------------------------
// Harness

Config parse_config(std::string_view text) {
  auto cfg = Config::parse(text);
  EXPECT_TRUE(cfg.ok()) << (cfg.ok() ? "" : cfg.error().to_string());
  return cfg.ok() ? std::move(cfg.value()) : Config{};
}

LintResult lint(std::string_view config_text,
                std::vector<SourceFile> files) {
  return run_lint(parse_config(config_text), files);
}

std::vector<Finding> findings_for(const LintResult& result,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : result.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Config parser

TEST(LintConfig, ParsesSectionsStringsBoolsAndArrays) {
  auto cfg = parse_config(R"(# comment
[lint]
include_dirs = ["src"]
json = false
max = 40

[rule.layer-dag.allow]
common = []
crypto = ["common"]
zvm = [
  "crypto",
  "common",
]
)");
  EXPECT_EQ(cfg.strs("lint", "include_dirs"),
            std::vector<std::string>{"src"});
  EXPECT_FALSE(cfg.flag("lint", "json", true));
  EXPECT_TRUE(cfg.flag("lint", "absent", true));
  EXPECT_EQ(cfg.strs("rule.layer-dag.allow", "zvm"),
            (std::vector<std::string>{"crypto", "common"}));
  EXPECT_EQ(cfg.keys("rule.layer-dag.allow"),
            (std::vector<std::string>{"common", "crypto", "zvm"}));
}

TEST(LintConfig, RejectsMalformedInput) {
  EXPECT_FALSE(Config::parse("key_without_section = 1").ok());
  EXPECT_FALSE(Config::parse("[s]\nkey = ").ok());
  EXPECT_FALSE(Config::parse("[s]\nkey = \"unterminated").ok());
}

TEST(Lint, RegistersAllFourRules) {
  const auto names = rule_names();
  for (const char* rule : {"guest-determinism", "result-discipline",
                           "secret-hygiene", "layer-dag"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), rule), names.end())
        << rule;
  }
}

// ---------------------------------------------------------------------------
// guest-determinism

constexpr std::string_view kGuestConfig = R"(
[rule.guest-determinism]
roots = ["src/core/guest.cpp"]
)";

TEST(GuestDeterminism, FlagsBannedHeaderFloatAndIdentifier) {
  auto result = lint(kGuestConfig, {{"src/core/guest.cpp",
                                     "#include <chrono>\n"
                                     "double scale() { return 0.5; }\n"
                                     "int pick() { return rand(); }\n"}});
  auto found = findings_for(result, "guest-determinism");
  ASSERT_EQ(found.size(), 3u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 1);  // <chrono>
  EXPECT_EQ(found[1].line, 2);  // double
  EXPECT_EQ(found[2].line, 3);  // rand
}

TEST(GuestDeterminism, FollowsIncludeClosure) {
  // The root is clean; the violation sits in a header it includes.
  auto result = lint(kGuestConfig,
                     {{"src/core/guest.cpp", "#include \"core/util.h\"\n"},
                      {"src/core/util.h", "inline double half(int v) {\n"
                                          "  return v / 2.0;\n"
                                          "}\n"}});
  auto found = findings_for(result, "guest-determinism");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].path, "src/core/util.h");
}

TEST(GuestDeterminism, FlagsUnorderedContainerIteration) {
  auto result = lint(
      kGuestConfig,
      {{"src/core/guest.cpp",
        "#include <unordered_map>\n"
        "unsigned long total(const std::unordered_map<int, int>& m) {\n"
        "  std::unordered_map<int, int> acc = m;\n"
        "  unsigned long sum = 0;\n"
        "  for (const auto& [k, v] : acc) sum += v;\n"
        "  return sum;\n"
        "}\n"}});
  auto found = findings_for(result, "guest-determinism");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 5);
}

TEST(GuestDeterminism, SuppressionAndCleanFile) {
  // Same violation, suppressed on its own line.
  auto suppressed =
      lint(kGuestConfig,
           {{"src/core/guest.cpp",
             "// zkt-lint: allow(guest-determinism)\n"
             "double scale() { return 0.5; }\n"}});
  ASSERT_EQ(suppressed.findings.size(), 1u);
  EXPECT_TRUE(suppressed.findings[0].suppressed);
  EXPECT_EQ(suppressed.unsuppressed(), 0u);

  // Integer-only guest code is clean; non-root files are unconstrained.
  auto clean = lint(kGuestConfig,
                    {{"src/core/guest.cpp",
                      "unsigned long mul(unsigned long a) { return a * 3; }\n"},
                     {"src/core/host.cpp",
                      "double host_only() { return 0.5; }\n"}});
  EXPECT_TRUE(clean.findings.empty()) << clean.to_text(true);
}

// ---------------------------------------------------------------------------
// result-discipline

TEST(ResultDiscipline, FlagsDiscardedResultCall) {
  auto result = lint("", {{"src/a.cpp",
                           "#include \"common/result.h\"\n"
                           "zkt::Status persist();\n"
                           "void run() {\n"
                           "  persist();\n"
                           "}\n"}});
  auto found = findings_for(result, "result-discipline");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 4);
}

TEST(ResultDiscipline, FlagsUncheckedValue) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Result<int> load();\n"
                           "int run() {\n"
                           "  auto r = load();\n"
                           "  return r.value();\n"
                           "}\n"}});
  auto found = findings_for(result, "result-discipline");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 4);
}

TEST(ResultDiscipline, AcceptsCheckedPatterns) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Result<int> load();\n"
                           "zkt::Status persist();\n"
                           "int run() {\n"
                           "  auto r = load();\n"
                           "  if (!r.ok()) return -1;\n"
                           "  auto s = persist();\n"
                           "  if (!s.ok()) return -2;\n"
                           "  return r.value();\n"
                           "}\n"}});
  EXPECT_TRUE(findings_for(result, "result-discipline").empty())
      << result.to_text(true);
}

TEST(ResultDiscipline, DominanceIgnoresClosedSiblingBlocks) {
  // The ok() check inside the first block must not authorize a .value()
  // in a later sibling block.
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Result<int> load();\n"
                           "int run(bool flip) {\n"
                           "  auto r = load();\n"
                           "  if (flip) {\n"
                           "    if (!r.ok()) return -1;\n"
                           "  }\n"
                           "  return r.value();\n"
                           "}\n"}});
  auto found = findings_for(result, "result-discipline");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 7);
}

TEST(ResultDiscipline, SuppressionWorks) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Status persist();\n"
                           "void run() {\n"
                           "  persist();  // zkt-lint: allow(result-discipline)\n"
                           "}\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.unsuppressed(), 0u);
}

// ---------------------------------------------------------------------------
// secret-hygiene

constexpr std::string_view kSecretConfig = R"(
[rule.secret-hygiene]
paths = ["src/crypto"]
)";

TEST(SecretHygiene, FlagsMemcmpAndOperatorOnSecretNames) {
  auto result = lint(
      kSecretConfig,
      {{"src/crypto/verify.cpp",
        "bool same_mem(const unsigned char* digest, const unsigned char* b) {\n"
        "  return memcmp(digest, b, 32) == 0;\n"
        "}\n"
        "bool same_eq(const Digest32& root, const Digest32& got) {\n"
        "  return got == root;\n"
        "}\n"}});
  auto found = findings_for(result, "secret-hygiene");
  ASSERT_EQ(found.size(), 2u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 2);
  EXPECT_EQ(found[1].line, 5);
}

TEST(SecretHygiene, OnlyAppliesToConfiguredPaths) {
  // The same code outside src/crypto is fine (tests compare digests freely).
  auto result = lint(kSecretConfig,
                     {{"src/core/check.cpp",
                       "bool same(const Digest32& root, const Digest32& g) {\n"
                       "  return g == root;\n"
                       "}\n"}});
  EXPECT_TRUE(findings_for(result, "secret-hygiene").empty())
      << result.to_text(true);
}

TEST(SecretHygiene, CleanWithCtEqualAndNonSecretNames) {
  auto result = lint(kSecretConfig,
                     {{"src/crypto/verify.cpp",
                       "bool same(const Digest32& root, const Digest32& g) {\n"
                       "  return ct_equal(g, root);\n"
                       "}\n"
                       "bool len_eq(size_t a, size_t b) { return a == b; }\n"}});
  EXPECT_TRUE(findings_for(result, "secret-hygiene").empty())
      << result.to_text(true);
}

// ---------------------------------------------------------------------------
// layer-dag

constexpr std::string_view kLayerConfig = R"(
[rule.layer-dag.allow]
common = []
crypto = ["common"]
zvm = ["crypto", "common"]
)";

TEST(LayerDag, FlagsForbiddenEdgeAndAcceptsAllowedOnes) {
  auto result = lint(kLayerConfig,
                     {{"src/common/util.h", "#include \"zvm/env.h\"\n"},
                      {"src/zvm/env.h", "#include \"crypto/sha.h\"\n"},
                      {"src/crypto/sha.h", "#include \"common/bytes.h\"\n"},
                      {"src/common/bytes.h", "\n"}});
  auto found = findings_for(result, "layer-dag");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].path, "src/common/util.h");
  EXPECT_NE(found[0].message.find("common -> zvm"), std::string::npos)
      << found[0].message;
}

TEST(LayerDag, FlagsModuleMissingFromDag) {
  auto result =
      lint(kLayerConfig, {{"src/rogue/thing.h", "int rogue();\n"}});
  ASSERT_EQ(findings_for(result, "layer-dag").size(), 1u)
      << result.to_text(true);
}

TEST(LayerDag, SuppressionOnIncludeLineWorks) {
  auto result = lint(
      kLayerConfig,
      {{"src/common/util.h",
        "#include \"zvm/env.h\"  // zkt-lint: allow(layer-dag)\n"},
       {"src/zvm/env.h", "\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.unsuppressed(), 0u);
}

// ---------------------------------------------------------------------------
// Output formats

TEST(LintOutput, TextAndJsonIncludeRuleFileAndLine) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Status persist();\n"
                           "void run() { persist(); }\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  const std::string text = result.to_text(true);
  EXPECT_NE(text.find("src/a.cpp:2"), std::string::npos) << text;
  EXPECT_NE(text.find("[result-discipline]"), std::string::npos) << text;
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"rule\": \"result-discipline\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Self-check: this repository lints clean under its own config.

TEST(LintSelfCheck, RepositoryIsClean) {
  const std::string root = ZKT_SOURCE_DIR;
  auto config_text = read_file(root + "/.zkt-lint.toml");
  ASSERT_TRUE(config_text.ok()) << config_text.error().to_string();
  auto cfg = Config::parse(config_text.value());
  ASSERT_TRUE(cfg.ok()) << cfg.error().to_string();

  auto files = load_tree(root, {"src", "tools", "tests"});
  ASSERT_TRUE(files.ok()) << files.error().to_string();
  ASSERT_GT(files.value().size(), 100u);  // sanity: the tree actually loaded

  auto result = run_lint(cfg.value(), files.value());
  EXPECT_EQ(result.unsuppressed(), 0u) << result.to_text();
}

}  // namespace
}  // namespace zkt::analysis
