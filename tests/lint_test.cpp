// zkt-lint engine tests: per-rule fixtures (a violation, the same violation
// suppressed, and a clean file), config parsing, lexer line-accuracy
// regressions, baseline handling, and a self-check that this repository
// lints clean under its own .zkt-lint.toml — all eight rules active.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/config.h"
#include "analysis/lint.h"
#include "analysis/load.h"
#include "analysis/token.h"

namespace zkt::analysis {
namespace {

// ---------------------------------------------------------------------------
// Harness

Config parse_config(std::string_view text) {
  auto cfg = Config::parse(text);
  EXPECT_TRUE(cfg.ok()) << (cfg.ok() ? "" : cfg.error().to_string());
  return cfg.ok() ? std::move(cfg.value()) : Config{};
}

LintResult lint(std::string_view config_text,
                std::vector<SourceFile> files) {
  return run_lint(parse_config(config_text), files);
}

std::vector<Finding> findings_for(const LintResult& result,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : result.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Config parser

TEST(LintConfig, ParsesSectionsStringsBoolsAndArrays) {
  auto cfg = parse_config(R"(# comment
[lint]
include_dirs = ["src"]
json = false
max = 40

[rule.layer-dag.allow]
common = []
crypto = ["common"]
zvm = [
  "crypto",
  "common",
]
)");
  EXPECT_EQ(cfg.strs("lint", "include_dirs"),
            std::vector<std::string>{"src"});
  EXPECT_FALSE(cfg.flag("lint", "json", true));
  EXPECT_TRUE(cfg.flag("lint", "absent", true));
  EXPECT_EQ(cfg.strs("rule.layer-dag.allow", "zvm"),
            (std::vector<std::string>{"crypto", "common"}));
  EXPECT_EQ(cfg.keys("rule.layer-dag.allow"),
            (std::vector<std::string>{"common", "crypto", "zvm"}));
}

TEST(LintConfig, RejectsMalformedInput) {
  EXPECT_FALSE(Config::parse("key_without_section = 1").ok());
  EXPECT_FALSE(Config::parse("[s]\nkey = ").ok());
  EXPECT_FALSE(Config::parse("[s]\nkey = \"unterminated").ok());
}

TEST(Lint, RegistersAllEightRules) {
  const auto names = rule_names();
  for (const char* rule :
       {"guest-determinism", "result-discipline", "secret-hygiene",
        "layer-dag", "untrusted-taint", "concurrency-capture",
        "deprecation-lifecycle", "obs-catalog"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), rule), names.end())
        << rule;
  }
}

// ---------------------------------------------------------------------------
// guest-determinism

constexpr std::string_view kGuestConfig = R"(
[rule.guest-determinism]
roots = ["src/core/guest.cpp"]
)";

TEST(GuestDeterminism, FlagsBannedHeaderFloatAndIdentifier) {
  auto result = lint(kGuestConfig, {{"src/core/guest.cpp",
                                     "#include <chrono>\n"
                                     "double scale() { return 0.5; }\n"
                                     "int pick() { return rand(); }\n"}});
  auto found = findings_for(result, "guest-determinism");
  ASSERT_EQ(found.size(), 3u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 1);  // <chrono>
  EXPECT_EQ(found[1].line, 2);  // double
  EXPECT_EQ(found[2].line, 3);  // rand
}

TEST(GuestDeterminism, FollowsIncludeClosure) {
  // The root is clean; the violation sits in a header it includes.
  auto result = lint(kGuestConfig,
                     {{"src/core/guest.cpp", "#include \"core/util.h\"\n"},
                      {"src/core/util.h", "inline double half(int v) {\n"
                                          "  return v / 2.0;\n"
                                          "}\n"}});
  auto found = findings_for(result, "guest-determinism");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].path, "src/core/util.h");
}

TEST(GuestDeterminism, FlagsUnorderedContainerIteration) {
  auto result = lint(
      kGuestConfig,
      {{"src/core/guest.cpp",
        "#include <unordered_map>\n"
        "unsigned long total(const std::unordered_map<int, int>& m) {\n"
        "  std::unordered_map<int, int> acc = m;\n"
        "  unsigned long sum = 0;\n"
        "  for (const auto& [k, v] : acc) sum += v;\n"
        "  return sum;\n"
        "}\n"}});
  auto found = findings_for(result, "guest-determinism");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 5);
}

TEST(GuestDeterminism, SuppressionAndCleanFile) {
  // Same violation, suppressed on its own line.
  auto suppressed =
      lint(kGuestConfig,
           {{"src/core/guest.cpp",
             "// zkt-lint: allow(guest-determinism)\n"
             "double scale() { return 0.5; }\n"}});
  ASSERT_EQ(suppressed.findings.size(), 1u);
  EXPECT_TRUE(suppressed.findings[0].suppressed);
  EXPECT_EQ(suppressed.unsuppressed(), 0u);

  // Integer-only guest code is clean; non-root files are unconstrained.
  auto clean = lint(kGuestConfig,
                    {{"src/core/guest.cpp",
                      "unsigned long mul(unsigned long a) { return a * 3; }\n"},
                     {"src/core/host.cpp",
                      "double host_only() { return 0.5; }\n"}});
  EXPECT_TRUE(clean.findings.empty()) << clean.to_text(true);
}

// ---------------------------------------------------------------------------
// result-discipline

TEST(ResultDiscipline, FlagsDiscardedResultCall) {
  auto result = lint("", {{"src/a.cpp",
                           "#include \"common/result.h\"\n"
                           "zkt::Status persist();\n"
                           "void run() {\n"
                           "  persist();\n"
                           "}\n"}});
  auto found = findings_for(result, "result-discipline");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 4);
}

TEST(ResultDiscipline, FlagsUncheckedValue) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Result<int> load();\n"
                           "int run() {\n"
                           "  auto r = load();\n"
                           "  return r.value();\n"
                           "}\n"}});
  auto found = findings_for(result, "result-discipline");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 4);
}

TEST(ResultDiscipline, AcceptsCheckedPatterns) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Result<int> load();\n"
                           "zkt::Status persist();\n"
                           "int run() {\n"
                           "  auto r = load();\n"
                           "  if (!r.ok()) return -1;\n"
                           "  auto s = persist();\n"
                           "  if (!s.ok()) return -2;\n"
                           "  return r.value();\n"
                           "}\n"}});
  EXPECT_TRUE(findings_for(result, "result-discipline").empty())
      << result.to_text(true);
}

TEST(ResultDiscipline, DominanceIgnoresClosedSiblingBlocks) {
  // The ok() check inside the first block must not authorize a .value()
  // in a later sibling block.
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Result<int> load();\n"
                           "int run(bool flip) {\n"
                           "  auto r = load();\n"
                           "  if (flip) {\n"
                           "    if (!r.ok()) return -1;\n"
                           "  }\n"
                           "  return r.value();\n"
                           "}\n"}});
  auto found = findings_for(result, "result-discipline");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 7);
}

TEST(ResultDiscipline, SuppressionWorks) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Status persist();\n"
                           "void run() {\n"
                           "  persist();  // zkt-lint: allow(result-discipline)\n"
                           "}\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.unsuppressed(), 0u);
}

// ---------------------------------------------------------------------------
// secret-hygiene

constexpr std::string_view kSecretConfig = R"(
[rule.secret-hygiene]
paths = ["src/crypto"]
)";

TEST(SecretHygiene, FlagsMemcmpAndOperatorOnSecretNames) {
  auto result = lint(
      kSecretConfig,
      {{"src/crypto/verify.cpp",
        "bool same_mem(const unsigned char* digest, const unsigned char* b) {\n"
        "  return memcmp(digest, b, 32) == 0;\n"
        "}\n"
        "bool same_eq(const Digest32& root, const Digest32& got) {\n"
        "  return got == root;\n"
        "}\n"}});
  auto found = findings_for(result, "secret-hygiene");
  ASSERT_EQ(found.size(), 2u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 2);
  EXPECT_EQ(found[1].line, 5);
}

TEST(SecretHygiene, OnlyAppliesToConfiguredPaths) {
  // The same code outside src/crypto is fine (tests compare digests freely).
  auto result = lint(kSecretConfig,
                     {{"src/core/check.cpp",
                       "bool same(const Digest32& root, const Digest32& g) {\n"
                       "  return g == root;\n"
                       "}\n"}});
  EXPECT_TRUE(findings_for(result, "secret-hygiene").empty())
      << result.to_text(true);
}

TEST(SecretHygiene, CleanWithCtEqualAndNonSecretNames) {
  auto result = lint(kSecretConfig,
                     {{"src/crypto/verify.cpp",
                       "bool same(const Digest32& root, const Digest32& g) {\n"
                       "  return ct_equal(g, root);\n"
                       "}\n"
                       "bool len_eq(size_t a, size_t b) { return a == b; }\n"}});
  EXPECT_TRUE(findings_for(result, "secret-hygiene").empty())
      << result.to_text(true);
}

// ---------------------------------------------------------------------------
// layer-dag

constexpr std::string_view kLayerConfig = R"(
[rule.layer-dag.allow]
common = []
crypto = ["common"]
zvm = ["crypto", "common"]
)";

TEST(LayerDag, FlagsForbiddenEdgeAndAcceptsAllowedOnes) {
  auto result = lint(kLayerConfig,
                     {{"src/common/util.h", "#include \"zvm/env.h\"\n"},
                      {"src/zvm/env.h", "#include \"crypto/sha.h\"\n"},
                      {"src/crypto/sha.h", "#include \"common/bytes.h\"\n"},
                      {"src/common/bytes.h", "\n"}});
  auto found = findings_for(result, "layer-dag");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].path, "src/common/util.h");
  EXPECT_NE(found[0].message.find("common -> zvm"), std::string::npos)
      << found[0].message;
}

TEST(LayerDag, FlagsModuleMissingFromDag) {
  auto result =
      lint(kLayerConfig, {{"src/rogue/thing.h", "int rogue();\n"}});
  ASSERT_EQ(findings_for(result, "layer-dag").size(), 1u)
      << result.to_text(true);
}

TEST(LayerDag, SuppressionOnIncludeLineWorks) {
  auto result = lint(
      kLayerConfig,
      {{"src/common/util.h",
        "#include \"zvm/env.h\"  // zkt-lint: allow(layer-dag)\n"},
       {"src/zvm/env.h", "\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.unsuppressed(), 0u);
}

// ---------------------------------------------------------------------------
// untrusted-taint

constexpr std::string_view kTaintConfig = R"(
[rule.untrusted-taint]
paths = ["src"]
sources = ["recv"]
tainted_params = ["packet", "payload"]
tainted_members = ["data_"]
sinks = ["src/net/parse.cpp"]
)";

TEST(UntrustedTaint, FlagsDangerousOpsOutsideSinks) {
  auto result = lint(
      kTaintConfig,
      {{"src/core/handler.cpp",
        "void handle(const unsigned char* packet, unsigned long n) {\n"
        "  const Header* h = reinterpret_cast<const Header*>(packet);\n"
        "  unsigned char first = packet[0];\n"
        "  memcpy(scratch, packet, n);\n"
        "  use(h, first);\n"
        "}\n"}});
  auto found = findings_for(result, "untrusted-taint");
  ASSERT_EQ(found.size(), 3u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 2);  // reinterpret_cast
  EXPECT_EQ(found[1].line, 3);  // indexing
  EXPECT_EQ(found[2].line, 4);  // memcpy
}

TEST(UntrustedTaint, PropagatesThroughLocalsAndSourceCalls) {
  auto result = lint(kTaintConfig,
                     {{"src/core/handler.cpp",
                       "void walk(const unsigned char* payload) {\n"
                       "  const unsigned char* cursor = payload;\n"
                       "  consume(cursor[3]);\n"
                       "}\n"
                       "void pull(int fd) {\n"
                       "  auto buf = recv(fd);\n"
                       "  consume(buf[0]);\n"
                       "}\n"}});
  auto found = findings_for(result, "untrusted-taint");
  ASSERT_EQ(found.size(), 2u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 3);  // cursor inherits payload's taint
  EXPECT_EQ(found[1].line, 7);  // buf comes from recv()
}

TEST(UntrustedTaint, SinkRequiresDominatingBoundsCheck) {
  // Inside a sanctioned parse TU the tainted cursor buffer may be indexed —
  // but only after a visible need()/size-style check in the same function.
  auto result = lint(kTaintConfig,
                     {{"src/net/parse.cpp",
                       "unsigned checked(unsigned long pos) {\n"
                       "  if (!need(2)) return 0;\n"
                       "  return data_[pos];\n"
                       "}\n"
                       "unsigned unchecked(unsigned long pos) {\n"
                       "  return data_[pos];\n"
                       "}\n"}});
  auto found = findings_for(result, "untrusted-taint");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 6);
}

TEST(UntrustedTaint, RelationalGuardInLoopConditionCounts) {
  // A for-loop bound over the buffer is exactly the guard indexed access
  // rides on; a bare template '<' elsewhere must not count as one.
  auto result = lint(kTaintConfig,
                     {{"src/net/parse.cpp",
                       "unsigned sum(unsigned long n) {\n"
                       "  unsigned v = 0;\n"
                       "  for (unsigned long i = 0; i < n; ++i) {\n"
                       "    v += data_[i];\n"
                       "  }\n"
                       "  return v;\n"
                       "}\n"}});
  EXPECT_TRUE(findings_for(result, "untrusted-taint").empty())
      << result.to_text(true);
}

TEST(UntrustedTaint, SuppressionAndCleanNames) {
  auto suppressed = lint(
      kTaintConfig,
      {{"src/core/handler.cpp",
        "void handle(const unsigned char* packet) {\n"
        "  use(packet[0]);  // zkt-lint: allow(untrusted-taint) caller checked\n"
        "}\n"}});
  ASSERT_EQ(suppressed.findings.size(), 1u);
  EXPECT_TRUE(suppressed.findings[0].suppressed);
  EXPECT_EQ(suppressed.unsuppressed(), 0u);

  // Buffers with trusted names are not tracked.
  auto clean = lint(kTaintConfig,
                    {{"src/core/handler.cpp",
                      "void local_only(const unsigned char* table) {\n"
                      "  use(table[0]);\n"
                      "}\n"}});
  EXPECT_TRUE(clean.findings.empty()) << clean.to_text(true);
}

// ---------------------------------------------------------------------------
// concurrency-capture

constexpr std::string_view kConcConfig = R"(
[rule.concurrency-capture]
paths = ["src"]
submit_calls = ["submit", "parallel_for"]
)";

TEST(ConcurrencyCapture, FlagsRefCaptureOfMutableLocal) {
  auto result = lint(kConcConfig,
                     {{"src/core/work.cpp",
                       "void run(Pool& pool) {\n"
                       "  int count = 0;\n"
                       "  pool.submit([&] { count += 1; });\n"
                       "}\n"}});
  auto found = findings_for(result, "concurrency-capture");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].line, 3);
  EXPECT_NE(found[0].message.find("'count'"), std::string::npos)
      << found[0].message;
}

TEST(ConcurrencyCapture, AcceptsConstAndValueCaptures) {
  auto result = lint(kConcConfig,
                     {{"src/core/work.cpp",
                       "void run(Pool& pool) {\n"
                       "  const int base = 3;\n"
                       "  int count = 0;\n"
                       "  pool.submit([&] { use(base); });\n"
                       "  pool.submit([count] { use(count); });\n"
                       "}\n"}});
  EXPECT_TRUE(findings_for(result, "concurrency-capture").empty())
      << result.to_text(true);
}

TEST(ConcurrencyCapture, SharedAnnotationBlessesTheCapture) {
  auto result = lint(
      kConcConfig,
      {{"src/core/work.cpp",
        "void run(Pool& pool) {\n"
        "  // zkt-lint: shared(one slot per task; writes are disjoint)\n"
        "  int slots[4] = {};\n"
        "  pool.parallel_for(4, 1, [&](unsigned long i) { slots[i] = 1; });\n"
        "}\n"}});
  EXPECT_TRUE(findings_for(result, "concurrency-capture").empty())
      << result.to_text(true);
}

TEST(ConcurrencyCapture, FlagsMemberTouchedThroughCapturedThis) {
  auto result = lint(kConcConfig,
                     {{"src/core/work.cpp",
                       "void Worker::go() {\n"
                       "  pool_.submit([this] { items_.push_back(1); });\n"
                       "}\n"}});
  auto found = findings_for(result, "concurrency-capture");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_NE(found[0].message.find("'items_'"), std::string::npos)
      << found[0].message;
}

TEST(ConcurrencyCapture, GuardedByRequiresTheLock) {
  const char* header =
      "#pragma once\n"
      "#include <mutex>\n"
      "class Q {\n"
      "  std::mutex mu_;\n"
      "  // zkt-lint: guarded_by(mu_) popped by workers concurrently\n"
      "  int depth_ = 0;\n"
      " public:\n"
      "  void bump();\n"
      "  int peek() const { return depth_; }\n"
      "};\n";
  const char* source =
      "#include \"core/q.h\"\n"
      "void Q::bump() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  depth_ += 1;\n"
      "}\n";
  auto result = lint(kConcConfig, {{"src/core/q.h", header},
                                   {"src/core/q.cpp", source}});
  auto found = findings_for(result, "concurrency-capture");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_EQ(found[0].path, "src/core/q.h");
  EXPECT_EQ(found[0].line, 9);  // peek() reads depth_ without mu_
  EXPECT_NE(found[0].message.find("guarded_by(mu_)"), std::string::npos)
      << found[0].message;
}

TEST(ConcurrencyCapture, SuppressionWorks) {
  auto result = lint(
      kConcConfig,
      {{"src/core/work.cpp",
        "void run(Pool& pool) {\n"
        "  int count = 0;\n"
        "  // zkt-lint: allow(concurrency-capture) single worker, join below\n"
        "  pool.submit([&] { count += 1; });\n"
        "}\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.unsuppressed(), 0u);
}

// ---------------------------------------------------------------------------
// deprecation-lifecycle

constexpr std::string_view kDepConfig = R"(
[lint]
current_pr = 8
)";

TEST(DeprecationLifecycle, FlagsShimWithoutRemoveAfter) {
  auto result = lint(kDepConfig,
                     {{"src/core/api.h",
                       "[[deprecated(\"use next()\")]] void old();\n"}});
  auto found = findings_for(result, "deprecation-lifecycle");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_NE(found[0].message.find("remove-after"), std::string::npos)
      << found[0].message;
}

TEST(DeprecationLifecycle, FlagsExpiredShim) {
  auto result =
      lint(kDepConfig,
           {{"src/core/api.h",
             "// zkt-lint: remove-after(PR 7)\n"
             "[[deprecated(\"use next()\")]] void old();\n"}});
  auto found = findings_for(result, "deprecation-lifecycle");
  ASSERT_EQ(found.size(), 1u) << result.to_text(true);
  EXPECT_NE(found[0].message.find("expired"), std::string::npos)
      << found[0].message;
}

TEST(DeprecationLifecycle, AcceptsUnexpiredAndSuppressed) {
  auto clean = lint(kDepConfig,
                    {{"src/core/api.h",
                      "// zkt-lint: remove-after(PR 9)\n"
                      "[[deprecated(\"use next()\")]] void old();\n"}});
  EXPECT_TRUE(findings_for(clean, "deprecation-lifecycle").empty())
      << clean.to_text(true);

  auto suppressed = lint(
      kDepConfig,
      {{"src/core/api.h",
        "// zkt-lint: allow(deprecation-lifecycle) removal tracked in #42\n"
        "[[deprecated(\"use next()\")]] void old();\n"}});
  ASSERT_EQ(suppressed.findings.size(), 1u);
  EXPECT_TRUE(suppressed.findings[0].suppressed);
  EXPECT_EQ(suppressed.unsuppressed(), 0u);
}

// ---------------------------------------------------------------------------
// obs-catalog

constexpr std::string_view kObsConfig = R"(
[rule.obs-catalog]
catalog = "docs/OBSERVABILITY.md"
paths = ["src"]
)";

constexpr std::string_view kCatalog =
    "| name | kind |\n"
    "|---|---|\n"
    "| `core.work.rounds` | counter |\n"
    "| `core.work.stale_rows` | counter |\n"
    "| `span.<path>.ms` | histogram |\n";

TEST(ObsCatalog, FlagsUndocumentedMetric) {
  auto result = lint(
      kObsConfig,
      {{"docs/OBSERVABILITY.md", std::string(kCatalog)},
       {"src/core/work.cpp",
        "void tick(Registry& m) {\n"
        "  m.counter(\"core.work.rounds\").add(1);\n"
        "  m.counter(\"core.work.unknown\").add(1);\n"
        "}\n"}});
  auto found = findings_for(result, "obs-catalog");
  // core.work.unknown is undocumented; core.work.stale_rows is stale.
  // Findings come back path-sorted, so the catalog row sorts first.
  ASSERT_EQ(found.size(), 2u) << result.to_text(true);
  EXPECT_EQ(found[0].path, "docs/OBSERVABILITY.md");
  EXPECT_EQ(found[0].line, 4);
  EXPECT_NE(found[0].message.find("core.work.stale_rows"), std::string::npos);
  EXPECT_EQ(found[1].path, "src/core/work.cpp");
  EXPECT_EQ(found[1].line, 3);
  EXPECT_NE(found[1].message.find("core.work.unknown"), std::string::npos);
}

TEST(ObsCatalog, TernaryNamesCheckedAndConcatFragmentsSkipped) {
  auto result = lint(
      kObsConfig,
      {{"docs/OBSERVABILITY.md", std::string(kCatalog)},
       {"src/core/work.cpp",
        "void tick(Registry& m, bool stale, const std::string& path) {\n"
        "  m.counter(stale ? \"core.work.stale_rows\" : \"core.work.rounds\")"
        ".add(1);\n"
        "  m.histogram(\"span.\" + path + \".ms\").record(1.0);\n"
        "}\n"}});
  EXPECT_TRUE(findings_for(result, "obs-catalog").empty())
      << result.to_text(true);
}

TEST(ObsCatalog, WildcardMatchesForwardAndIsExemptFromReverse) {
  auto result = lint(kObsConfig,
                     {{"docs/OBSERVABILITY.md", std::string(kCatalog)},
                      {"src/core/work.cpp",
                       "void tick(Registry& m) {\n"
                       "  m.counter(\"core.work.rounds\").add(1);\n"
                       "  m.counter(\"core.work.stale_rows\").add(1);\n"
                       "  m.histogram(\"span.prove.ms\").record(1.0);\n"
                       "}\n"}});
  EXPECT_TRUE(findings_for(result, "obs-catalog").empty())
      << result.to_text(true);
}

TEST(ObsCatalog, InertWithoutCatalogAndSuppressible) {
  // No catalog among the inputs: the rule cannot judge either direction.
  auto inert = lint(kObsConfig,
                    {{"src/core/work.cpp",
                      "void tick(Registry& m) {\n"
                      "  m.counter(\"core.work.unknown\").add(1);\n"
                      "}\n"}});
  EXPECT_TRUE(findings_for(inert, "obs-catalog").empty())
      << inert.to_text(true);

  auto suppressed = lint(
      kObsConfig,
      {{"docs/OBSERVABILITY.md", std::string(kCatalog)},
       {"src/core/work.cpp",
        "void tick(Registry& m) {\n"
        "  m.counter(\"core.work.rounds\").add(1);\n"
        "  m.counter(\"core.work.stale_rows\").add(1);\n"
        "  // zkt-lint: allow(obs-catalog) staging name, documented on launch\n"
        "  m.counter(\"core.work.unknown\").add(1);\n"
        "}\n"}});
  ASSERT_EQ(suppressed.findings.size(), 1u) << suppressed.to_text(true);
  EXPECT_TRUE(suppressed.findings[0].suppressed);
  EXPECT_EQ(suppressed.unsuppressed(), 0u);
}

// ---------------------------------------------------------------------------
// Lexer line accuracy (suppressions live and die by token line numbers)

int line_of_ident(const LexedFile& lf, std::string_view ident) {
  for (const Token& t : lf.tokens) {
    if (t.kind == Tok::ident && t.text == ident) return t.line;
  }
  return -1;
}

TEST(LintLexer, RawStringBodyKeepsLineNumbersInSync) {
  auto lf = lex(
      "const char* s = R\"(line1\n"
      "line2\n"
      "line3)\";\n"
      "int after = 1;\n");
  EXPECT_EQ(line_of_ident(lf, "after"), 4);
  // The literal's content is captured in value; text stays empty so
  // punctuator comparisons in rules never match string bodies.
  bool saw = false;
  for (const Token& t : lf.tokens) {
    if (t.kind == Tok::str) {
      saw = true;
      EXPECT_EQ(t.text, "");
      EXPECT_EQ(t.value, "line1\nline2\nline3");
      EXPECT_EQ(t.line, 1);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(LintLexer, PrefixedRawStringsLexAsOneLiteral) {
  auto lf = lex(
      "const char* a = u8R\"(x\n"
      "y)\";\n"
      "const char* b = LR\"sep(p)\"q)sep\";\n"
      "int after = 1;\n");
  EXPECT_EQ(line_of_ident(lf, "after"), 4);
  // A delimited raw string swallows the embedded )" without terminating.
  bool saw_delimited = false;
  for (const Token& t : lf.tokens) {
    if (t.kind == Tok::str && t.value == "p)\"q") saw_delimited = true;
  }
  EXPECT_TRUE(saw_delimited);
}

TEST(LintLexer, BackslashContinuationInStringKeepsLineNumbers) {
  auto lf = lex(
      "const char* s = \"abc\\\n"
      "def\";\n"
      "int after = 1;\n");
  EXPECT_EQ(line_of_ident(lf, "after"), 3);
}

TEST(LintLexer, SuppressionAfterMultilineRawStringStillMatches) {
  // Before the raw-string fix the desynced line numbers made this
  // suppression miss its finding.
  auto result = lint("", {{"src/a.cpp",
                           "const char* kDoc = R\"(usage:\n"
                           "  tool FILE\n"
                           ")\";\n"
                           "zkt::Status persist();\n"
                           "void run() {\n"
                           "  persist();  // zkt-lint: allow(result-discipline)\n"
                           "}\n"}});
  ASSERT_EQ(result.findings.size(), 1u) << result.to_text(true);
  EXPECT_TRUE(result.findings[0].suppressed);
}

TEST(LintLexer, ParsesFlowAnnotations) {
  auto lf = lex(
      "// zkt-lint: shared(one slot per task; writes are disjoint)\n"
      "int slots = 0;\n"
      "// zkt-lint: guarded_by(mu_) drained concurrently\n"
      "int queue_depth_ = 0;\n"
      "// zkt-lint: remove-after(PR 9)\n"
      "int shim = 0;\n");
  const Annotation* shared = lf.annotation("shared", 2);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->arg, "one slot per task; writes are disjoint");
  const Annotation* guarded = lf.annotation("guarded_by", 4);
  ASSERT_NE(guarded, nullptr);
  EXPECT_EQ(guarded->arg, "mu_");
  const Annotation* expiry = lf.annotation("remove-after", 6);
  ASSERT_NE(expiry, nullptr);
  EXPECT_EQ(expiry->arg, "PR 9");
  EXPECT_EQ(lf.annotation("shared", 5), nullptr);
}

// ---------------------------------------------------------------------------
// Baselines and severity

TEST(LintBaseline, RoundTripExemptsExactlyTheRecordedFindings) {
  const SourceFile bad{"src/a.cpp",
                       "zkt::Status persist();\n"
                       "void run() { persist(); }\n"};
  auto first = lint("", {bad});
  ASSERT_EQ(first.unsuppressed(), 1u);

  const std::string serialized = to_baseline(first);
  auto entries = parse_baseline(serialized);
  ASSERT_EQ(entries.size(), 1u);

  auto second = lint("", {bad});
  apply_baseline(entries, &second);
  ASSERT_EQ(second.findings.size(), 1u);
  EXPECT_TRUE(second.findings[0].baselined);
  EXPECT_EQ(second.unsuppressed(), 0u);

  // A different finding is NOT exempted by the stale baseline.
  auto third = lint("", {{"src/b.cpp",
                          "zkt::Status persist();\n"
                          "void run() { persist(); }\n"}});
  apply_baseline(entries, &third);
  EXPECT_EQ(third.unsuppressed(), 1u);
}

TEST(LintBaseline, ParserSkipsCommentsAndMalformedLines) {
  auto entries = parse_baseline(
      "# header comment\n"
      "\n"
      "src/a.cpp|result-discipline|call result dropped\n"
      "not-a-baseline-line\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, "src/a.cpp");
  EXPECT_EQ(entries[0].rule, "result-discipline");
}

TEST(LintSeverity, WarnFindingsDoNotCountAsUnsuppressed) {
  auto result = lint(
      "[rule.result-discipline]\nseverity = \"warn\"\n",
      {{"src/a.cpp",
        "zkt::Status persist();\n"
        "void run() { persist(); }\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].severity, "warn");
  EXPECT_EQ(result.unsuppressed(), 0u);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"severity\": \"warn\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Output formats

TEST(LintOutput, TextAndJsonIncludeRuleFileAndLine) {
  auto result = lint("", {{"src/a.cpp",
                           "zkt::Status persist();\n"
                           "void run() { persist(); }\n"}});
  ASSERT_EQ(result.findings.size(), 1u);
  const std::string text = result.to_text(true);
  EXPECT_NE(text.find("src/a.cpp:2"), std::string::npos) << text;
  EXPECT_NE(text.find("[result-discipline]"), std::string::npos) << text;
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"rule\": \"result-discipline\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Self-check: this repository lints clean under its own config.

TEST(LintSelfCheck, RepositoryIsClean) {
  const std::string root = ZKT_SOURCE_DIR;
  auto config_text = read_file(root + "/.zkt-lint.toml");
  ASSERT_TRUE(config_text.ok()) << config_text.error().to_string();
  auto cfg = Config::parse(config_text.value());
  ASSERT_TRUE(cfg.ok()) << cfg.error().to_string();

  // The catalog markdown rides along so the obs-catalog rule is active —
  // the self-check covers all eight rules, not just the source scanners.
  auto files =
      load_tree(root, {"src", "tools", "tests", "docs/OBSERVABILITY.md"});
  ASSERT_TRUE(files.ok()) << files.error().to_string();
  ASSERT_GT(files.value().size(), 100u);  // sanity: the tree actually loaded

  auto result = run_lint(cfg.value(), files.value());
  EXPECT_EQ(result.unsuppressed(), 0u) << result.to_text();
}

}  // namespace
}  // namespace zkt::analysis
