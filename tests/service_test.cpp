// AggregationService / QueryService behavioural tests: determinism, batch
// ordering, failure atomicity, and options plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/auditor.h"
#include "core/service.h"
#include "core/sharded.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

RLogBatch batch_of(u32 router, u64 window, std::vector<u32> srcs) {
  RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  for (u32 src : srcs) {
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {src, 0x09090909, 1000, 443, 6};
    pkt.timestamp_ms = window * 5000;
    pkt.bytes = 100;
    pkt.hop_count = 3;
    record.observe(pkt);
    batch.records.push_back(std::move(record));
  }
  return batch;
}

struct Fixture {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("svc");

  RLogBatch committed(u32 router, u64 window, std::vector<u32> srcs) {
    auto batch = batch_of(router, window, std::move(srcs));
    EXPECT_TRUE(
        board.publish(make_commitment(batch, key, window).value()).ok());
    return batch;
  }
};

TEST(Service, BatchOrderWithinRoundIsCanonical) {
  // The same batches in any submission order give identical roots/receipts.
  Fixture fx;
  auto b0 = fx.committed(0, 1, {10, 11});
  auto b1 = fx.committed(1, 1, {20});
  auto b2 = fx.committed(2, 1, {30, 31, 32});

  AggregationService s1(fx.board);
  auto r1 = s1.aggregate({b0, b1, b2});
  ASSERT_TRUE(r1.ok());
  AggregationService s2(fx.board);
  auto r2 = s2.aggregate({b2, b0, b1});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().journal.new_root, r2.value().journal.new_root);
  EXPECT_EQ(r1.value().receipt.claim.digest(),
            r2.value().receipt.claim.digest());
}

TEST(Service, RoundsAreBitwiseDeterministic) {
  Fixture fx;
  auto batch = fx.committed(0, 1, {1, 2, 3});
  AggregationService s1(fx.board);
  AggregationService s2(fx.board);
  auto r1 = s1.aggregate({batch});
  auto r2 = s2.aggregate({batch});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().receipt.to_bytes(), r2.value().receipt.to_bytes());
}

TEST(Service, FailedRoundLeavesStateUntouched) {
  Fixture fx;
  auto good = fx.committed(0, 1, {1, 2});
  AggregationService service(fx.board);
  ASSERT_TRUE(service.aggregate({good}).ok());
  const auto root_before = service.state().root();
  const auto claim_before = service.last_claim_digest().value();

  // Tampered batch for window 2: guest aborts.
  auto bad = fx.committed(0, 2, {3});
  bad.records[0].bytes += 1;
  ASSERT_FALSE(service.aggregate({bad}).ok());
  EXPECT_EQ(service.state().root(), root_before);
  EXPECT_EQ(service.last_claim_digest().value(), claim_before);
  EXPECT_EQ(service.rounds_completed(), 1u);

  // And the service still works for honest data afterwards.
  auto good2 = fx.committed(1, 2, {4});
  EXPECT_TRUE(service.aggregate({good2}).ok());
}

TEST(Service, EmptyRoundProvesVacuously) {
  // A round with zero batches is a valid (if pointless) state transition.
  Fixture fx;
  AggregationService service(fx.board);
  auto round = service.aggregate({});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  EXPECT_EQ(round.value().journal.new_entry_count, 0u);
  Auditor auditor(fx.board);
  EXPECT_TRUE(auditor.accept_round(round.value().receipt).ok());
}

TEST(Service, EmptyBatchIsAggregatable) {
  // A router that saw no traffic still commits (to an empty batch).
  Fixture fx;
  auto empty = fx.committed(0, 1, {});
  AggregationService service(fx.board);
  auto round = service.aggregate({empty});
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().journal.new_entry_count, 0u);
  EXPECT_EQ(round.value().journal.commitments.size(), 1u);
}

TEST(Service, CompositeOptionsProduceCompositeReceipts) {
  Fixture fx;
  auto batch = fx.committed(0, 1, {1});
  zvm::ProveOptions options;
  options.seal_kind = zvm::SealKind::composite;
  options.num_queries = 8;
  AggregationService service(fx.board, AggregationOptions{options});
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().receipt.seal_kind, zvm::SealKind::composite);
  // Chained second round embeds the first as an assumption receipt.
  auto batch2 = fx.committed(0, 2, {1});
  auto round2 = service.aggregate({batch2});
  ASSERT_TRUE(round2.ok());
  EXPECT_EQ(round2.value().receipt.assumption_receipts.size(), 1u);
  zvm::Verifier verifier(8);
  EXPECT_TRUE(
      verifier.verify(round2.value().receipt, guest_images().aggregate).ok());
}

TEST(Service, QueryBeforeAnyRoundFails) {
  Fixture fx;
  AggregationService service(fx.board);
  QueryService queries(service);
  EXPECT_FALSE(queries.run(Query::count()).ok());
  EXPECT_FALSE(queries.run(Query::count(), {.mode = QueryMode::selective,
                                            .prove_options_override = {}})
                   .ok());
}

TEST(Service, NoRoundMeansNoClaimDigest) {
  // The chain head must be an explicit error before genesis — an all-zero
  // digest would be forgeable as a "previous claim".
  Fixture fx;
  AggregationService service(fx.board);
  ASSERT_FALSE(service.last_claim_digest().ok());
  EXPECT_EQ(service.last_claim_digest().error().code, Errc::chain_broken);
  ASSERT_TRUE(service.aggregate({}).ok());
  EXPECT_TRUE(service.last_claim_digest().ok());
  EXPECT_EQ(service.last_claim_digest().value(),
            service.last_receipt().claim.digest());
}

TEST(Service, SelectiveQueryOnEmptyStateWorks) {
  Fixture fx;
  AggregationService service(fx.board);
  ASSERT_TRUE(service.aggregate({}).ok());
  QueryService queries(service);
  QueryOptions selective;
  selective.mode = QueryMode::selective;
  auto resp = queries.run(Query::count(), selective);
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp.value().journal.result.matched, 0u);
}

TEST(Service, ShardedOptionsConfigureDeterministically) {
  // Two services built from the same ShardedOptions must prove identical
  // shard rounds, and join_fanout = 0 disables the fold (pre-tree
  // behavior: per-shard receipts are the round's proof objects). This
  // replaces the PR-7 deprecated-shim equivalence test — the positional
  // ctor and the Round alias are gone.
  Fixture fx;
  auto batch = fx.committed(0, 1, {1, 2, 3, 4});
  zvm::ProveOptions prove;
  prove.seal_kind = zvm::SealKind::composite;
  const ShardedOptions options{
      .shard_count = 2, .join_fanout = 0, .prove_options = prove};
  ShardedAggregationService first(fx.board, options);
  ShardedAggregationService second(fx.board, options);
  auto first_round = first.aggregate({batch});
  auto second_round = second.aggregate({batch});
  ASSERT_TRUE(first_round.ok()) << first_round.error().to_string();
  ASSERT_TRUE(second_round.ok());
  EXPECT_FALSE(first_round.value().tree_seal.has_value());
  ASSERT_EQ(first_round.value().shard_rounds.size(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(first_round.value().shard_rounds[s].receipt.claim.digest(),
              second_round.value().shard_rounds[s].receipt.claim.digest());
  }
}

TEST(Service, QueryOptionsProveOverrideTakesEffect) {
  Fixture fx;
  auto batch = fx.committed(0, 1, {1});
  AggregationService service(fx.board);
  ASSERT_TRUE(service.aggregate({batch}).ok());
  QueryService queries(service);  // service default: succinct seals
  zvm::ProveOptions composite;
  composite.seal_kind = zvm::SealKind::composite;
  auto resp = queries.run(Query::count(),
                          {.mode = QueryMode::complete,
                           .prove_options_override = composite});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().receipt.seal_kind, zvm::SealKind::composite);
  // Without the override the construction-time options still apply.
  auto plain = queries.run(Query::count());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().receipt.seal_kind, zvm::SealKind::succinct);
}

TEST(Service, SegmentedProvingWorksThroughTheFullStack) {
  // Tiny segments force multi-segment seals through aggregation, chaining,
  // queries and audit.
  Fixture fx;
  zvm::ProveOptions options;
  options.max_segment_rows = 16;
  AggregationService service(fx.board, AggregationOptions{options});
  auto b1 = fx.committed(0, 1, {1, 2, 3, 4, 5});
  auto r1 = service.aggregate({b1});
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(r1.value().prove_info.segments, 1u);

  auto b2 = fx.committed(0, 2, {1, 6});
  auto r2 = service.aggregate({b2});
  ASSERT_TRUE(r2.ok());

  Auditor auditor(fx.board);
  ASSERT_TRUE(auditor.accept_round(r1.value().receipt).ok());
  ASSERT_TRUE(auditor.accept_round(r2.value().receipt).ok());

  QueryService queries(service, QueryServiceOptions{options});
  auto resp = queries.run(Query::sum(QField::packets));
  ASSERT_TRUE(resp.ok());
  EXPECT_GT(resp.value().prove_info.segments, 1u);
  EXPECT_TRUE(auditor.verify_query(resp.value().receipt).ok());
}

TEST(Service, WeightedCyclesReflectShaShare) {
  Fixture fx;
  auto batch = fx.committed(0, 1, {1, 2, 3});
  AggregationService service(fx.board);
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  const auto& info = round.value().prove_info;
  EXPECT_EQ(info.weighted_cycles(),
            info.sha_rows * 68 + (info.cycles - info.sha_rows));
  EXPECT_GT(info.weighted_cycles(), info.cycles);
}

TEST(Service, ConcurrentBoardPublishes) {
  CommitmentBoard board;
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&board, &failures, t] {
      const auto key = crypto::schnorr_keygen_from_seed(
          "concurrent-" + std::to_string(t));
      for (u64 w = 1; w <= 20; ++w) {
        auto batch = batch_of(static_cast<u32>(t), w, {static_cast<u32>(w)});
        auto commitment = make_commitment(batch, key, w);
        if (!commitment.ok() || !board.publish(commitment.value()).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(board.size(), kThreads * 20u);
}

TEST(Service, ProveInfoIspopulated) {
  Fixture fx;
  auto batch = fx.committed(0, 1, {1, 2, 3, 4});
  AggregationService service(fx.board);
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  EXPECT_GT(round.value().prove_info.cycles, 0u);
  EXPECT_GT(round.value().prove_info.sha_rows, 0u);
  EXPECT_GE(round.value().prove_info.segments, 1u);
  EXPECT_GT(round.value().prove_info.total_ms, 0.0);
  EXPECT_EQ(round.value().prove_info.cycles,
            round.value().receipt.claim.cycle_count);
}

}  // namespace
}  // namespace zkt::core
