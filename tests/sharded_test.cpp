// Sharded aggregation tests: split-proof soundness, shard assignment,
// end-to-end sharded rounds, sharded audit acceptance, and tamper rejection.
#include <gtest/gtest.h>

#include "core/sharded.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

RLogBatch build_batch(u32 router, u64 window, u32 flows) {
  RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  for (u32 f = 0; f < flows; ++f) {
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {0x0A000000 + f * 7 + router, 0x09090909,
               static_cast<u16>(1000 + f), 443, 6};
    pkt.timestamp_ms = window * 5000 + f;
    pkt.bytes = 100 + f;
    pkt.hop_count = 5;
    record.observe(pkt);
    batch.records.push_back(std::move(record));
  }
  return batch;
}

struct Fixture {
  CommitmentBoard board;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("shard-fix");

  RLogBatch committed(u32 router, u64 window, u32 flows) {
    auto batch = build_batch(router, window, flows);
    EXPECT_TRUE(
        board.publish(make_commitment(batch, key, window * 5000).value())
            .ok());
    return batch;
  }
};

TEST(ShardOf, DeterministicAndInRange) {
  for (u32 count : {1u, 2u, 4u, 16u}) {
    for (u32 f = 0; f < 50; ++f) {
      const netflow::FlowKey k{f, f * 3, static_cast<u16>(f), 443, 6};
      const u32 s = shard_of(k, count);
      EXPECT_LT(s, count);
      EXPECT_EQ(s, shard_of(k, count));
    }
  }
}

TEST(SubBatch, PartitionIsCompleteAndDisjoint) {
  const auto batch = build_batch(0, 1, 50);
  for (u32 count : {1u, 3u, 8u}) {
    u64 total = 0;
    for (u32 s = 0; s < count; ++s) {
      const auto sub = sub_batch_for(batch, s, count);
      EXPECT_EQ(sub.router_id, batch.router_id);
      EXPECT_EQ(sub.window_id, batch.window_id);
      for (const auto& rec : sub.records) {
        EXPECT_EQ(shard_of(rec.key, count), s);
      }
      total += sub.records.size();
    }
    EXPECT_EQ(total, batch.records.size());
  }
}

TEST(SplitJournalSchema, RoundTrip) {
  SplitJournal j;
  j.source = {1, 2, crypto::sha256(std::string_view("src")), 10};
  j.shard_count = 2;
  j.shards = {{0, crypto::sha256(std::string_view("s0")), 6},
              {1, crypto::sha256(std::string_view("s1")), 4}};
  Writer w;
  j.write(w);
  auto parsed = SplitJournal::parse(w.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().source, j.source);
  EXPECT_EQ(parsed.value().shards, j.shards);
  EXPECT_EQ(parsed.value().shard_count, 2u);
}

class ShardedE2E : public ::testing::TestWithParam<u32> {};

TEST_P(ShardedE2E, RoundsAggregateAndAudit) {
  const u32 shard_count = GetParam();
  Fixture fx;
  ShardedAggregationService service(fx.board,
                                    ShardedOptions{.shard_count = shard_count});
  ShardedAuditor auditor(fx.board, shard_count);

  // Two rounds, two routers each, overlapping flows.
  for (u64 window = 1; window <= 2; ++window) {
    std::vector<RLogBatch> batches = {fx.committed(0, window, 20),
                                      fx.committed(1, window, 15)};
    auto round = service.aggregate(batches);
    ASSERT_TRUE(round.ok()) << round.error().to_string();
    EXPECT_EQ(round.value().split_receipts.size(), 2u);
    EXPECT_EQ(round.value().shard_rounds.size(), shard_count);
    // >= 2 shards fold into one tree seal; a single chain has nothing to
    // fold.
    EXPECT_EQ(round.value().tree_seal.has_value(), shard_count >= 2);
    auto accepted = auditor.accept_round(round.value());
    ASSERT_TRUE(accepted.ok()) << accepted.to_string();
  }
  EXPECT_EQ(auditor.rounds_accepted(), 2u);

  // Shards jointly hold every distinct flow exactly once.
  u64 expected_flows = 0;
  {
    std::set<Bytes> keys;
    for (u64 window = 1; window <= 2; ++window) {
      for (u32 router = 0; router < 2; ++router) {
        const auto batch = build_batch(router, window, router == 0 ? 20 : 15);
        for (const auto& rec : batch.records) {
          keys.insert(rec.key.canonical_bytes());
        }
      }
    }
    expected_flows = keys.size();
  }
  EXPECT_EQ(auditor.total_entries(), expected_flows);

  u64 shard_total = 0;
  for (u32 s = 0; s < shard_count; ++s) {
    shard_total += service.shard_state(s).entry_count();
  }
  EXPECT_EQ(shard_total, expected_flows);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedE2E,
                         ::testing::Values(1, 2, 4));

TEST(Sharded, ShardedTotalsMatchUnsharded) {
  Fixture fx;
  auto batch = fx.committed(0, 1, 30);

  AggregationService plain(fx.board);
  ASSERT_TRUE(plain.aggregate({batch}).ok());
  const auto reference =
      evaluate_query(Query::sum(QField::bytes), plain.state().entries());

  Fixture fx2;
  auto batch2 = fx2.committed(0, 1, 30);
  ShardedAggregationService sharded(fx2.board, ShardedOptions{.shard_count = 4});
  ASSERT_TRUE(sharded.aggregate({batch2}).ok());
  u64 sharded_sum = 0;
  for (u32 s = 0; s < 4; ++s) {
    sharded_sum +=
        evaluate_query(Query::sum(QField::bytes),
                       sharded.shard_state(s).entries())
            .sum;
  }
  EXPECT_EQ(sharded_sum, reference.sum);
}

TEST(AdaptiveShards, ControllerDoublesHalvesAndClamps) {
  AdaptiveShardController ctl(
      4, AdaptiveShardOptions{.min_shards = 2,
                              .max_shards = 8,
                              .split_above = 1.5,
                              .merge_below = 1.05,
                              .patience = 2});
  EXPECT_EQ(ctl.recommended(), 4u);

  // One hot round is not enough (hysteresis)...
  ctl.observe(2.0);
  EXPECT_EQ(ctl.recommended(), 4u);
  // ...two consecutive hot rounds double the advice.
  ctl.observe(2.0);
  EXPECT_EQ(ctl.recommended(), 8u);
  // Clamped at max_shards even if the imbalance persists.
  ctl.observe(3.0);
  ctl.observe(3.0);
  EXPECT_EQ(ctl.recommended(), 8u);

  // A middling round resets both streaks.
  ctl.observe(1.2);
  ctl.observe(1.0);
  EXPECT_EQ(ctl.recommended(), 8u);
  // Balanced rounds halve, repeatedly, down to min_shards.
  ctl.observe(1.0);
  EXPECT_EQ(ctl.recommended(), 4u);
  ctl.observe(1.0);
  ctl.observe(1.0);
  EXPECT_EQ(ctl.recommended(), 2u);
  ctl.observe(1.0);
  ctl.observe(1.0);
  EXPECT_EQ(ctl.recommended(), 2u);
  EXPECT_EQ(ctl.observations(), 11u);
}

TEST(AdaptiveShards, ControllerClampsInitialAndDegenerateOptions) {
  // Initial fan-out outside the clamp is pulled inside; patience=0 behaves
  // like 1 (every round can move the advice).
  AdaptiveShardController ctl(32, AdaptiveShardOptions{.min_shards = 1,
                                                       .max_shards = 4,
                                                       .patience = 0});
  EXPECT_EQ(ctl.recommended(), 4u);
  ctl.observe(1.0);
  EXPECT_EQ(ctl.recommended(), 2u);
}

TEST(AdaptiveShards, ServicePinsFanOutPerWindowAndOnlyAdvises) {
  Fixture fx;
  ShardedAggregationService service(
      fx.board,
      ShardedOptions{.shard_count = 2,
                     .adaptive_shards = AdaptiveShardOptions{
                         .min_shards = 1, .max_shards = 4, .patience = 1}});
  EXPECT_EQ(service.recommended_shard_count(), 2u);

  auto round = service.aggregate({fx.committed(0, 1, 12)});
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  // The round records the fan-out it was actually proven with, and the live
  // service never reshards mid-chain regardless of the advice.
  EXPECT_EQ(round.value().shard_count, 2u);
  EXPECT_EQ(service.shard_count(), 2u);
  const u32 advised = service.recommended_shard_count();
  EXPECT_GE(advised, 1u);
  EXPECT_LE(advised, 4u);

  auto round2 = service.aggregate({fx.committed(0, 2, 12)});
  ASSERT_TRUE(round2.ok());
  EXPECT_EQ(round2.value().shard_count, 2u);
  EXPECT_EQ(service.shard_count(), 2u);

  // Without adaptive mode the accessor just mirrors the fixed fan-out.
  Fixture fx2;
  ShardedAggregationService fixed(fx2.board,
                                  ShardedOptions{.shard_count = 3});
  EXPECT_EQ(fixed.recommended_shard_count(), 3u);
}

TEST(Sharded, TamperedBatchFailsSplitProof) {
  Fixture fx;
  auto batch = fx.committed(0, 1, 10);
  batch.records[2].bytes += 1;  // post-commitment edit
  ShardedAggregationService service(fx.board, ShardedOptions{.shard_count = 2});
  auto round = service.aggregate({batch});
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.error().code, Errc::guest_abort);
}

TEST(Sharded, UncommittedBatchRejected) {
  Fixture fx;
  ShardedAggregationService service(fx.board, ShardedOptions{.shard_count = 2});
  auto round = service.aggregate({build_batch(9, 9, 5)});
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.error().code, Errc::commitment_missing);
}

TEST(Sharded, AuditorRejectsForeignSplit) {
  // A round proven against a different board must not be accepted.
  Fixture trusted;
  Fixture rogue;
  auto batch = rogue.committed(0, 1, 10);
  ShardedAggregationService service(rogue.board, ShardedOptions{.shard_count = 2});
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  ShardedAuditor auditor(trusted.board, 2);
  auto rejected = auditor.accept_round(round.value());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), Errc::commitment_missing);
}

TEST(Sharded, AuditorRejectsWrongShardCount) {
  Fixture fx;
  auto batch = fx.committed(0, 1, 10);
  ShardedAggregationService service(fx.board, ShardedOptions{.shard_count = 2});
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  ShardedAuditor auditor(fx.board, 4);
  EXPECT_FALSE(auditor.accept_round(round.value()).ok());
}

TEST(Sharded, AuditorRejectsDroppedShardRound) {
  Fixture fx;
  auto batch = fx.committed(0, 1, 10);
  ShardedAggregationService service(
      fx.board, ShardedOptions{.shard_count = 2, .join_fanout = 0});
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  auto truncated = round.value();
  truncated.shard_rounds.pop_back();
  ShardedAuditor auditor(fx.board, 2);
  EXPECT_FALSE(auditor.accept_round(truncated).ok());
}

TEST(Sharded, AuditorRejectsCrossShardSwap) {
  // Swapping two shards' rounds breaks the split-output matching (each
  // shard's consumed hashes are shard-specific).
  Fixture fx;
  auto batch = fx.committed(0, 1, 20);
  ShardedAggregationService service(
      fx.board, ShardedOptions{.shard_count = 2, .join_fanout = 0});
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  auto swapped = round.value();
  std::swap(swapped.shard_rounds[0], swapped.shard_rounds[1]);
  ShardedAuditor auditor(fx.board, 2);
  EXPECT_FALSE(auditor.accept_round(swapped).ok());
}

}  // namespace
}  // namespace zkt::core
