// common::ThreadPool behaviour: bounded queue with backpressure, exception
// propagation through futures and parallel_for, deadlock-free nested
// parallel_for (help-waiting), and clean shutdown that drains accepted work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

using namespace zkt;
using namespace zkt::common;

namespace {

/// Lets a test hold every pool worker hostage until released.
class Gate {
 public:
  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

}  // namespace

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(ThreadPool::Options{.threads = 2, .max_queue = 16});
  EXPECT_EQ(pool.thread_count(), 2u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, TrySubmitReportsFullQueue) {
  ThreadPool pool(ThreadPool::Options{.threads = 1, .max_queue = 1});
  Gate gate;
  // Occupy the single worker, then fill the single queue slot.
  auto running = pool.submit([&] { gate.wait(); });
  auto queued = pool.try_submit([] { return 1; });
  // The worker may not have dequeued the first task yet; wait until the
  // queue slot frees up so the next try_submit deterministically succeeds.
  while (!queued.has_value()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    queued = pool.try_submit([] { return 1; });
  }
  EXPECT_EQ(pool.queue_depth(), 1u);
  // Queue now full: try_submit must refuse rather than block.
  auto rejected = pool.try_submit([] { return 2; });
  EXPECT_FALSE(rejected.has_value());
  gate.release();
  running.get();
  EXPECT_EQ(queued->get(), 1);
}

TEST(ThreadPoolTest, SubmitBlocksUntilSpaceThenCompletes) {
  ThreadPool pool(ThreadPool::Options{.threads = 1, .max_queue = 1});
  Gate gate;
  auto running = pool.submit([&] { gate.wait(); });
  std::optional<std::future<int>> queued;
  while (!queued.has_value()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    queued = pool.try_submit([] { return 1; });
  }
  // submit() from another thread must block on the full queue, then succeed
  // once the gated task finishes and the queue drains.
  std::atomic<bool> submitted{false};
  std::thread blocker([&] {
    auto f = pool.submit([] { return 3; });
    submitted.store(true);
    EXPECT_EQ(f.get(), 3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted.load());
  gate.release();
  blocker.join();
  EXPECT_TRUE(submitted.load());
  running.get();
  EXPECT_EQ(queued->get(), 1);
}

TEST(ThreadPoolTest, FuturePropagatesException) {
  ThreadPool pool(ThreadPool::Options{.threads = 1, .max_queue = 4});
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool must survive a throwing task.
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(ThreadPool::Options{.threads = 3, .max_queue = 64});
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<u32>> hits(kN);
  pool.parallel_for(kN, 16, [&](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, kN);
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(ThreadPool::Options{.threads = 2, .max_queue = 8});
  std::atomic<size_t> count{0};
  pool.parallel_for(0, 8, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.parallel_for(3, 8, [&](size_t begin, size_t end) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 3u);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstError) {
  ThreadPool pool(ThreadPool::Options{.threads = 2, .max_queue = 8});
  EXPECT_THROW(
      pool.parallel_for(1000, 8,
                        [&](size_t begin, size_t) {
                          if (begin >= 500) throw std::runtime_error("chunk");
                        }),
      std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<size_t> done{0};
  pool.parallel_for(100, 8, [&](size_t begin, size_t end) {
    done.fetch_add(end - begin);
  });
  EXPECT_EQ(done.load(), 100u);
}

TEST(ThreadPoolTest, NestedParallelForOnSingleWorkerDoesNotDeadlock) {
  // The regression this guards: a pooled outer task whose body runs another
  // parallel_for on the same pool. With one worker, a blocking wait would
  // deadlock; help-waiting must drain the inner chunks instead.
  ThreadPool pool(ThreadPool::Options{.threads = 1, .max_queue = 8});
  std::atomic<size_t> inner_total{0};
  pool.parallel_for(4, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.parallel_for(64, 4, [&](size_t b, size_t e) {
        inner_total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 4u * 64u);
}

TEST(ThreadPoolTest, DestructorDrainsAcceptedWork) {
  std::atomic<size_t> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{.threads = 2, .max_queue = 64});
    for (int i = 0; i < 32; ++i) {
      // Futures intentionally dropped: accepted work must still run.
      (void)pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 32u);
}

TEST(ThreadPoolTest, CountersAdvance) {
  ThreadPool pool(ThreadPool::Options{.threads = 2, .max_queue = 16});
  pool.parallel_for(1024, 8, [](size_t, size_t) {});
  EXPECT_GE(pool.tasks_executed() + pool.chunks_inline(), 1u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, SharedSingletonIsStable) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}
