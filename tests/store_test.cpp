// LogStore tests: CRUD semantics, scans, WAL persistence and recovery
// (including torn/corrupt tails), and concurrent producers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "store/logstore.h"

namespace zkt::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ = std::filesystem::temp_directory_path() /
                ("zkt_store_test_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()
                 + ".wal");
    std::filesystem::remove(wal_path_);
    std::filesystem::remove(wal_path_.string() + ".snap");
    std::filesystem::remove(wal_path_.string() + ".snap.tmp");
  }
  void TearDown() override {
    std::filesystem::remove(wal_path_);
    std::filesystem::remove(wal_path_.string() + ".snap");
    std::filesystem::remove(wal_path_.string() + ".snap.tmp");
  }

  std::filesystem::path wal_path_;
};

TEST(Crc32, KnownVector) {
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(LogStoreMem, AppendAndScan) {
  LogStore store;
  for (u64 w = 1; w <= 3; ++w) {
    for (u64 r = 0; r < 4; ++r) {
      auto id = store.append("rlogs", w, r, bytes_of("payload"));
      ASSERT_TRUE(id.ok());
    }
  }
  EXPECT_EQ(store.row_count("rlogs"), 12u);
  EXPECT_EQ(store.scan("rlogs", 2, 2).size(), 4u);
  EXPECT_EQ(store.scan("rlogs", 1, 3).size(), 12u);
  EXPECT_EQ(store.scan("rlogs", 9, 9).size(), 0u);
  EXPECT_EQ(store.scan_exact("rlogs", 2, 3).size(), 1u);
  EXPECT_EQ(store.scan("missing", 0, ~0ULL).size(), 0u);
}

TEST(LogStoreMem, RowIdsMonotonicPerTable) {
  LogStore store;
  EXPECT_EQ(store.append("a", 0, 0, {}).value(), 0u);
  EXPECT_EQ(store.append("a", 0, 0, {}).value(), 1u);
  EXPECT_EQ(store.append("b", 0, 0, {}).value(), 0u);
}

TEST(LogStoreMem, LatestAndLastRow) {
  LogStore store;
  (void)store.append("t", 5, 1, bytes_of("first"));
  (void)store.append("t", 5, 2, bytes_of("second"));
  (void)store.append("t", 6, 1, bytes_of("third"));
  auto latest5 = store.latest("t", 5);
  ASSERT_TRUE(latest5.has_value());
  EXPECT_EQ(latest5->payload, bytes_of("second"));
  auto last = store.last_row("t");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->payload, bytes_of("third"));
  EXPECT_FALSE(store.latest("t", 9).has_value());
  EXPECT_FALSE(store.last_row("empty").has_value());
}

TEST(LogStoreMem, TableNames) {
  LogStore store;
  (void)store.append("zeta", 0, 0, {});
  (void)store.append("alpha", 0, 0, {});
  const auto names = store.table_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");  // sorted by map order
  EXPECT_EQ(names[1], "zeta");
}

TEST_F(StoreTest, WalPersistsAcrossRestart) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 20; ++i) {
      ASSERT_TRUE(store.append("rlogs", i / 4, i % 4,
                               bytes_of("row-" + std::to_string(i)))
                      .ok());
    }
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("rlogs"), 20u);
  EXPECT_EQ(reopened.stats().recovered_rows, 20u);
  auto rows = reopened.scan("rlogs", 2, 2);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].payload, bytes_of("row-8"));
  // And the store keeps appending after recovery.
  ASSERT_TRUE(reopened.append("rlogs", 9, 9, bytes_of("more")).ok());
}

TEST_F(StoreTest, AppendWithoutRecoverFails) {
  LogStore store(StoreConfig{.wal_path = wal_path_.string()});
  EXPECT_FALSE(store.append("t", 0, 0, {}).ok());
}

TEST_F(StoreTest, TruncatedTailFrameDropped) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 5; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(100, 'x')).ok());
    }
  }
  // Simulate a torn write: chop off the last 30 bytes.
  const auto full = std::filesystem::file_size(wal_path_);
  std::filesystem::resize_file(wal_path_, full - 30);

  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 4u);
  EXPECT_EQ(reopened.stats().truncated_frames, 1u);
}

TEST_F(StoreTest, CorruptPayloadDetectedByCrc) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    ASSERT_TRUE(store.append("t", 1, 0, Bytes(64, 'a')).ok());
    ASSERT_TRUE(store.append("t", 2, 0, Bytes(64, 'b')).ok());
  }
  // Flip a byte inside the second frame's payload.
  {
    std::FILE* f = std::fopen(wal_path_.string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const auto size = std::filesystem::file_size(wal_path_);
    std::fseek(f, static_cast<long>(size - 20), SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 1u);  // second frame rejected
  EXPECT_EQ(reopened.stats().truncated_frames, 1u);
}

TEST_F(StoreTest, RecoverOnMissingFileIsOk) {
  LogStore store(StoreConfig{.wal_path = wal_path_.string()});
  EXPECT_TRUE(store.recover().ok());
  EXPECT_TRUE(store.append("t", 0, 0, {}).ok());
}

TEST_F(StoreTest, CheckpointCompactsAndRecovers) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(200, 'a')).ok());
    }
    ASSERT_TRUE(store.checkpoint().ok());
    // WAL is now empty; more appends land in the fresh WAL.
    for (u64 i = 10; i < 15; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(200, 'b')).ok());
    }
    EXPECT_EQ(store.stats().checkpoints, 1u);
  }
  // The WAL only holds the post-checkpoint tail.
  EXPECT_LT(std::filesystem::file_size(wal_path_), 5u * 300u);

  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 15u);
  EXPECT_EQ(reopened.stats().snapshot_rows, 10u);
  EXPECT_EQ(reopened.stats().recovered_rows, 5u);
  EXPECT_EQ(reopened.scan("t", 3, 3).size(), 1u);
  EXPECT_EQ(reopened.scan("t", 12, 12).size(), 1u);
}

TEST_F(StoreTest, DoubleCheckpointIsIdempotentish) {
  LogStore store(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(store.recover().ok());
  ASSERT_TRUE(store.append("t", 1, 1, bytes_of("x")).ok());
  ASSERT_TRUE(store.checkpoint().ok());
  ASSERT_TRUE(store.checkpoint().ok());
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 1u);
}

TEST_F(StoreTest, CorruptSnapshotRejected) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    ASSERT_TRUE(store.append("t", 1, 1, Bytes(100, 'z')).ok());
    ASSERT_TRUE(store.checkpoint().ok());
  }
  const std::string snap = wal_path_.string() + ".snap";
  {
    std::FILE* f = std::fopen(snap.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  EXPECT_FALSE(reopened.recover().ok());
}

TEST(LogStoreMem, DropRowsByWindow) {
  LogStore store;
  for (u64 w = 1; w <= 5; ++w) {
    for (u64 r = 0; r < 2; ++r) {
      ASSERT_TRUE(store.append("rlogs", w, r, bytes_of("x")).ok());
    }
  }
  EXPECT_EQ(store.drop_rows("rlogs", 3), 6u);
  EXPECT_EQ(store.row_count("rlogs"), 4u);
  EXPECT_TRUE(store.scan("rlogs", 1, 3).empty());
  EXPECT_EQ(store.scan("rlogs", 4, 5).size(), 4u);
  EXPECT_EQ(store.drop_rows("rlogs", 3), 0u);       // idempotent
  EXPECT_EQ(store.drop_rows("missing", 99), 0u);    // unknown table
}

TEST(LogStoreMem, CheckpointNoopWithoutWal) {
  LogStore store;
  EXPECT_TRUE(store.checkpoint().ok());
}

TEST(LogStoreMem, ForEachVisitsRangeInAppendOrder) {
  LogStore store;
  for (u64 w = 1; w <= 3; ++w) {
    for (u64 r = 0; r < 2; ++r) {
      ASSERT_TRUE(store.append("t", w, r, bytes_of("x")).ok());
    }
  }
  std::vector<std::pair<u64, u64>> seen;
  ASSERT_TRUE(store
                  .for_each("t", 2, 3,
                            [&](const StoredRow& row) {
                              seen.emplace_back(row.k1, row.k2);
                            })
                  .ok());
  const std::vector<std::pair<u64, u64>> want = {
      {2, 0}, {2, 1}, {3, 0}, {3, 1}};
  EXPECT_EQ(seen, want);
  // Unknown tables visit nothing but are not an error.
  EXPECT_TRUE(store.for_each("missing", 0, ~0ULL,
                             [&](const StoredRow&) { FAIL(); })
                  .ok());
}

TEST(FaultInjector, OneShotCountdownSemantics) {
  FaultInjector faults;
  EXPECT_FALSE(faults.armed(FaultPoint::scan));
  EXPECT_FALSE(faults.fire(FaultPoint::scan));  // unarmed: never fires
  faults.arm(FaultPoint::scan, 2);
  EXPECT_TRUE(faults.armed(FaultPoint::scan));
  EXPECT_FALSE(faults.fire(FaultPoint::scan));  // two hits pass...
  EXPECT_FALSE(faults.fire(FaultPoint::scan));
  EXPECT_TRUE(faults.fire(FaultPoint::scan));   // ...then fire once
  EXPECT_FALSE(faults.fire(FaultPoint::scan));  // plan consumed
  EXPECT_EQ(faults.injected(), 1u);

  faults.arm(FaultPoint::fsync);
  faults.disarm(FaultPoint::fsync);
  EXPECT_FALSE(faults.fire(FaultPoint::fsync));
  faults.arm(FaultPoint::wal_append);
  faults.disarm_all();
  EXPECT_FALSE(faults.armed(FaultPoint::wal_append));
  EXPECT_EQ(faults.injected(), 1u);
}

TEST(LogStoreMem, InjectedScanFaultFailsForEachOnce) {
  LogStore store;
  ASSERT_TRUE(store.append("t", 1, 0, bytes_of("x")).ok());
  FaultInjector faults;
  store.set_fault_injector(&faults);
  faults.arm(FaultPoint::scan);
  auto status = store.for_each("t", 0, ~0ULL, [](const StoredRow&) {});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Errc::io_error);
  // One-shot: the next visit succeeds (a transient fault, retryable).
  EXPECT_TRUE(store.for_each("t", 0, ~0ULL, [](const StoredRow&) {}).ok());
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, InjectedAppendFaultFailsBeforeAnyWrite) {
  {
    FaultInjector faults;
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    store.set_fault_injector(&faults);
    faults.arm(FaultPoint::wal_append);
    auto id = store.append("t", 1, 0, bytes_of("x"));
    ASSERT_FALSE(id.ok());
    EXPECT_EQ(id.error().code, Errc::io_error);
    EXPECT_EQ(store.row_count("t"), 0u);  // failed append leaves no row
    // The retry lands cleanly: nothing reached the WAL the first time.
    ASSERT_TRUE(store.append("t", 1, 0, bytes_of("x")).ok());
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 1u);
  EXPECT_EQ(reopened.stats().truncated_frames, 0u);
  EXPECT_EQ(reopened.stats().deduped_frames, 0u);
}

TEST_F(StoreTest, InjectedFsyncFaultMakesRetrySafeViaDedup) {
  // The fsync ambiguity: the frame IS on disk but the append reports
  // failure. A retry writes a second frame with the same row id; replay
  // deduplicates, so "retry on transient error" is safe.
  {
    FaultInjector faults;
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    ASSERT_TRUE(store.append("t", 1, 0, bytes_of("a")).ok());
    store.set_fault_injector(&faults);
    faults.arm(FaultPoint::fsync);
    auto id = store.append("t", 2, 0, bytes_of("b"));
    ASSERT_FALSE(id.ok());
    EXPECT_EQ(id.error().code, Errc::io_error);
    EXPECT_EQ(store.row_count("t"), 1u);
    ASSERT_TRUE(store.append("t", 2, 0, bytes_of("b")).ok());  // the retry
    EXPECT_EQ(store.row_count("t"), 2u);
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 2u);  // not 3: duplicate frame skipped
  EXPECT_EQ(reopened.stats().deduped_frames, 1u);
  EXPECT_EQ(reopened.stats().truncated_frames, 0u);
}

TEST_F(StoreTest, InjectedTornWriteKillsHandleUntilRestart) {
  LogStore store(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(store.recover().ok());
  for (u64 i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.append("t", i, 0, Bytes(100, 'x')).ok());
  }
  FaultInjector faults;
  store.set_fault_injector(&faults);
  faults.arm(FaultPoint::wal_torn_write);
  auto id = store.append("t", 3, 0, Bytes(100, 'y'));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, Errc::io_error);
  // The "process" is dead: appending past a torn frame would make the WAL
  // tail unreadable, so every further append fails until a restart.
  EXPECT_FALSE(store.append("t", 4, 0, bytes_of("z")).ok());
  store.set_fault_injector(nullptr);

  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 3u);  // prefix intact, torn frame gone
  EXPECT_EQ(reopened.stats().truncated_frames, 1u);
  ASSERT_TRUE(reopened.append("t", 3, 0, Bytes(100, 'y')).ok());
}

TEST_F(StoreTest, CheckpointSnapshotWriteCrashKeepsWalAuthoritative) {
  {
    FaultInjector faults;
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 5; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(100, 'a')).ok());
    }
    store.set_fault_injector(&faults);
    faults.arm(FaultPoint::checkpoint_snapshot_write);
    auto status = store.checkpoint();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), Errc::io_error);
    EXPECT_EQ(store.stats().checkpoints, 0u);
  }
  // The partial .tmp is ignored; the WAL still holds everything.
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 5u);
  EXPECT_EQ(reopened.stats().snapshot_rows, 0u);
  EXPECT_EQ(reopened.stats().recovered_rows, 5u);
}

TEST_F(StoreTest, CheckpointRenameCrashKeepsOldSnapshot) {
  {
    FaultInjector faults;
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 3; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(100, 'a')).ok());
    }
    ASSERT_TRUE(store.checkpoint().ok());  // snapshot v1: rows 0..2
    for (u64 i = 3; i < 5; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(100, 'b')).ok());
    }
    store.set_fault_injector(&faults);
    faults.arm(FaultPoint::checkpoint_rename);
    ASSERT_FALSE(store.checkpoint().ok());
  }
  // Old snapshot + post-v1 WAL tail remain the authoritative pair.
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 5u);
  EXPECT_EQ(reopened.stats().snapshot_rows, 3u);
  EXPECT_EQ(reopened.stats().recovered_rows, 2u);
}

TEST_F(StoreTest, CheckpointTruncateCrashDedupesStaleWal) {
  {
    FaultInjector faults;
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 4; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(100, 'a')).ok());
    }
    store.set_fault_injector(&faults);
    faults.arm(FaultPoint::checkpoint_wal_truncate);
    // Crash after the snapshot rename, before the WAL truncation: the new
    // snapshot and the full stale WAL coexist on disk.
    ASSERT_FALSE(store.checkpoint().ok());
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 4u);  // no double-apply
  EXPECT_EQ(reopened.stats().snapshot_rows, 4u);
  EXPECT_EQ(reopened.stats().deduped_frames, 4u);
  EXPECT_EQ(reopened.stats().recovered_rows, 0u);
  // And the reopened store keeps working.
  ASSERT_TRUE(reopened.append("t", 9, 0, bytes_of("c")).ok());
}

TEST(LogStoreMem, ConcurrentAppendsSafe) {
  LogStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto id = store.append("rlogs", static_cast<u64>(t), i,
                               bytes_of(std::to_string(i)));
        ASSERT_TRUE(id.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.row_count("rlogs"), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(store.scan("rlogs", t, t).size(), kPerThread);
  }
  EXPECT_EQ(store.stats().appends,
            static_cast<u64>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace zkt::store
