// LogStore tests: CRUD semantics, scans, WAL persistence and recovery
// (including torn/corrupt tails), and concurrent producers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "store/logstore.h"

namespace zkt::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ = std::filesystem::temp_directory_path() /
                ("zkt_store_test_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()
                 + ".wal");
    std::filesystem::remove(wal_path_);
    std::filesystem::remove(wal_path_.string() + ".snap");
  }
  void TearDown() override {
    std::filesystem::remove(wal_path_);
    std::filesystem::remove(wal_path_.string() + ".snap");
  }

  std::filesystem::path wal_path_;
};

TEST(Crc32, KnownVector) {
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(LogStoreMem, AppendAndScan) {
  LogStore store;
  for (u64 w = 1; w <= 3; ++w) {
    for (u64 r = 0; r < 4; ++r) {
      auto id = store.append("rlogs", w, r, bytes_of("payload"));
      ASSERT_TRUE(id.ok());
    }
  }
  EXPECT_EQ(store.row_count("rlogs"), 12u);
  EXPECT_EQ(store.scan("rlogs", 2, 2).size(), 4u);
  EXPECT_EQ(store.scan("rlogs", 1, 3).size(), 12u);
  EXPECT_EQ(store.scan("rlogs", 9, 9).size(), 0u);
  EXPECT_EQ(store.scan_exact("rlogs", 2, 3).size(), 1u);
  EXPECT_EQ(store.scan("missing", 0, ~0ULL).size(), 0u);
}

TEST(LogStoreMem, RowIdsMonotonicPerTable) {
  LogStore store;
  EXPECT_EQ(store.append("a", 0, 0, {}).value(), 0u);
  EXPECT_EQ(store.append("a", 0, 0, {}).value(), 1u);
  EXPECT_EQ(store.append("b", 0, 0, {}).value(), 0u);
}

TEST(LogStoreMem, LatestAndLastRow) {
  LogStore store;
  (void)store.append("t", 5, 1, bytes_of("first"));
  (void)store.append("t", 5, 2, bytes_of("second"));
  (void)store.append("t", 6, 1, bytes_of("third"));
  auto latest5 = store.latest("t", 5);
  ASSERT_TRUE(latest5.has_value());
  EXPECT_EQ(latest5->payload, bytes_of("second"));
  auto last = store.last_row("t");
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->payload, bytes_of("third"));
  EXPECT_FALSE(store.latest("t", 9).has_value());
  EXPECT_FALSE(store.last_row("empty").has_value());
}

TEST(LogStoreMem, TableNames) {
  LogStore store;
  (void)store.append("zeta", 0, 0, {});
  (void)store.append("alpha", 0, 0, {});
  const auto names = store.table_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");  // sorted by map order
  EXPECT_EQ(names[1], "zeta");
}

TEST_F(StoreTest, WalPersistsAcrossRestart) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 20; ++i) {
      ASSERT_TRUE(store.append("rlogs", i / 4, i % 4,
                               bytes_of("row-" + std::to_string(i)))
                      .ok());
    }
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("rlogs"), 20u);
  EXPECT_EQ(reopened.stats().recovered_rows, 20u);
  auto rows = reopened.scan("rlogs", 2, 2);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].payload, bytes_of("row-8"));
  // And the store keeps appending after recovery.
  ASSERT_TRUE(reopened.append("rlogs", 9, 9, bytes_of("more")).ok());
}

TEST_F(StoreTest, AppendWithoutRecoverFails) {
  LogStore store(StoreConfig{.wal_path = wal_path_.string()});
  EXPECT_FALSE(store.append("t", 0, 0, {}).ok());
}

TEST_F(StoreTest, TruncatedTailFrameDropped) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 5; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(100, 'x')).ok());
    }
  }
  // Simulate a torn write: chop off the last 30 bytes.
  const auto full = std::filesystem::file_size(wal_path_);
  std::filesystem::resize_file(wal_path_, full - 30);

  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 4u);
  EXPECT_EQ(reopened.stats().truncated_frames, 1u);
}

TEST_F(StoreTest, CorruptPayloadDetectedByCrc) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    ASSERT_TRUE(store.append("t", 1, 0, Bytes(64, 'a')).ok());
    ASSERT_TRUE(store.append("t", 2, 0, Bytes(64, 'b')).ok());
  }
  // Flip a byte inside the second frame's payload.
  {
    std::FILE* f = std::fopen(wal_path_.string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const auto size = std::filesystem::file_size(wal_path_);
    std::fseek(f, static_cast<long>(size - 20), SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 1u);  // second frame rejected
  EXPECT_EQ(reopened.stats().truncated_frames, 1u);
}

TEST_F(StoreTest, RecoverOnMissingFileIsOk) {
  LogStore store(StoreConfig{.wal_path = wal_path_.string()});
  EXPECT_TRUE(store.recover().ok());
  EXPECT_TRUE(store.append("t", 0, 0, {}).ok());
}

TEST_F(StoreTest, CheckpointCompactsAndRecovers) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    for (u64 i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(200, 'a')).ok());
    }
    ASSERT_TRUE(store.checkpoint().ok());
    // WAL is now empty; more appends land in the fresh WAL.
    for (u64 i = 10; i < 15; ++i) {
      ASSERT_TRUE(store.append("t", i, 0, Bytes(200, 'b')).ok());
    }
    EXPECT_EQ(store.stats().checkpoints, 1u);
  }
  // The WAL only holds the post-checkpoint tail.
  EXPECT_LT(std::filesystem::file_size(wal_path_), 5u * 300u);

  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 15u);
  EXPECT_EQ(reopened.stats().snapshot_rows, 10u);
  EXPECT_EQ(reopened.stats().recovered_rows, 5u);
  EXPECT_EQ(reopened.scan("t", 3, 3).size(), 1u);
  EXPECT_EQ(reopened.scan("t", 12, 12).size(), 1u);
}

TEST_F(StoreTest, DoubleCheckpointIsIdempotentish) {
  LogStore store(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(store.recover().ok());
  ASSERT_TRUE(store.append("t", 1, 1, bytes_of("x")).ok());
  ASSERT_TRUE(store.checkpoint().ok());
  ASSERT_TRUE(store.checkpoint().ok());
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  ASSERT_TRUE(reopened.recover().ok());
  EXPECT_EQ(reopened.row_count("t"), 1u);
}

TEST_F(StoreTest, CorruptSnapshotRejected) {
  {
    LogStore store(StoreConfig{.wal_path = wal_path_.string()});
    ASSERT_TRUE(store.recover().ok());
    ASSERT_TRUE(store.append("t", 1, 1, Bytes(100, 'z')).ok());
    ASSERT_TRUE(store.checkpoint().ok());
  }
  const std::string snap = wal_path_.string() + ".snap";
  {
    std::FILE* f = std::fopen(snap.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    std::fputc('X', f);
    std::fclose(f);
  }
  LogStore reopened(StoreConfig{.wal_path = wal_path_.string()});
  EXPECT_FALSE(reopened.recover().ok());
}

TEST(LogStoreMem, DropRowsByWindow) {
  LogStore store;
  for (u64 w = 1; w <= 5; ++w) {
    for (u64 r = 0; r < 2; ++r) {
      ASSERT_TRUE(store.append("rlogs", w, r, bytes_of("x")).ok());
    }
  }
  EXPECT_EQ(store.drop_rows("rlogs", 3), 6u);
  EXPECT_EQ(store.row_count("rlogs"), 4u);
  EXPECT_TRUE(store.scan("rlogs", 1, 3).empty());
  EXPECT_EQ(store.scan("rlogs", 4, 5).size(), 4u);
  EXPECT_EQ(store.drop_rows("rlogs", 3), 0u);       // idempotent
  EXPECT_EQ(store.drop_rows("missing", 99), 0u);    // unknown table
}

TEST(LogStoreMem, CheckpointNoopWithoutWal) {
  LogStore store;
  EXPECT_TRUE(store.checkpoint().ok());
}

TEST(LogStoreMem, ConcurrentAppendsSafe) {
  LogStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto id = store.append("rlogs", static_cast<u64>(t), i,
                               bytes_of(std::to_string(i)));
        ASSERT_TRUE(id.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.row_count("rlogs"), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(store.scan("rlogs", t, t).size(), kPerThread);
  }
  EXPECT_EQ(store.stats().appends,
            static_cast<u64>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace zkt::store
