// Schnorr (BIP340-style) signature tests: key derivation vectors, sign/
// verify round-trips across many keys/messages, and rejection of every
// tampered component.
#include <gtest/gtest.h>

#include "crypto/schnorr.h"
#include "crypto/sha256.h"

namespace zkt::crypto {
namespace {

std::array<u8, 32> secret_from_u64(u64 v) {
  std::array<u8, 32> s{};
  for (int i = 0; i < 8; ++i) s[31 - i] = static_cast<u8>(v >> (8 * i));
  return s;
}

TEST(Schnorr, PubkeyVectorForSecretThree) {
  // BIP340: seckey 3 -> x-only pubkey F9308A01... (x of 3G).
  auto kp = schnorr_keygen(secret_from_u64(3));
  ASSERT_TRUE(kp.ok());
  EXPECT_EQ(to_hex(kp.value().pk_view()),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
}

TEST(Schnorr, RejectsZeroAndOverflowSecrets) {
  EXPECT_FALSE(schnorr_keygen(std::array<u8, 32>{}).ok());
  std::array<u8, 32> all_ff;
  all_ff.fill(0xFF);  // >= group order
  EXPECT_FALSE(schnorr_keygen(all_ff).ok());
}

TEST(Schnorr, SignVerifyRoundTrip) {
  const auto kp = schnorr_keygen_from_seed("round-trip");
  const Digest32 msg = sha256(std::string_view("hello telemetry"));
  auto sig = schnorr_sign(kp, msg, {});
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(schnorr_verify(kp.pk_view(), msg, sig.value()).ok());
}

class SchnorrManyKeys : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrManyKeys, RoundTripAndCrossChecks) {
  const std::string seed = "key-" + std::to_string(GetParam());
  const auto kp = schnorr_keygen_from_seed(seed);
  const auto other = schnorr_keygen_from_seed(seed + "-other");
  const Digest32 msg =
      sha256(std::string_view("message for " + seed));
  const Digest32 msg2 = sha256(std::string_view("different message"));

  auto sig = schnorr_sign(kp, msg, {});
  ASSERT_TRUE(sig.ok());
  // Valid.
  EXPECT_TRUE(schnorr_verify(kp.pk_view(), msg, sig.value()).ok());
  // Wrong message.
  EXPECT_FALSE(schnorr_verify(kp.pk_view(), msg2, sig.value()).ok());
  // Wrong key.
  EXPECT_FALSE(schnorr_verify(other.pk_view(), msg, sig.value()).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrManyKeys, ::testing::Range(0, 12));

TEST(Schnorr, EveryByteOfSignatureMatters) {
  const auto kp = schnorr_keygen_from_seed("bit-flips");
  const Digest32 msg = sha256(std::string_view("flip me"));
  const auto sig = schnorr_sign(kp, msg, {}).value();
  for (size_t i = 0; i < sig.bytes.size(); i += 3) {
    SchnorrSignature tampered = sig;
    tampered.bytes[i] ^= 0x01;
    EXPECT_FALSE(schnorr_verify(kp.pk_view(), msg, tampered).ok())
        << "byte " << i;
  }
}

TEST(Schnorr, DeterministicWithSameAux) {
  const auto kp = schnorr_keygen_from_seed("deterministic");
  const Digest32 msg = sha256(std::string_view("m"));
  const auto s1 = schnorr_sign(kp, msg, {}).value();
  const auto s2 = schnorr_sign(kp, msg, {}).value();
  EXPECT_EQ(s1.bytes, s2.bytes);
}

TEST(Schnorr, AuxRandomnessChangesSignatureNotValidity) {
  const auto kp = schnorr_keygen_from_seed("aux");
  const Digest32 msg = sha256(std::string_view("m"));
  std::array<u8, 32> aux{};
  aux[0] = 1;
  const auto s1 = schnorr_sign(kp, msg, {}).value();
  const auto s2 = schnorr_sign(kp, msg, aux).value();
  EXPECT_NE(s1.bytes, s2.bytes);
  EXPECT_TRUE(schnorr_verify(kp.pk_view(), msg, s1).ok());
  EXPECT_TRUE(schnorr_verify(kp.pk_view(), msg, s2).ok());
}

TEST(Schnorr, RejectsMalformedPublicKey) {
  const auto kp = schnorr_keygen_from_seed("malformed");
  const Digest32 msg = sha256(std::string_view("m"));
  const auto sig = schnorr_sign(kp, msg, {}).value();
  // Too short.
  EXPECT_FALSE(schnorr_verify(BytesView(kp.public_key.data(), 31), msg, sig).ok());
  // x not on curve: p (out of field range).
  Bytes bad(32, 0xFF);
  EXPECT_FALSE(schnorr_verify(bad, msg, sig).ok());
}

TEST(Schnorr, SOutOfRangeRejected) {
  const auto kp = schnorr_keygen_from_seed("s-range");
  const Digest32 msg = sha256(std::string_view("m"));
  auto sig = schnorr_sign(kp, msg, {}).value();
  // Force s >= n.
  std::fill(sig.bytes.begin() + 32, sig.bytes.end(), 0xFF);
  EXPECT_FALSE(schnorr_verify(kp.pk_view(), msg, sig).ok());
}

TEST(Schnorr, SeedKeygenDeterministic) {
  const auto a = schnorr_keygen_from_seed("same");
  const auto b = schnorr_keygen_from_seed("same");
  const auto c = schnorr_keygen_from_seed("not same");
  EXPECT_EQ(a.public_key, b.public_key);
  EXPECT_EQ(a.secret_key, b.secret_key);
  EXPECT_NE(a.public_key, c.public_key);
}

TEST(TaggedHash, MatchesConstruction) {
  // tagged_hash(tag, m) == sha256(sha256(tag)||sha256(tag)||m).
  const Digest32 th = tagged_hash("BIP0340/aux", bytes_of("x"));
  const Digest32 tag_hash = sha256(std::string_view("BIP0340/aux"));
  Sha256 h;
  h.update(tag_hash.view());
  h.update(tag_hash.view());
  h.update(bytes_of("x"));
  EXPECT_EQ(th, h.finalize());
}

}  // namespace
}  // namespace zkt::crypto
