// Epoch-seal tests: the binary-counter ladder (plan, build, merge, adopt),
// seal persistence + crash recovery through the pipeline, Auditor::catch_up
// soundness (splice negatives, tamper rejection), and the headline
// guarantee — catch-up decisions identical to a full replay.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/serial.h"
#include "core/epoch.h"
#include "core/io.h"
#include "core/pipeline.h"
#include "core/service.h"
#include "store/fault.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

EpochLadderOptions every(u64 n) {
  EpochLadderOptions options;
  options.epoch_every = n;
  return options;
}

// ---------------------------------------------------------------------------
// Ladder plan: pure function of (rounds, epoch_every).

TEST(EpochLadderPlan, BinaryDecomposition) {
  EXPECT_TRUE(epoch_ladder_plan(0, 4).empty());
  EXPECT_TRUE(epoch_ladder_plan(3, 4).empty());  // no completed unit
  EXPECT_TRUE(epoch_ladder_plan(100, 0).empty());

  // 7 rounds at epoch 4 -> one unit; the trailing 3 rounds stay unsealed.
  auto plan = epoch_ladder_plan(7, 4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (EpochSpanSpec{0, 0, 4}));

  // 48 rounds at epoch 4 -> 12 units = 0b1100: a level-3 span then a
  // level-2 span, chain order, strictly decreasing levels.
  plan = epoch_ladder_plan(48, 4);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], (EpochSpanSpec{3, 0, 32}));
  EXPECT_EQ(plan[1], (EpochSpanSpec{2, 32, 16}));

  // Every plan covers floor(rounds/epoch)*epoch rounds contiguously.
  for (u64 rounds : {1ULL, 5ULL, 16ULL, 21ULL, 64ULL, 100ULL}) {
    u64 covered = 0;
    u32 prev_level = 64;
    for (const auto& spec : epoch_ladder_plan(rounds, 2)) {
      EXPECT_EQ(spec.start_round, covered);
      EXPECT_LT(spec.level, prev_level);
      prev_level = spec.level;
      covered += spec.rounds;
    }
    EXPECT_EQ(covered, (rounds / 2) * 2);
  }
}

// ---------------------------------------------------------------------------
// A real aggregation chain to seal.

struct ChainFixture {
  CommitmentBoard board;
  AggregationService service{board};
  std::vector<zvm::Receipt> rounds;
  std::vector<u64> windows;
  crypto::SchnorrKeyPair key = crypto::schnorr_keygen_from_seed("epoch-fix");

  void run_round(u64 window, std::vector<u32> srcs) {
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = window;
    for (u32 src : srcs) {
      FlowRecord record;
      PacketObservation pkt;
      pkt.key = {src, 0x09090909, 1000, 443, 6};
      pkt.timestamp_ms = window * 5000;
      pkt.bytes = 100 * src;
      record.observe(pkt);
      batch.records.push_back(std::move(record));
    }
    ASSERT_TRUE(
        board.publish(make_commitment(batch, key, window).value()).ok());
    auto round = service.aggregate({batch});
    ASSERT_TRUE(round.ok()) << round.error().to_string();
    rounds.push_back(std::move(round.value().receipt));
    windows.push_back(window);
  }

  void run_rounds(u64 n) {
    const u64 first = windows.size() + 1;
    for (u64 w = first; w < first + n; ++w) {
      run_round(w, {static_cast<u32>(w), static_cast<u32>(w) + 100});
    }
  }
};

// Feed a fixture's chain through a ladder and settle.
std::vector<EpochSeal> build_ladder(ChainFixture& fx, EpochLadder& ladder) {
  for (size_t i = 0; i < fx.rounds.size(); ++i) {
    EXPECT_TRUE(ladder.feed(fx.rounds[i], fx.windows[i]).ok());
  }
  EXPECT_TRUE(ladder.settle().ok());
  return ladder.ladder();
}

TEST(EpochLadder, BuildsBinaryCounterAndSealsVerify) {
  ChainFixture fx;
  fx.run_rounds(5);

  EpochLadder ladder(every(2));
  auto live = build_ladder(fx, ladder);

  // 5 rounds at epoch 2 -> 2 completed units -> one level-1 seal; round 4
  // stays in the feed buffer.
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].level, 1u);
  EXPECT_EQ(live[0].start_round, 0u);
  EXPECT_EQ(live[0].rounds, 4u);
  EXPECT_EQ(live[0].first_window, fx.windows[0]);
  EXPECT_EQ(live[0].last_window, fx.windows[3]);
  EXPECT_TRUE(live[0].journal.genesis);
  EXPECT_EQ(ladder.rounds_fed(), 5u);

  // The ladder matches the pure plan.
  auto plan = epoch_ladder_plan(fx.rounds.size(), 2);
  ASSERT_EQ(plan.size(), live.size());
  EXPECT_EQ(plan[0], (EpochSpanSpec{live[0].level, live[0].start_round,
                                    live[0].rounds}));

  // take_completed drains every proven seal in completion order: two
  // level-0 units, then their merge — supersets included so persistence
  // can be append-only.
  auto completed = ladder.take_completed();
  ASSERT_EQ(completed.size(), 3u);
  EXPECT_EQ(completed[0].level, 0u);
  EXPECT_EQ(completed[1].level, 0u);
  EXPECT_EQ(completed[1].start_round, 2u);
  EXPECT_EQ(completed[2].level, 1u);
  EXPECT_TRUE(ladder.take_completed().empty());

  // Every seal (including the superseded level-0s) verifies on its own,
  // and the constant-size claim holds: seal receipts do not grow with the
  // rounds covered.
  for (const auto& seal : completed) {
    auto journal =
        verify_chain_summary(seal.receipt, fx.board, seal.commitments);
    ASSERT_TRUE(journal.ok()) << journal.error().to_string();
    EXPECT_EQ(journal.value().rounds, seal.rounds);
  }
  EXPECT_EQ(completed[2].receipt.seal_size_bytes(),
            completed[0].receipt.seal_size_bytes());

  // And each validates against the live chain (the recovery path's check).
  for (const auto& seal : completed) {
    EXPECT_TRUE(validate_recovered_seal(seal, fx.rounds, 2).ok());
  }
}

TEST(EpochLadder, SerializationRoundTripsAndRejectsCorruption) {
  ChainFixture fx;
  fx.run_rounds(2);
  EpochLadder ladder(every(2));
  auto live = build_ladder(fx, ladder);
  ASSERT_EQ(live.size(), 1u);

  auto bytes = live[0].to_bytes();
  auto back = EpochSeal::from_bytes(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value().level, live[0].level);
  EXPECT_EQ(back.value().rounds, live[0].rounds);
  EXPECT_TRUE(back.value().commitments == live[0].commitments);

  // A seal whose ref list disagrees with its journal's count is rejected
  // at parse time (before any verification).
  EpochSeal trimmed = live[0];
  trimmed.commitments.pop_back();
  EXPECT_FALSE(EpochSeal::from_bytes(trimmed.to_bytes()).ok());

  // File bundle: round-trip, then a flipped payload byte fails the CRC.
  const auto path = std::filesystem::temp_directory_path() /
                    ("zkt_epoch_seals_" + std::to_string(::getpid()) + ".bin");
  ASSERT_TRUE(save_epoch_seals(live, path.string()).ok());
  auto loaded = load_epoch_seals(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].rounds, live[0].rounds);

  auto raw = read_file(path.string());
  ASSERT_TRUE(raw.ok());
  Bytes corrupt = raw.value();
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(write_file(path.string(), corrupt).ok());
  auto bad = load_epoch_seals(path.string());
  ASSERT_FALSE(bad.ok());
  std::filesystem::remove(path);
}

TEST(EpochLadder, AdoptGuardsChainOrder) {
  ChainFixture fx;
  fx.run_rounds(4);
  EpochLadder source(every(2));
  build_ladder(fx, source);
  auto live = source.ladder();
  ASSERT_EQ(live.size(), 1u);  // level-1, rounds 0..3

  // Adoption replays a persisted ladder into a fresh instance.
  EpochLadder fresh(every(2));
  ASSERT_TRUE(fresh.adopt(live[0]).ok());
  EXPECT_EQ(fresh.rounds_fed(), 4u);

  // Wrong start position: adopting the same span again must fail.
  EXPECT_FALSE(fresh.adopt(live[0]).ok());

  // Level order: a same-or-taller seal after the tail breaks the ladder
  // invariant (levels strictly decrease in chain order).
  EpochSeal same_level = live[0];
  same_level.start_round = 4;
  EXPECT_FALSE(fresh.adopt(same_level).ok());

  // Adoption after feeding is rejected.
  EpochLadder fed(every(2));
  ASSERT_TRUE(fed.feed(fx.rounds[0], fx.windows[0]).ok());
  EXPECT_FALSE(fed.adopt(live[0]).ok());
}

// ---------------------------------------------------------------------------
// Catch-up: O(log T) seals + suffix, decisions identical to a full replay.

TEST(EpochCatchUp, MatchesFullReplayByteForByte) {
  ChainFixture fx;
  fx.run_rounds(5);
  EpochLadder ladder(every(2));
  auto live = build_ladder(fx, ladder);
  ASSERT_EQ(live.size(), 1u);

  // Full replay: every round receipt verified individually.
  Auditor replayed(fx.board);
  auto replay = replayed.accept_rounds(fx.rounds);
  ASSERT_TRUE(replay.ok()) << replay.error().to_string();

  // Catch-up: one seal + the unsealed suffix.
  Auditor cold(fx.board);
  auto report = cold.catch_up(
      live, std::span<const zvm::Receipt>(fx.rounds).subspan(4));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().seals_adopted, 1u);
  EXPECT_EQ(report.value().seal_rounds, 4u);
  EXPECT_EQ(report.value().rounds_replayed, 1u);

  // The two auditors end at the same head, bit for bit — including the
  // proof-carrying sketch position, which catch-up re-establishes from the
  // seal journal.
  EXPECT_EQ(cold.rounds_accepted(), replayed.rounds_accepted());
  EXPECT_EQ(cold.current_root(), replayed.current_root());
  EXPECT_EQ(cold.head().claim_digest, replayed.head().claim_digest);
  EXPECT_EQ(cold.head().entry_count, replayed.head().entry_count);
  EXPECT_EQ(cold.sketch_known(), replayed.sketch_known());
  EXPECT_EQ(cold.has_sketch(), replayed.has_sketch());
  if (cold.has_sketch()) {
    EXPECT_EQ(cold.sketch_digest(), replayed.sketch_digest());
  }

  // Both continue the live chain identically.
  fx.run_round(6, {42});
  ASSERT_TRUE(replayed.accept_round(fx.rounds.back()).ok());
  ASSERT_TRUE(cold.accept_round(fx.rounds.back()).ok());
  EXPECT_EQ(cold.current_root(), replayed.current_root());

  // And both reject the same doctored receipt (identical decisions on the
  // reject side too).
  zvm::Receipt forged = fx.rounds.back();
  forged.journal.back() ^= 1;
  EXPECT_FALSE(replayed.accept_round(forged).ok());
  EXPECT_FALSE(cold.accept_round(forged).ok());
}

TEST(EpochCatchUp, RequiresFreshAuditorAndGenesisAnchor) {
  ChainFixture fx;
  fx.run_rounds(4);
  EpochLadder ladder(every(2));
  build_ladder(fx, ladder);
  auto completed = ladder.take_completed();
  ASSERT_EQ(completed.size(), 3u);  // level-0 [0,2), level-0 [2,4), level-1

  // A mid-chain seal first: no genesis anchor.
  Auditor cold(fx.board);
  std::vector<EpochSeal> mid = {completed[1]};
  auto report = cold.catch_up(mid, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::chain_broken);

  // A used auditor cannot catch up.
  Auditor used(fx.board);
  ASSERT_TRUE(used.accept_round(fx.rounds[0]).ok());
  std::vector<EpochSeal> ladder_seals = {completed[2]};
  EXPECT_FALSE(used.catch_up(ladder_seals, {}).ok());
}

TEST(EpochCatchUp, RejectsGapOverlapAndForgedSeals) {
  ChainFixture fx;
  fx.run_rounds(4);
  EpochLadder ladder(every(2));
  build_ladder(fx, ladder);
  auto completed = ladder.take_completed();
  ASSERT_EQ(completed.size(), 3u);
  const EpochSeal& unit0 = completed[0];  // rounds [0,2)
  const EpochSeal& unit1 = completed[1];  // rounds [2,4)
  const EpochSeal& merged = completed[2];

  // Overlap: the merged seal re-covers unit0's span. The genesis flag
  // betrays the splice before any state is adopted.
  {
    Auditor cold(fx.board);
    std::vector<EpochSeal> seals = {unit0, merged};
    auto report = cold.catch_up(seals, {});
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error().code, Errc::chain_broken);
  }

  // Gap: a seal whose recorded position skips rounds. The span/position
  // cross-check rejects it even though the receipt itself verifies.
  {
    EpochSeal displaced = unit1;
    displaced.start_round = 4;
    Auditor cold(fx.board);
    std::vector<EpochSeal> seals = {unit0, displaced};
    auto report = cold.catch_up(seals, {});
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error().code, Errc::chain_broken);
  }

  // Gap between the seals and the suffix: skipping the round after the
  // seal breaks the chain link in accept_rounds.
  {
    Auditor cold(fx.board);
    std::vector<EpochSeal> seals = {merged};
    fx.run_round(5, {7});
    auto report = cold.catch_up(
        seals, std::span<const zvm::Receipt>(fx.rounds).subspan(4));
    ASSERT_TRUE(report.ok());  // contiguous suffix: fine
    fx.run_round(6, {8});
    Auditor cold2(fx.board);
    std::vector<zvm::Receipt> gapped = {fx.rounds.back()};  // skips round 4
    EXPECT_FALSE(cold2.catch_up(seals, gapped).ok());
  }

  // Forged seal: doctor the journal (stale final sketch digest). The
  // journal digest is bound into the claim, so verification fails — a
  // stale or forged sketch position cannot splice.
  {
    EpochSeal forged = merged;
    ChainSummaryJournal j = forged.journal;
    j.final_sketch_digest.bytes[0] ^= 1;
    Writer w;
    j.write(w);
    forged.receipt.journal = std::move(w).take();
    forged.journal = j;
    Auditor cold(fx.board);
    std::vector<EpochSeal> seals = {forged};
    EXPECT_FALSE(cold.catch_up(seals, {}).ok());
    // The recovery-side validator rejects it too.
    EXPECT_FALSE(validate_recovered_seal(forged, fx.rounds, 2).ok());
  }

  // Commitment-digest mismatch: a seal shipped with a permuted ref list
  // no longer reproduces the proven commitment chain.
  {
    EpochSeal reordered = merged;
    ASSERT_GE(reordered.commitments.size(), 2u);
    std::swap(reordered.commitments.front(), reordered.commitments.back());
    Auditor cold(fx.board);
    std::vector<EpochSeal> seals = {reordered};
    auto report = cold.catch_up(seals, {});
    ASSERT_FALSE(report.ok());
    EXPECT_FALSE(validate_recovered_seal(reordered, fx.rounds, 2).ok());
  }
}

TEST(EpochSpan, GuestRejectsTamperedChildSummaryAndBadSplices) {
  ChainFixture fx;
  fx.run_rounds(3);

  auto prefix = prove_epoch_span(
      std::span<const zvm::Receipt>(fx.rounds).subspan(0, 2));
  ASSERT_TRUE(prefix.ok()) << prefix.error().to_string();

  // Honest incremental fold: [summary(0..1), round 2].
  {
    std::vector<zvm::Receipt> children = {prefix.value().receipt,
                                          fx.rounds[2]};
    auto extended = prove_epoch_span(children);
    ASSERT_TRUE(extended.ok()) << extended.error().to_string();
    EXPECT_EQ(extended.value().journal.rounds, 3u);
    EXPECT_TRUE(extended.value().journal.genesis);
  }

  // Tampered child summary: the assumption binding fails in-trace.
  {
    zvm::Receipt tampered = prefix.value().receipt;
    tampered.journal.back() ^= 1;
    std::vector<zvm::Receipt> children = {tampered, fx.rounds[2]};
    EXPECT_FALSE(prove_epoch_span(children).ok());
  }

  // Overlap at the splice: the summary already covers round 1, so folding
  // round 1 again breaks the claim-digest link (asserted in-trace).
  {
    std::vector<zvm::Receipt> children = {prefix.value().receipt,
                                          fx.rounds[1]};
    EXPECT_FALSE(prove_epoch_span(children).ok());
  }

  // Gap at the splice: skipping round 2 and folding a later round.
  {
    fx.run_round(4, {9});
    std::vector<zvm::Receipt> children = {prefix.value().receipt,
                                          fx.rounds[3]};
    EXPECT_FALSE(prove_epoch_span(children).ok());
  }

  // A genesis summary child can only appear first.
  {
    std::vector<zvm::Receipt> children = {fx.rounds[0],
                                          prefix.value().receipt};
    EXPECT_FALSE(prove_epoch_span(children).ok());
  }
}

// ---------------------------------------------------------------------------
// Pipeline persistence + crash recovery.

class EpochPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_path_ =
        std::filesystem::temp_directory_path() /
        ("zkt_epoch_test_" + std::to_string(::getpid()) + "_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         ".wal");
    clean();
  }
  void TearDown() override { clean(); }
  void clean() {
    std::filesystem::remove(wal_path_);
    std::filesystem::remove(wal_path_.string() + ".snap");
    std::filesystem::remove(wal_path_.string() + ".snap.tmp");
  }

  store::StoreConfig config() const {
    return store::StoreConfig{.wal_path = wal_path_.string()};
  }

  void store_window(store::LogStore& store, CommitmentBoard& board,
                    u64 window) {
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = window;
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = {static_cast<u32>(window) + 1, 0x0A0A0A0A, 1000, 443, 6};
    pkt.timestamp_ms = window * 5000;
    pkt.bytes = 100 + window;
    record.observe(pkt);
    batch.records.push_back(record);
    ASSERT_TRUE(
        board.publish(make_commitment(batch, key_, window).value()).ok());
    ASSERT_TRUE(store
                    .append(store::kTableRlogs, window, 0,
                            batch.canonical_bytes())
                    .ok());
  }

  crypto::SchnorrKeyPair key_ = crypto::schnorr_keygen_from_seed("epoch-pipe");
  std::filesystem::path wal_path_;
};

TEST_F(EpochPipelineTest, PipelineBuildsPersistsAndRecoversLadder) {
  CommitmentBoard board;
  PipelineOptions options;
  options.epoch_every = 2;

  // Process 1: 5 windows -> 2 sealed units (merged to level 1), 1 tail
  // round. Seals land in the store as they complete.
  {
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    for (u64 w = 1; w <= 5; ++w) store_window(store, board, w);
    ProviderPipeline pipeline(store, board, options);
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    ASSERT_EQ(rounds.value().size(), 5u);

    auto seals = pipeline.epoch_seals();
    ASSERT_TRUE(seals.ok()) << seals.error().to_string();
    ASSERT_EQ(seals.value().size(), 1u);
    EXPECT_EQ(seals.value()[0].level, 1u);
    EXPECT_EQ(seals.value()[0].rounds, 4u);
  }

  // Process 2: recovery adopts the stored seals instead of re-proving.
  store::LogStore store(config());
  ASSERT_TRUE(store.recover().ok());
  ProviderPipeline pipeline(store, board, options);
  auto recovery = pipeline.recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
  EXPECT_EQ(recovery.value().epoch_seals_adopted, 1u);
  EXPECT_EQ(recovery.value().epoch_levels_refolded, 0u);

  auto seals = pipeline.epoch_seals();
  ASSERT_TRUE(seals.ok());
  ASSERT_EQ(seals.value().size(), 1u);

  // The recovered ladder still catches a cold auditor up, and the head
  // matches a full replay of the recovered receipts.
  Auditor cold(board);
  auto report = cold.catch_up(
      seals.value(),
      std::span<const zvm::Receipt>(pipeline.receipts()).subspan(4));
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  Auditor replayed(board);
  ASSERT_TRUE(replayed.accept_rounds(pipeline.receipts()).ok());
  EXPECT_EQ(cold.current_root(), replayed.current_root());
  EXPECT_EQ(cold.rounds_accepted(), replayed.rounds_accepted());

  // The ladder keeps extending after recovery: one more window completes
  // the third unit and carries into a new level-0 seal.
  store_window(store, board, 6);
  auto more = pipeline.aggregate_pending();
  ASSERT_TRUE(more.ok()) << more.error().to_string();
  auto grown = pipeline.epoch_seals();
  ASSERT_TRUE(grown.ok());
  ASSERT_EQ(grown.value().size(), 2u);
  EXPECT_EQ(grown.value()[0].level, 1u);
  EXPECT_EQ(grown.value()[1].level, 0u);
  EXPECT_EQ(grown.value()[1].start_round, 4u);
}

TEST_F(EpochPipelineTest, CrashDuringLadderPersistRecovers) {
  // Sweep the WAL append fault across the run: some positions hit receipt
  // persistence, later ones hit the epoch-seal appends (mid-ladder
  // persist). Every crash must either complete after restart or fail
  // typed; after recovery the ladder must match the plan and catch-up must
  // agree with a full replay.
  for (u64 after_n : {0ULL, 2ULL, 4ULL, 6ULL, 8ULL}) {
    SCOPED_TRACE("wal_append after " + std::to_string(after_n) + " hits");
    clean();
    CommitmentBoard board;
    store::FaultInjector faults;
    PipelineOptions options;
    options.epoch_every = 2;
    options.retry.max_attempts = 1;  // crash-equivalent: no retry rescue

    // Process 1: populate, arm, aggregate into the fault.
    {
      store::LogStore store(config());
      ASSERT_TRUE(store.recover().ok());
      for (u64 w = 1; w <= 4; ++w) store_window(store, board, w);
      faults.arm(store::FaultPoint::wal_append, after_n);
      store.set_fault_injector(&faults);
      ProviderPipeline pipeline(store, board, options);
      auto rounds = pipeline.aggregate_pending();
      if (!rounds.ok()) {
        EXPECT_EQ(rounds.error().code, Errc::io_error)
            << rounds.error().to_string();
      } else {
        // The fault may land in the post-loop seal persist instead.
        (void)pipeline.epoch_seals();
      }
      store.set_fault_injector(nullptr);
    }

    // Process 2: restart; recovery re-validates stored seals and re-folds
    // whatever the crash swallowed.
    store::LogStore store(config());
    ASSERT_TRUE(store.recover().ok());
    ProviderPipeline pipeline(store, board, options);
    auto recovery = pipeline.recover();
    ASSERT_TRUE(recovery.ok()) << recovery.error().to_string();
    auto rounds = pipeline.aggregate_pending();
    ASSERT_TRUE(rounds.ok()) << rounds.error().to_string();
    ASSERT_EQ(pipeline.receipts().size(), 4u);

    auto seals = pipeline.epoch_seals();
    ASSERT_TRUE(seals.ok()) << seals.error().to_string();
    ASSERT_EQ(seals.value().size(), 1u);  // plan(4, 2) = one level-1 span
    EXPECT_EQ(seals.value()[0].level, 1u);
    EXPECT_TRUE(
        validate_recovered_seal(seals.value()[0], pipeline.receipts(), 2)
            .ok());

    Auditor cold(board);
    auto report = cold.catch_up(seals.value(), {});
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    Auditor replayed(board);
    ASSERT_TRUE(replayed.accept_rounds(pipeline.receipts()).ok());
    EXPECT_EQ(cold.current_root(), replayed.current_root());
    EXPECT_EQ(cold.rounds_accepted(), replayed.rounds_accepted());
  }
}

TEST(EpochPipeline, ShardedModeRejectsEpochSeals) {
  store::LogStore store;
  CommitmentBoard board;
  PipelineOptions options;
  options.epoch_every = 2;
  options.sharded.shard_count = 2;
  ProviderPipeline pipeline(store, board, options);
  auto rounds = pipeline.aggregate_pending();
  // No pending windows would normally be fine; the terminal configuration
  // error must fire first.
  ASSERT_FALSE(rounds.ok());
  EXPECT_EQ(rounds.error().code, Errc::invalid_argument);
}

}  // namespace
}  // namespace zkt::core
