// Guest-level tests: journal schema round-trips, traced Merkle equivalence,
// guest-vs-host aggregation equivalence over randomized workloads, and
// complete-vs-selective query equivalence.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/auditor.h"
#include "core/guests.h"
#include "core/service.h"
#include "sim/workload.h"

namespace zkt::core {
namespace {

using netflow::FlowRecord;
using netflow::PacketObservation;
using netflow::RLogBatch;

TEST(AggJournal, RoundTrip) {
  AggJournal j;
  j.has_prev = true;
  j.prev_claim_digest = crypto::sha256(std::string_view("claim"));
  j.prev_root = crypto::sha256(std::string_view("prev"));
  j.new_root = crypto::sha256(std::string_view("new"));
  j.prev_entry_count = 10;
  j.new_entry_count = 12;
  j.commitments = {{1, 2, crypto::sha256(std::string_view("c1")), 3},
                   {4, 5, crypto::sha256(std::string_view("c2")), 6}};
  j.update_count = 2;
  j.updates_digest = crypto::sha256(std::string_view("updates"));

  Writer w;
  j.write(w);
  auto parsed = AggJournal::parse(w.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().has_prev, j.has_prev);
  EXPECT_EQ(parsed.value().prev_claim_digest, j.prev_claim_digest);
  EXPECT_EQ(parsed.value().prev_root, j.prev_root);
  EXPECT_EQ(parsed.value().new_root, j.new_root);
  EXPECT_EQ(parsed.value().prev_entry_count, 10u);
  EXPECT_EQ(parsed.value().new_entry_count, 12u);
  EXPECT_EQ(parsed.value().commitments, j.commitments);
  EXPECT_EQ(parsed.value().update_count, 2u);
  EXPECT_EQ(parsed.value().updates_digest, j.updates_digest);
}

TEST(CommitmentRefSchema, KindTagRoundTripAndRejection) {
  CommitmentRef ref{7, 42, crypto::sha256(std::string_view("batch")), 100};
  ASSERT_EQ(ref.kind, CommitmentKind::rlog);
  Writer w;
  write_commitment_ref(w, ref);
  {
    Reader r(w.bytes());
    auto parsed = parse_commitment_ref(r, CommitmentKind::rlog);
    ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
    EXPECT_EQ(parsed.value(), ref);
    EXPECT_TRUE(r.done());
  }
  // An rlog ref where a sketch commitment belongs — and vice versa — is a
  // parse error, not a silent reinterpretation.
  {
    Reader r(w.bytes());
    EXPECT_FALSE(parse_commitment_ref(r, CommitmentKind::sketch).ok());
  }
  CommitmentRef sketch_ref = ref;
  sketch_ref.kind = CommitmentKind::sketch;
  Writer sw;
  write_commitment_ref(sw, sketch_ref);
  {
    Reader r(sw.bytes());
    EXPECT_FALSE(parse_commitment_ref(r, CommitmentKind::rlog).ok());
    Reader r2(sw.bytes());
    auto parsed = parse_commitment_ref(r2, CommitmentKind::sketch);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().kind, CommitmentKind::sketch);
  }
  // A kind byte past the known range is rejected for either expectation.
  Writer bad;
  bad.u8v(2);
  bad.u32v(ref.router_id);
  bad.u64v(ref.window_id);
  bad.fixed(ref.rlog_hash.bytes);
  bad.u64v(ref.record_count);
  for (CommitmentKind expected :
       {CommitmentKind::rlog, CommitmentKind::sketch}) {
    Reader r(bad.bytes());
    auto parsed = parse_commitment_ref(r, expected);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, Errc::parse_error);
  }
}

TEST(AggJournal, RejectsTrailingBytes) {
  AggJournal j;
  Writer w;
  j.write(w);
  w.u8v(0);
  EXPECT_FALSE(AggJournal::parse(w.bytes()).ok());
}

TEST(QueryJournalSchema, RoundTripBothModes) {
  for (QueryMode mode : {QueryMode::complete, QueryMode::selective}) {
    QueryJournal j;
    j.mode = mode;
    j.agg_claim_digest = crypto::sha256(std::string_view("agg"));
    j.agg_root = crypto::sha256(std::string_view("root"));
    j.entry_count = 42;
    j.query = Query::sum(QField::bytes).and_where(QField::protocol,
                                                  CmpOp::eq, 6);
    j.result = {5, 42, 1000, 10, 500};

    Writer w;
    j.write(w);
    auto parsed = QueryJournal::parse(w.bytes());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().mode, mode);
    EXPECT_EQ(parsed.value().result, j.result);
    EXPECT_EQ(parsed.value().query.digest(), j.query.digest());
    EXPECT_EQ(parsed.value().entry_count, 42u);
  }
}

class TracedMerkle : public ::testing::TestWithParam<u64> {};

TEST_P(TracedMerkle, MatchesNativeTree) {
  const u64 n = GetParam();
  std::vector<crypto::Digest32> leaves;
  for (u64 i = 0; i < n; ++i) {
    leaves.push_back(crypto::MerkleTree::hash_leaf(as_bytes_view(i)));
  }
  zvm::Env env({}, {});
  const auto traced_root = merkle_root_traced(env, leaves);
  crypto::MerkleTree native(leaves);
  EXPECT_EQ(traced_root, native.root());
  if (n > 1) {
    EXPECT_GT(env.cycles(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TracedMerkle,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 33, 100));

// ---------------------------------------------------------------------------
// Randomized guest-vs-host equivalence

struct RandomWorkloadCase {
  u64 seed;
  u32 rounds;
  u32 records_per_round;
  u32 flow_universe;  // smaller -> more merges
};

class RandomizedAggregation
    : public ::testing::TestWithParam<RandomWorkloadCase> {};

TEST_P(RandomizedAggregation, GuestMatchesReferenceState) {
  const auto& param = GetParam();
  Xoshiro256 rng(param.seed);
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed(
      "rand-agg-" + std::to_string(param.seed));
  AggregationService service(board);
  Auditor auditor(board);

  // Independent reference state applying the same records without proofs.
  CLogState reference;

  for (u32 round = 0; round < param.rounds; ++round) {
    RLogBatch batch;
    batch.router_id = 0;
    batch.window_id = round + 1;
    for (u32 i = 0; i < param.records_per_round; ++i) {
      FlowRecord record;
      PacketObservation pkt;
      pkt.key = sim::synth_flow_key(rng.uniform(param.flow_universe),
                                    param.seed);
      pkt.timestamp_ms = round * 5000 + i;
      pkt.bytes = 100 + static_cast<u32>(rng.uniform(1000));
      pkt.hop_count = static_cast<u8>(1 + rng.uniform(20));
      pkt.rtt_us = static_cast<u32>(rng.uniform(100'000));
      pkt.jitter_us = static_cast<u32>(rng.uniform(5'000));
      record.observe(pkt);
      if (rng.uniform(4) == 0) {
        pkt.dropped = true;
        record.observe(pkt);
      }
      batch.records.push_back(std::move(record));
    }
    ASSERT_TRUE(
        board.publish(make_commitment(batch, key, round).value()).ok());

    auto round_result = service.aggregate({batch});
    ASSERT_TRUE(round_result.ok()) << round_result.error().to_string();
    ASSERT_TRUE(auditor.accept_round(round_result.value().receipt).ok());

    // Reference: sorted identically (single batch: original order).
    reference.apply_records(batch.records);
    EXPECT_EQ(service.state().root(), reference.root());
    EXPECT_EQ(round_result.value().journal.new_root, reference.root());
    EXPECT_EQ(auditor.current_root(), reference.root());
  }
  EXPECT_EQ(auditor.rounds_accepted(), param.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RandomizedAggregation,
    ::testing::Values(RandomWorkloadCase{1, 3, 10, 8},
                      RandomWorkloadCase{2, 2, 30, 100},
                      RandomWorkloadCase{3, 4, 5, 2},
                      RandomWorkloadCase{4, 1, 50, 50}));

// ---------------------------------------------------------------------------
// Query-mode equivalence

struct QueryCase {
  u64 seed;
  Query query;
};

class QueryModes : public ::testing::TestWithParam<u64> {};

TEST_P(QueryModes, SelectiveMatchesCompleteAndReference) {
  const u64 seed = GetParam();
  Xoshiro256 rng(seed);
  CommitmentBoard board;
  const auto key =
      crypto::schnorr_keygen_from_seed("qmode-" + std::to_string(seed));

  RLogBatch batch;
  batch.router_id = 0;
  batch.window_id = 1;
  for (u32 i = 0; i < 40; ++i) {
    FlowRecord record;
    PacketObservation pkt;
    pkt.key = sim::synth_flow_key(i, seed);
    pkt.timestamp_ms = 1000 + i;
    pkt.bytes = 100 + static_cast<u32>(rng.uniform(2000));
    pkt.hop_count = static_cast<u8>(1 + rng.uniform(12));
    pkt.rtt_us = static_cast<u32>(1000 + rng.uniform(90'000));
    record.observe(pkt);
    batch.records.push_back(std::move(record));
  }
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 0).value()).ok());

  AggregationService service(board);
  auto round = service.aggregate({batch});
  ASSERT_TRUE(round.ok());
  Auditor auditor(board);
  ASSERT_TRUE(auditor.accept_round(round.value().receipt).ok());

  QueryService queries(service);
  const Query cases[] = {
      Query::count(),
      Query::sum(QField::bytes),
      Query::count().and_where(QField::rtt_avg_us, CmpOp::lt, 50'000),
      Query::sum(QField::hop_sum).and_where(QField::protocol, CmpOp::eq, 6),
      Query::max(QField::rtt_max_us).and_where(QField::bytes, CmpOp::gt, 500),
      Query::min(QField::packets),
  };
  for (const auto& q : cases) {
    const QueryResult reference =
        evaluate_query(q, service.state().entries());
    auto complete = queries.run(q);
    ASSERT_TRUE(complete.ok()) << complete.error().to_string();
    auto selective = queries.run(q, {.mode = QueryMode::selective,
                                     .prove_options_override = {}});
    ASSERT_TRUE(selective.ok()) << selective.error().to_string();

    // Complete mode reproduces the reference exactly.
    EXPECT_EQ(complete.value().journal.result, reference) << q.to_string();
    // Selective mode agrees on every aggregate over the matching set.
    EXPECT_EQ(selective.value().journal.result.matched, reference.matched);
    EXPECT_EQ(selective.value().journal.result.sum, reference.sum);
    if (reference.matched > 0) {
      EXPECT_EQ(selective.value().journal.result.min, reference.min);
      EXPECT_EQ(selective.value().journal.result.max, reference.max);
    }

    // Both verify, with the right modes.
    auto vc = auditor.verify_query(complete.value().receipt, {.expected_query = &q});
    ASSERT_TRUE(vc.ok()) << vc.error().to_string();
    EXPECT_EQ(vc.value().mode, QueryMode::complete);
    auto vs = auditor.verify_query(selective.value().receipt, {.expected_query = &q});
    ASSERT_TRUE(vs.ok()) << vs.error().to_string();
    EXPECT_EQ(vs.value().mode, QueryMode::selective);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryModes, ::testing::Values(11, 22, 33));

TEST(QueryModesSpecial, SelectiveWithNoMatches) {
  CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("qmode-empty");
  RLogBatch batch;
  batch.router_id = 0;
  batch.window_id = 1;
  FlowRecord record;
  PacketObservation pkt;
  pkt.key = {1, 2, 3, 4, 6};
  pkt.timestamp_ms = 1;
  pkt.bytes = 10;
  record.observe(pkt);
  batch.records.push_back(record);
  ASSERT_TRUE(board.publish(make_commitment(batch, key, 0).value()).ok());

  AggregationService service(board);
  ASSERT_TRUE(service.aggregate({batch}).ok());
  QueryService queries(service);
  const Query q =
      Query::count().and_where(QField::protocol, CmpOp::eq, 250);
  auto resp = queries.run(q, {.mode = QueryMode::selective,
                              .prove_options_override = {}});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().journal.result.matched, 0u);
}

TEST(ImagesTest, FourDistinctGuests) {
  const auto& images = guest_images();
  EXPECT_NE(images.aggregate, images.query);
  EXPECT_NE(images.aggregate, images.query_selective);
  EXPECT_NE(images.query, images.query_selective);
  EXPECT_NE(images.aggregate_incremental, images.aggregate);
  EXPECT_NE(images.aggregate_incremental, images.query);
  EXPECT_NE(images.aggregate_incremental, images.query_selective);
  EXPECT_TRUE(is_aggregation_image(images.aggregate));
  EXPECT_TRUE(is_aggregation_image(images.aggregate_incremental));
  EXPECT_FALSE(is_aggregation_image(images.query));
  EXPECT_EQ(aggregation_image(RoundKind::full), images.aggregate);
  EXPECT_EQ(aggregation_image(RoundKind::incremental),
            images.aggregate_incremental);
}

TEST(AggJournal, IncrementalRoundTripCarriesDeltaStats) {
  AggJournal j;
  j.kind = RoundKind::incremental;
  j.has_prev = true;
  j.prev_claim_digest = crypto::sha256(std::string_view("claim"));
  j.prev_root = crypto::sha256(std::string_view("prev"));
  j.new_root = crypto::sha256(std::string_view("new"));
  j.prev_entry_count = 100;
  j.new_entry_count = 102;
  j.update_count = 2;
  j.updates_digest = crypto::sha256(std::string_view("updates"));
  j.touched_entries = 5;
  j.multiproof_siblings = 11;

  Writer w;
  j.write(w);
  auto parsed = AggJournal::parse(w.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().kind, RoundKind::incremental);
  EXPECT_EQ(parsed.value().update_count, 2u);
  EXPECT_EQ(parsed.value().updates_digest, j.updates_digest);
  EXPECT_EQ(parsed.value().touched_entries, 5u);
  EXPECT_EQ(parsed.value().multiproof_siblings, 11u);

  // Full journals don't carry (or parse) the delta-stat tail.
  j.kind = RoundKind::full;
  Writer w2;
  j.write(w2);
  auto full = AggJournal::parse(w2.bytes());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().kind, RoundKind::full);
  EXPECT_EQ(full.value().touched_entries, 0u);
  EXPECT_EQ(full.value().multiproof_siblings, 0u);
}

}  // namespace
}  // namespace zkt::core
