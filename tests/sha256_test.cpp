// SHA-256 / HMAC / HKDF tests against official vectors (FIPS 180-4,
// RFC 4231, RFC 5869) plus the streaming and padded-block properties the
// zkVM relies on.
#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace zkt::crypto {
namespace {

struct Vector {
  std::string message;
  std::string digest_hex;
};

class Sha256Vectors : public ::testing::TestWithParam<Vector> {};

TEST_P(Sha256Vectors, OneShot) {
  const auto& v = GetParam();
  EXPECT_EQ(sha256(v.message).hex(), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Fips, Sha256Vectors,
    ::testing::Values(
        Vector{"",
               "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        Vector{"abc",
               "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
               "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        Vector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
               "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
               "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
        // Exactly one block of 'a' minus padding boundary cases.
        Vector{std::string(55, 'a'),
               "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"},
        Vector{std::string(56, 'a'),
               "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"},
        Vector{std::string(64, 'a'),
               "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"}));

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAtEverySplit) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789.";
  const Digest32 expected = sha256(msg);
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finalize(), expected) << "split at " << split;
  }
}

TEST(Sha256, CompressionCountMatchesFormula) {
  for (size_t n : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 119u, 120u, 1000u}) {
    Sha256 h;
    h.update(Bytes(n, 0x5a));
    (void)h.finalize();
    EXPECT_EQ(h.compressions(), sha256_compression_count(n)) << n;
  }
}

TEST(Sha256, PaddedBlocksFoldEqualsDigest) {
  for (size_t n : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 500u}) {
    Bytes data(n);
    for (size_t i = 0; i < n; ++i) data[i] = static_cast<u8>(i * 37);
    Sha256State state = Sha256State::initial();
    u64 blocks = 0;
    sha256_padded_blocks(data, [&](const std::array<u8, 64>& block) {
      state = sha256_compress(state, block);
      ++blocks;
    });
    EXPECT_EQ(state.to_digest(), sha256(data)) << n;
    EXPECT_EQ(blocks, sha256_compression_count(n)) << n;
  }
}

TEST(Sha256, StateDigestRoundTrip) {
  const Digest32 d = sha256(std::string_view("state"));
  EXPECT_EQ(Sha256State::from_digest(d).to_digest(), d);
}

TEST(Sha256, PairDiffersFromConcatenationOrder) {
  const Digest32 a = sha256(std::string_view("a"));
  const Digest32 b = sha256(std::string_view("b"));
  EXPECT_NE(sha256_pair(a, b), sha256_pair(b, a));
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_sha256(key, bytes_of("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))
          .hex(),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hmac_sha256(key, bytes_of("Test Using Larger Than Block-Size Key - "
                                "Hash Key First"))
          .hex(),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 5869 HKDF-SHA256 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex_bytes("000102030405060708090a0b0c");
  const Bytes info = hex_bytes("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, LengthsAndDeterminism) {
  const Bytes ikm = bytes_of("input key material");
  for (size_t len : {1u, 31u, 32u, 33u, 64u, 100u}) {
    const Bytes a = hkdf_sha256(ikm, bytes_of("salt"), bytes_of("info"), len);
    const Bytes b = hkdf_sha256(ikm, bytes_of("salt"), bytes_of("info"), len);
    EXPECT_EQ(a.size(), len);
    EXPECT_EQ(a, b);
  }
  EXPECT_NE(hkdf_sha256(ikm, bytes_of("salt"), bytes_of("info1"), 32),
            hkdf_sha256(ikm, bytes_of("salt"), bytes_of("info2"), 32));
}

TEST(Digest32, HexAndZero) {
  Digest32 zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.hex(), std::string(64, '0'));
  const Digest32 d = sha256(std::string_view("x"));
  EXPECT_FALSE(d.is_zero());
  EXPECT_EQ(Digest32::from_hex(d.hex()), d);
}

}  // namespace
}  // namespace zkt::crypto
