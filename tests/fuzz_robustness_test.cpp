// Parser-robustness sweeps: every deserializer in the system must survive
// (a) random garbage, (b) truncations of valid encodings, and (c) random
// single-byte mutations of valid encodings — returning errors, never
// crashing or accepting garbage silently. These stand in for a fuzzing
// campaign and run deterministically from seeded DRBGs.
#include <gtest/gtest.h>

#include "core/commitment.h"
#include "core/guests.h"
#include "core/query.h"
#include "crypto/chacha20.h"
#include "netflow/record.h"
#include "netflow/sketch.h"
#include "netflow/v9.h"
#include "zvm/prover.h"
#include "zvm/receipt.h"
#include "zvm/verifier.h"

namespace zkt {
namespace {

using crypto::ChaChaDrbg;

// ---------------------------------------------------------------------------
// Random garbage never crashes any deserializer.

class GarbageInputs : public ::testing::TestWithParam<u64> {};

TEST_P(GarbageInputs, AllParsersSurvive) {
  ChaChaDrbg drbg(as_bytes_view(GetParam()));
  for (size_t size : {0u, 1u, 7u, 64u, 300u, 4096u}) {
    const Bytes junk = drbg.bytes(size);

    {
      Reader r(junk);
      (void)netflow::FlowRecord::deserialize(r);
    }
    {
      Reader r(junk);
      (void)netflow::RLogBatch::deserialize(r);
    }
    {
      Reader r(junk);
      (void)netflow::CountMinSketch::deserialize(r);
    }
    {
      Reader r(junk);
      (void)core::Query::deserialize(r);
    }
    {
      Reader r(junk);
      (void)core::Commitment::deserialize(r);
    }
    {
      Reader r(junk);
      (void)crypto::MerkleProof::deserialize(r);
    }
    {
      Reader r(junk);
      (void)zvm::TraceRow::deserialize(r);
    }
    (void)zvm::Receipt::from_bytes(junk);
    (void)core::AggJournal::parse(junk);
    (void)core::QueryJournal::parse(junk);
    netflow::V9Collector collector;
    (void)collector.ingest(junk);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageInputs,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Truncations of valid encodings are rejected (no partial accepts).

netflow::RLogBatch sample_batch() {
  netflow::RLogBatch batch;
  batch.router_id = 2;
  batch.window_id = 9;
  for (u32 f = 0; f < 5; ++f) {
    netflow::FlowRecord rec;
    netflow::PacketObservation pkt;
    pkt.key = {f + 1, 0x09090909, 1000, 443, 6};
    pkt.timestamp_ms = 100 + f;
    pkt.bytes = 500;
    rec.observe(pkt);
    batch.records.push_back(rec);
  }
  return batch;
}

TEST(Truncation, RLogBatchEveryPrefixRejected) {
  const Bytes full = sample_batch().canonical_bytes();
  for (size_t len = 0; len < full.size(); ++len) {
    Reader r(BytesView(full.data(), len));
    auto parsed = netflow::RLogBatch::deserialize(r);
    // A strict prefix must either fail or leave the reader short (we also
    // require r.done() in real callers); it can never parse the full batch.
    if (parsed.ok()) {
      EXPECT_LT(parsed.value().records.size(),
                sample_batch().records.size() + 1);
      EXPECT_TRUE(len < full.size());
    }
  }
  SUCCEED();
}

TEST(Truncation, ReceiptEveryPrefixRejected) {
  // Build a small real receipt via a trivial guest.
  static const zvm::ImageID image = zvm::ImageRegistry::instance().add(
      "fuzz.trivial", 1, [](zvm::Env& env) -> Status {
        env.commit_u64(env.alu(zvm::AluOp::add, 2, 2));
        return {};
      });
  zvm::Prover prover;
  auto receipt = prover.prove(image, {});
  ASSERT_TRUE(receipt.ok());
  const Bytes full = receipt.value().to_bytes();
  for (size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(zvm::Receipt::from_bytes(BytesView(full.data(), len)).ok())
        << "prefix length " << len;
  }
}

TEST(Truncation, QueryEveryPrefixRejected) {
  core::Query q = core::Query::sum(core::QField::bytes)
                      .and_where(core::QField::protocol, core::CmpOp::eq, 6);
  const Bytes full = q.to_bytes();
  for (size_t len = 0; len < full.size(); ++len) {
    Reader r(BytesView(full.data(), len));
    auto parsed = core::Query::deserialize(r);
    EXPECT_FALSE(parsed.ok() && r.done()) << len;
  }
}

// ---------------------------------------------------------------------------
// Byte mutations of a valid v9 packet stream never crash the collector.

TEST(Mutation, V9CollectorSurvivesMutations) {
  std::vector<netflow::FlowRecord> records = sample_batch().records;
  netflow::V9Exporter exporter(netflow::V9Config{.source_id = 5});
  const auto packets = exporter.export_records(records, 1000);
  ASSERT_EQ(packets.size(), 1u);

  ChaChaDrbg drbg(std::string_view("v9-mutations"));
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = packets[0];
    const size_t pos = drbg.uniform(mutated.size());
    mutated[pos] ^= static_cast<u8>(1 + drbg.uniform(255));
    netflow::V9Collector collector;
    (void)collector.ingest(packets[0]);  // learn the real template first
    (void)collector.ingest(mutated);     // then feed the mutant
  }
  SUCCEED();
}

TEST(Mutation, ReceiptMutationsNeverVerify) {
  static const zvm::ImageID image = zvm::ImageRegistry::instance().add(
      "fuzz.trivial2", 1, [](zvm::Env& env) -> Status {
        env.commit_blob(bytes_of("output"));
        const auto digest = env.sha256(bytes_of("work"));
        env.commit_digest(digest);
        return {};
      });
  zvm::Prover prover;
  zvm::Verifier verifier;
  auto receipt = prover.prove(image, bytes_of("input"));
  ASSERT_TRUE(receipt.ok());
  const Bytes full = receipt.value().to_bytes();

  ChaChaDrbg drbg(std::string_view("receipt-mutations"));
  int parsed_ok = 0, verified_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = full;
    const size_t pos = drbg.uniform(mutated.size());
    const u8 bit = static_cast<u8>(1u << drbg.uniform(8));
    mutated[pos] ^= bit;
    auto parsed = zvm::Receipt::from_bytes(mutated);
    if (!parsed.ok()) continue;
    ++parsed_ok;
    if (verifier.verify(parsed.value(), image).ok()) {
      // Only acceptable if the mutation didn't change canonical content.
      if (parsed.value().to_bytes() != full) ++verified_ok;
    }
  }
  EXPECT_EQ(verified_ok, 0) << "a mutated receipt verified (" << parsed_ok
                            << " parsed)";
}

}  // namespace
}  // namespace zkt
