// Logger tests: level gating and thread safety of the logging macro.
#include <gtest/gtest.h>

#include <thread>

#include "common/log.h"

namespace zkt {
namespace {

TEST(Log, LevelGatingAndRestore) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::error);
  EXPECT_EQ(log_level(), LogLevel::error);
  // Below-threshold statements must not evaluate their stream arguments.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  ZKT_LOG(debug) << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::trace);
  ZKT_LOG(debug) << count();
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(Log, OffSilencesEverything) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::off);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  ZKT_LOG(error) << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(original);
}

TEST(Log, ConcurrentWritersDoNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::off);  // exercise the gate, not stderr volume
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        ZKT_LOG(error) << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(original);
  SUCCEED();
}

}  // namespace
}  // namespace zkt
