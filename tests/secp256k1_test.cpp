// secp256k1 arithmetic tests: U256 limb arithmetic, prime-field ops, scalar
// ops, group law, and known multiples of the generator.
#include <gtest/gtest.h>

#include "crypto/secp256k1.h"

namespace zkt::crypto {
namespace {

TEST(U256, BytesRoundTrip) {
  const U256 v = U256::from_hex(
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(U256::from_be_bytes(v.be_bytes()), v);
  EXPECT_EQ(v.hex(),
            "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256, ShortHexLeftPads) {
  EXPECT_EQ(U256::from_hex("ff"), U256(255));
}

TEST(U256, Comparisons) {
  const U256 small(1);
  const U256 mid = U256::from_hex("0100000000000000000000000000000000");
  const U256 big = U256::from_hex(
      "8000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_LT(small, mid);
  EXPECT_LT(mid, big);
  EXPECT_EQ(small, U256(1));
}

TEST(U256, AddSubInverse) {
  const U256 a = U256::from_hex(
      "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef");
  const U256 b = U256::from_hex(
      "0123456701234567012345670123456701234567012345670123456701234567");
  u64 carry = 0, borrow = 0;
  const U256 sum = add_carry(a, b, carry);
  EXPECT_EQ(carry, 0u);
  const U256 back = sub_borrow(sum, b, borrow);
  EXPECT_EQ(borrow, 0u);
  EXPECT_EQ(back, a);
}

TEST(U256, CarryAndBorrowPropagate) {
  const U256 max = U256::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  u64 carry = 0;
  const U256 wrapped = add_carry(max, U256(1), carry);
  EXPECT_EQ(carry, 1u);
  EXPECT_TRUE(wrapped.is_zero());

  u64 borrow = 0;
  const U256 under = sub_borrow(U256(0), U256(1), borrow);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(under, max);
}

TEST(U256, MulWideSmall) {
  const auto r = mul_wide(U256(0xFFFFFFFFFFFFFFFFULL), U256(2));
  EXPECT_EQ(r[0], 0xFFFFFFFFFFFFFFFEULL);
  EXPECT_EQ(r[1], 1u);
  for (int i = 2; i < 8; ++i) EXPECT_EQ(r[i], 0u);
}

TEST(U256, BitAccess) {
  const U256 v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.is_odd());
  EXPECT_TRUE(U256(7).is_odd());
}

TEST(U256, Shr) {
  const U256 v = U256::from_hex(
    "8000000000000000000000000000000000000000000000000000000000000001");
  const U256 s = shr(v, 1);
  EXPECT_EQ(s.hex(),
            "4000000000000000000000000000000000000000000000000000000000000000");
}

// ---------------------------------------------------------------------------
// Field

TEST(Fe, MulInverse) {
  const Fe a(U256::from_hex(
      "123456789abcdef00fedcba987654321aaaaaaaabbbbbbbbccccccccdddddddd"));
  EXPECT_EQ(fe_mul(a, fe_inv(a)), Fe(1));
}

TEST(Fe, AddNegIsZero) {
  const Fe a(U256::from_hex("abcdef"));
  EXPECT_TRUE(fe_add(a, fe_neg(a)).is_zero());
  EXPECT_TRUE(fe_sub(a, a).is_zero());
}

TEST(Fe, ReductionWrapsModP) {
  // p + 5 reduces to 5.
  u64 carry = 0;
  const U256 p_plus_5 = add_carry(secp_p(), U256(5), carry);
  ASSERT_EQ(carry, 0u);
  EXPECT_EQ(Fe(p_plus_5), Fe(5));
}

TEST(Fe, FermatLittleTheorem) {
  // a^(p-1) == 1 for a != 0.
  const Fe a(U256::from_hex("02"));
  u64 borrow = 0;
  const U256 p_minus_1 = sub_borrow(secp_p(), U256(1), borrow);
  EXPECT_EQ(fe_pow(a, p_minus_1), Fe(1));
}

TEST(Fe, SqrtRoundTrip) {
  const Fe a(U256::from_hex("09"));
  auto root = fe_sqrt(a);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(fe_sqr(*root), a);
}

TEST(Fe, SqrtOfNonResidueFails) {
  // 5 is a known quadratic non-residue mod the secp256k1 prime? Verify by
  // construction: pick x where x^2 is a residue, then its negation is not
  // (p ≡ 3 mod 4 makes -1 a non-residue).
  const Fe square = fe_sqr(Fe(U256::from_hex("abcdef1234567890")));
  EXPECT_TRUE(fe_sqrt(square).has_value());
  EXPECT_FALSE(fe_sqrt(fe_neg(square)).has_value());
}

TEST(Fe, MulCommutesAndAssociates) {
  const Fe a(U256::from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"));
  const Fe b(U256::from_hex("bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"));
  const Fe c(U256::from_hex("cccc"));
  EXPECT_EQ(fe_mul(a, b), fe_mul(b, a));
  EXPECT_EQ(fe_mul(fe_mul(a, b), c), fe_mul(a, fe_mul(b, c)));
  EXPECT_EQ(fe_mul(a, fe_add(b, c)),
            fe_add(fe_mul(a, b), fe_mul(a, c)));  // distributivity
}

// ---------------------------------------------------------------------------
// Scalar field

TEST(Scalar, MulMatchesRepeatedAdd) {
  const Scalar three(3);
  const Scalar x(U256::from_hex("123456789abcdef0"));
  const Scalar via_mul = sc_mul(three, x);
  const Scalar via_add = sc_add(x, sc_add(x, x));
  EXPECT_EQ(via_mul, via_add);
}

TEST(Scalar, NegCancels) {
  const Scalar x(U256::from_hex("deadbeef"));
  EXPECT_TRUE(sc_add(x, sc_neg(x)).is_zero());
}

TEST(Scalar, ReducesModN) {
  u64 carry = 0;
  const U256 n_plus_7 = add_carry(secp_n(), U256(7), carry);
  ASSERT_EQ(carry, 0u);
  EXPECT_EQ(Scalar(n_plus_7), Scalar(7));
}

TEST(Scalar, MulNearOrderBoundary) {
  u64 borrow = 0;
  const U256 n_minus_1 = sub_borrow(secp_n(), U256(1), borrow);
  const Scalar nm1(n_minus_1);
  // (n-1)^2 mod n == 1.
  EXPECT_EQ(sc_mul(nm1, nm1), Scalar(1));
}

// ---------------------------------------------------------------------------
// Group

TEST(Point, GeneratorOnCurve) {
  const auto g = to_affine(secp_g());
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(on_curve(*g));
}

TEST(Point, KnownMultiplesOfG) {
  const auto g2 = to_affine(point_mul_g(Scalar(2)));
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->x.v.hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(g2->y.v.hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");

  const auto g3 = to_affine(point_mul_g(Scalar(3)));
  ASSERT_TRUE(g3.has_value());
  EXPECT_EQ(g3->x.v.hex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
}

TEST(Point, DoubleEqualsAddSelf) {
  const Point g = secp_g();
  const auto via_double = to_affine(point_double(g));
  const auto via_add = to_affine(point_add(g, g));
  ASSERT_TRUE(via_double && via_add);
  EXPECT_EQ(via_double->x, via_add->x);
  EXPECT_EQ(via_double->y, via_add->y);
}

TEST(Point, ScalarMulDistributes) {
  // (k1 + k2) * G == k1*G + k2*G.
  const Scalar k1(U256::from_hex("1234567890abcdef"));
  const Scalar k2(U256::from_hex("fedcba0987654321"));
  const auto lhs = to_affine(point_mul_g(sc_add(k1, k2)));
  const auto rhs =
      to_affine(point_add(point_mul_g(k1), point_mul_g(k2)));
  ASSERT_TRUE(lhs && rhs);
  EXPECT_EQ(lhs->x, rhs->x);
  EXPECT_EQ(lhs->y, rhs->y);
}

TEST(Point, OrderTimesGIsInfinity) {
  // (n-1)*G + G == infinity.
  u64 borrow = 0;
  Scalar nm1;
  nm1.v = sub_borrow(secp_n(), U256(1), borrow);
  const Point almost = point_mul(nm1, secp_g());
  EXPECT_TRUE(point_add(almost, secp_g()).is_infinity());
}

TEST(Point, AddInverseIsInfinity) {
  const Point g = secp_g();
  EXPECT_TRUE(point_add(g, point_neg(g)).is_infinity());
}

TEST(Point, InfinityIsIdentity) {
  const Point g = secp_g();
  const auto sum = to_affine(point_add(g, Point::infinity()));
  const auto ga = to_affine(g);
  ASSERT_TRUE(sum && ga);
  EXPECT_EQ(sum->x, ga->x);
  EXPECT_EQ(sum->y, ga->y);
  EXPECT_TRUE(point_mul(Scalar(0), g).is_infinity());
}

TEST(Point, LiftXProducesEvenY) {
  const auto g3 = to_affine(point_mul_g(Scalar(3)));
  ASSERT_TRUE(g3.has_value());
  const auto lifted = lift_x(g3->x.v);
  ASSERT_TRUE(lifted.has_value());
  EXPECT_TRUE(on_curve(*lifted));
  EXPECT_FALSE(lifted->y.is_odd());
  EXPECT_EQ(lifted->x, g3->x);
}

TEST(Point, LiftXRejectsNonCurveX) {
  // x = 5 is not on secp256k1 (5^3+7 = 132 is a non-residue); x = p invalid.
  EXPECT_FALSE(lift_x(secp_p()).has_value());
  bool found_invalid = false;
  for (u64 x = 2; x < 20 && !found_invalid; ++x) {
    if (!lift_x(U256(x)).has_value()) found_invalid = true;
  }
  EXPECT_TRUE(found_invalid);
}

}  // namespace
}  // namespace zkt::crypto
