// Merkle tree tests: construction, proofs, updates, appends, adversarial
// proof manipulation, and serialization. Parameterized over tree sizes since
// padding/depth edge cases live at power-of-two boundaries.
#include <gtest/gtest.h>

#include "common/serial.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace zkt::crypto {
namespace {

std::vector<Digest32> make_leaves(u64 n, u64 seed = 0) {
  std::vector<Digest32> leaves;
  leaves.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    Writer w;
    w.u64v(seed);
    w.u64v(i);
    leaves.push_back(MerkleTree::hash_leaf(w.bytes()));
  }
  return leaves;
}

class MerkleSizes : public ::testing::TestWithParam<u64> {};

TEST_P(MerkleSizes, EveryLeafProves) {
  const u64 n = GetParam();
  MerkleTree tree(make_leaves(n));
  const Digest32 root = tree.root();
  EXPECT_EQ(tree.leaf_count(), n);
  for (u64 i = 0; i < n; ++i) {
    const auto proof = tree.prove(i);
    EXPECT_EQ(proof.leaf_index, i);
    EXPECT_EQ(proof.leaf_count, n);
    EXPECT_TRUE(MerkleTree::verify(root, tree.leaf(i), proof).ok())
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleSizes, WrongLeafFails) {
  const u64 n = GetParam();
  if (n == 0) return;
  MerkleTree tree(make_leaves(n));
  const auto proof = tree.prove(0);
  const Digest32 wrong = MerkleTree::hash_leaf(bytes_of("not a member"));
  EXPECT_FALSE(MerkleTree::verify(tree.root(), wrong, proof).ok());
}

TEST_P(MerkleSizes, TamperedSiblingFails) {
  const u64 n = GetParam();
  if (n < 2) return;
  MerkleTree tree(make_leaves(n));
  for (u64 i = 0; i < std::min<u64>(n, 4); ++i) {
    auto proof = tree.prove(i);
    for (size_t s = 0; s < proof.siblings.size(); ++s) {
      auto tampered = proof;
      tampered.siblings[s].bytes[0] ^= 1;
      EXPECT_FALSE(
          MerkleTree::verify(tree.root(), tree.leaf(i), tampered).ok())
          << "leaf " << i << " sibling " << s;
    }
  }
}

TEST_P(MerkleSizes, RebuildFromSameLeavesGivesSameRoot) {
  const u64 n = GetParam();
  MerkleTree a(make_leaves(n));
  MerkleTree b(make_leaves(n));
  MerkleTree c(make_leaves(n, /*seed=*/1));
  EXPECT_EQ(a.root(), b.root());
  if (n > 0) {
    EXPECT_NE(a.root(), c.root());
  }
}

TEST_P(MerkleSizes, AppendMatchesBulkBuild) {
  const u64 n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree incremental;
  for (u64 i = 0; i < n; ++i) {
    EXPECT_EQ(incremental.append_leaf(leaves[i]), i);
    EXPECT_EQ(incremental.leaf_count(), i + 1);
  }
  MerkleTree bulk(leaves);
  EXPECT_EQ(incremental.root(), bulk.root());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizes,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                           17, 31, 33, 64, 100));

TEST(Merkle, EmptyTreeRootIsEmptyLeaf) {
  MerkleTree default_tree;
  MerkleTree from_empty{std::vector<Digest32>{}};
  EXPECT_EQ(default_tree.root(), MerkleTree::empty_leaf());
  EXPECT_EQ(from_empty.root(), MerkleTree::empty_leaf());
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  const auto proof = tree.prove(0);
  EXPECT_TRUE(proof.siblings.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], proof).ok());
}

TEST(Merkle, UpdateLeafChangesOnlyExpectedRoot) {
  auto leaves = make_leaves(10);
  MerkleTree tree(leaves);
  const Digest32 new_leaf = MerkleTree::hash_leaf(bytes_of("updated"));
  tree.update_leaf(3, new_leaf);

  leaves[3] = new_leaf;
  MerkleTree rebuilt(leaves);
  EXPECT_EQ(tree.root(), rebuilt.root());

  // Proofs for all leaves still verify against the new root.
  for (u64 i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        MerkleTree::verify(tree.root(), tree.leaf(i), tree.prove(i)).ok());
  }
}

TEST(Merkle, ProofBoundToPosition) {
  MerkleTree tree(make_leaves(8));
  auto proof = tree.prove(2);
  // Reusing leaf 2's proof for index 3 must fail even with leaf 3's digest.
  proof.leaf_index = 3;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), tree.leaf(3), proof).ok());
}

TEST(Merkle, WrongDepthProofRejected) {
  MerkleTree tree(make_leaves(8));
  auto proof = tree.prove(0);
  proof.siblings.pop_back();
  EXPECT_FALSE(MerkleTree::verify(tree.root(), tree.leaf(0), proof).ok());
  auto proof2 = tree.prove(0);
  proof2.siblings.push_back(MerkleTree::empty_leaf());
  EXPECT_FALSE(MerkleTree::verify(tree.root(), tree.leaf(0), proof2).ok());
}

TEST(Merkle, OutOfRangeIndexRejected) {
  MerkleTree tree(make_leaves(8));
  auto proof = tree.prove(0);
  proof.leaf_index = 8;  // beyond padded capacity
  EXPECT_FALSE(MerkleTree::verify(tree.root(), tree.leaf(0), proof).ok());
}

TEST(Merkle, LeafCountMismatchRejected) {
  MerkleTree tree(make_leaves(8));
  auto proof = tree.prove(0);
  proof.leaf_count = 16;  // implies a deeper tree
  EXPECT_FALSE(MerkleTree::verify(tree.root(), tree.leaf(0), proof).ok());
}

TEST(Merkle, LeafAndNodeDomainsSeparated) {
  // hash_leaf(x) != hash_node parts: a 64-byte "leaf" that spells two
  // digests must not collide with the internal node over those digests.
  const Digest32 a = sha256(std::string_view("a"));
  const Digest32 b = sha256(std::string_view("b"));
  Bytes concat;
  append(concat, a.view());
  append(concat, b.view());
  EXPECT_NE(MerkleTree::hash_leaf(concat), MerkleTree::hash_node(a, b));
}

TEST(Merkle, ProofSerializationRoundTrip) {
  MerkleTree tree(make_leaves(13));
  for (u64 i : {0ULL, 5ULL, 12ULL}) {
    const auto proof = tree.prove(i);
    Writer w;
    proof.serialize(w);
    EXPECT_EQ(w.size(), proof.byte_size());
    Reader r(w.bytes());
    auto parsed = MerkleProof::deserialize(r);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(r.done());
    EXPECT_EQ(parsed.value().leaf_index, proof.leaf_index);
    EXPECT_EQ(parsed.value().leaf_count, proof.leaf_count);
    EXPECT_EQ(parsed.value().siblings, proof.siblings);
    EXPECT_TRUE(
        MerkleTree::verify(tree.root(), tree.leaf(i), parsed.value()).ok());
  }
}

TEST(Merkle, ProofDeserializeRejectsGarbage) {
  Reader empty({});
  EXPECT_FALSE(MerkleProof::deserialize(empty).ok());

  Writer w;
  w.u64v(0);
  w.u64v(1);
  w.u16v(65);  // deeper than any 64-bit tree
  Reader r(w.bytes());
  EXPECT_FALSE(MerkleProof::deserialize(r).ok());
}

TEST(Merkle, BuildHashCount) {
  EXPECT_EQ(MerkleTree::build_hash_count(0), 0u);
  EXPECT_EQ(MerkleTree::build_hash_count(1), 0u);
  EXPECT_EQ(MerkleTree::build_hash_count(2), 1u);
  EXPECT_EQ(MerkleTree::build_hash_count(3), 3u);
  EXPECT_EQ(MerkleTree::build_hash_count(4), 3u);
  EXPECT_EQ(MerkleTree::build_hash_count(3000), 4095u);
}

// ---------------------------------------------------------------------------
// Multiproofs

struct MultiCase {
  u64 tree_size;
  std::vector<u64> indices;
};

class MerkleMulti : public ::testing::TestWithParam<MultiCase> {};

TEST_P(MerkleMulti, VerifiesAndIsSmallerThanSingles) {
  const auto& param = GetParam();
  MerkleTree tree(make_leaves(param.tree_size));
  const auto proof = tree.prove_multi(param.indices);

  std::vector<std::pair<u64, Digest32>> leaves;
  for (u64 i : proof.indices) leaves.emplace_back(i, tree.leaf(i));
  EXPECT_TRUE(MerkleTree::verify_multi(tree.root(), leaves, proof).ok());

  // Never more sibling digests than the individual proofs combined (the
  // hash payload dominates; framing overhead is a few bytes per index).
  size_t single_siblings = 0;
  for (u64 i : proof.indices) single_siblings += tree.prove(i).siblings.size();
  EXPECT_LE(proof.siblings.size(), single_siblings);
  if (proof.indices.size() > 1 && param.tree_size > 2) {
    EXPECT_LT(proof.siblings.size(), single_siblings);  // real sharing
  }

  // Serialization round-trip.
  Writer w;
  proof.serialize(w);
  Reader r(w.bytes());
  auto parsed = MerkleMultiProof::deserialize(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(MerkleTree::verify_multi(tree.root(), leaves,
                                       parsed.value()).ok());
}

TEST_P(MerkleMulti, TamperDetected) {
  const auto& param = GetParam();
  MerkleTree tree(make_leaves(param.tree_size));
  const auto proof = tree.prove_multi(param.indices);
  std::vector<std::pair<u64, Digest32>> leaves;
  for (u64 i : proof.indices) leaves.emplace_back(i, tree.leaf(i));

  // Any leaf digest flip fails.
  for (size_t l = 0; l < leaves.size(); ++l) {
    auto bad = leaves;
    bad[l].second.bytes[0] ^= 1;
    EXPECT_FALSE(MerkleTree::verify_multi(tree.root(), bad, proof).ok());
  }
  // Any sibling flip fails.
  for (size_t s = 0; s < proof.siblings.size(); ++s) {
    auto bad = proof;
    bad.siblings[s].bytes[0] ^= 1;
    EXPECT_FALSE(MerkleTree::verify_multi(tree.root(), leaves, bad).ok());
  }
  // Wrong root fails.
  Digest32 wrong = tree.root();
  wrong.bytes[3] ^= 1;
  EXPECT_FALSE(MerkleTree::verify_multi(wrong, leaves, proof).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MerkleMulti,
    ::testing::Values(MultiCase{1, {0}}, MultiCase{8, {3}},
                      MultiCase{8, {0, 1}}, MultiCase{8, {0, 7}},
                      MultiCase{8, {0, 1, 2, 3, 4, 5, 6, 7}},
                      MultiCase{16, {2, 3, 9}},
                      MultiCase{33, {0, 16, 31, 32}},
                      MultiCase{100, {5, 6, 7, 50, 99}},
                      MultiCase{100, {7, 5, 99, 6, 50, 7}}  /* dups/unsorted */
                      ));

TEST(MerkleMultiEdge, AllLeavesNeedsNoSiblingsBeyondPadding) {
  MerkleTree tree(make_leaves(8));
  std::vector<u64> all = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto proof = tree.prove_multi(all);
  EXPECT_TRUE(proof.siblings.empty());
}

TEST(MerkleMultiEdge, MismatchedLeafSetRejected) {
  MerkleTree tree(make_leaves(16));
  const auto proof = tree.prove_multi(std::vector<u64>{2, 5});
  std::vector<std::pair<u64, Digest32>> wrong_count = {{2, tree.leaf(2)}};
  EXPECT_FALSE(
      MerkleTree::verify_multi(tree.root(), wrong_count, proof).ok());
  std::vector<std::pair<u64, Digest32>> wrong_index = {{2, tree.leaf(2)},
                                                       {6, tree.leaf(6)}};
  EXPECT_FALSE(
      MerkleTree::verify_multi(tree.root(), wrong_index, proof).ok());
}

// ---------------------------------------------------------------------------
// Batched path verification (verify_batch)

TEST(MerkleBatch, AcceptsExactlyWhatVerifyAccepts) {
  MerkleTree tree(make_leaves(16));
  std::vector<MerkleProof> proofs;
  for (u64 i : {0ULL, 1ULL, 7ULL, 15ULL}) proofs.push_back(tree.prove(i));
  std::vector<Digest32> opened = {tree.leaf(0), tree.leaf(1), tree.leaf(7),
                                  tree.leaf(15)};
  std::vector<LeafProof> items;
  for (size_t i = 0; i < proofs.size(); ++i) {
    items.push_back(LeafProof{&opened[i], &proofs[i]});
  }
  PathBatchStats stats;
  EXPECT_TRUE(MerkleTree::verify_batch(tree.root(), items, &stats).ok());
  EXPECT_GT(stats.node_hashes, 0u);
}

TEST(MerkleBatch, AdjacentLeavesShareConvergingPaths) {
  // Leaves 0 and 1 share every path node above the first level; the batch
  // must compute those once.
  MerkleTree tree(make_leaves(32));
  const auto p0 = tree.prove(0);
  const auto p1 = tree.prove(1);
  const Digest32 l0 = tree.leaf(0);
  const Digest32 l1 = tree.leaf(1);
  const std::vector<LeafProof> items = {{&l0, &p0}, {&l1, &p1}};
  PathBatchStats stats;
  ASSERT_TRUE(MerkleTree::verify_batch(tree.root(), items, &stats).ok());
  EXPECT_GT(stats.node_hashes_shared, 0u);
  // Sequential cost would be 2 * depth hash_node applications.
  EXPECT_LT(stats.node_hashes, 2 * p0.siblings.size());
}

TEST(MerkleBatch, WrongRootOrTamperedItemRejected) {
  MerkleTree tree(make_leaves(8));
  const auto p2 = tree.prove(2);
  const auto p5 = tree.prove(5);
  const Digest32 l2 = tree.leaf(2);
  Digest32 l5 = tree.leaf(5);
  const std::vector<LeafProof> items = {{&l2, &p2}, {&l5, &p5}};
  Digest32 wrong = tree.root();
  wrong.bytes[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify_batch(wrong, items, nullptr).ok());
  // One bad leaf fails the batch even though the other item is intact.
  l5.bytes[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify_batch(tree.root(), items, nullptr).ok());
}

TEST(MerkleBatch, ShapeErrorsMatchSingleVerify) {
  MerkleTree tree(make_leaves(8));
  const Digest32 l0 = tree.leaf(0);

  auto too_shallow = tree.prove(0);
  too_shallow.siblings.pop_back();
  auto out_of_range = tree.prove(0);
  out_of_range.leaf_index = 8;

  for (const auto* bad : {&too_shallow, &out_of_range}) {
    const Status single = MerkleTree::verify(tree.root(), l0, *bad);
    const std::vector<LeafProof> items = {{&l0, bad}};
    const Status batched = MerkleTree::verify_batch(tree.root(), items);
    ASSERT_FALSE(single.ok());
    ASSERT_FALSE(batched.ok());
    EXPECT_EQ(batched.error().code, single.error().code);
  }
}

TEST(MerkleBatch, EmptyBatchIsOk) {
  MerkleTree tree(make_leaves(4));
  PathBatchStats stats;
  EXPECT_TRUE(
      MerkleTree::verify_batch(tree.root(), {}, &stats).ok());
  EXPECT_EQ(stats.node_hashes, 0u);
}

TEST(MerkleBatch, MatchesSingleVerifyOverManyShapes) {
  for (u64 n : {2ULL, 5ULL, 16ULL, 33ULL}) {
    MerkleTree tree(make_leaves(n));
    std::vector<MerkleProof> proofs;
    std::vector<Digest32> opened;
    for (u64 i = 0; i < n; i += 2) {
      proofs.push_back(tree.prove(i));
      opened.push_back(tree.leaf(i));
    }
    std::vector<LeafProof> items;
    for (size_t i = 0; i < proofs.size(); ++i) {
      items.push_back(LeafProof{&opened[i], &proofs[i]});
    }
    EXPECT_TRUE(MerkleTree::verify_batch(tree.root(), items).ok()) << n;
  }
}

TEST(Merkle, DepthGrowsLogarithmically) {
  EXPECT_EQ(MerkleTree(make_leaves(1)).depth(), 0u);
  EXPECT_EQ(MerkleTree(make_leaves(2)).depth(), 1u);
  EXPECT_EQ(MerkleTree(make_leaves(5)).depth(), 3u);
  EXPECT_EQ(MerkleTree(make_leaves(3000)).depth(), 12u);
}

TEST(Merkle, InsertLeafMatchesFreshBuildAtEveryPosition) {
  // insert_leaf(i) must equal rebuilding from scratch with the leaf spliced
  // in at i — including the capacity-doubling boundary.
  for (u64 n : {1u, 3u, 4u, 7u, 8u}) {
    auto leaves = make_leaves(n);
    const auto extra = MerkleTree::hash_leaf(Bytes{0xEE});
    for (u64 at = 0; at <= n; ++at) {
      MerkleTree incremental(leaves);
      incremental.insert_leaf(at, extra);
      auto spliced = leaves;
      spliced.insert(spliced.begin() + static_cast<ptrdiff_t>(at), extra);
      MerkleTree fresh(spliced);
      EXPECT_EQ(incremental.root(), fresh.root()) << n << " @ " << at;
      EXPECT_EQ(incremental.leaf_count(), n + 1);
    }
  }
}

TEST(Merkle, GrowCapacityKeepsLeafCountAndLiftsRootByEmptySubtrees) {
  // Padding a tree to a larger capacity maps root -> H(root, empty_subtree)
  // per doubling and must not disturb leaf_count or existing proofs.
  MerkleTree tree(make_leaves(8));
  const Digest32 root8 = tree.root();
  tree.grow_capacity(20);  // 8 -> 32: two doublings
  EXPECT_EQ(tree.leaf_count(), 8u);
  EXPECT_EQ(tree.capacity(), 32u);
  Digest32 lifted = root8;
  lifted = MerkleTree::hash_node(lifted, MerkleTree::empty_subtree_root(3));
  lifted = MerkleTree::hash_node(lifted, MerkleTree::empty_subtree_root(4));
  EXPECT_EQ(tree.root(), lifted);

  // Multiproofs over occupied + padded slots verify against the grown root.
  auto proof = tree.prove_multi(std::vector<u64>{2, 8, 9});
  std::vector<std::pair<u64, Digest32>> opened = {
      {2, tree.leaf(2)}, {8, MerkleTree::empty_leaf()},
      {9, MerkleTree::empty_leaf()}};
  // The proof's leaf_count reflects the 8 real leaves; verify against the
  // grown depth by lifting leaf_count to the padded width.
  auto grown_proof = proof;
  grown_proof.leaf_count = 32;
  EXPECT_TRUE(
      MerkleTree::verify_multi(tree.root(), opened, grown_proof).ok());
}

TEST(Merkle, EmptySubtreeRootMatchesBuiltEmptyTrees) {
  EXPECT_EQ(MerkleTree::empty_subtree_root(0), MerkleTree::empty_leaf());
  std::vector<Digest32> empties(8, MerkleTree::empty_leaf());
  EXPECT_EQ(MerkleTree::empty_subtree_root(3), MerkleTree(empties).root());
}

}  // namespace
}  // namespace zkt::crypto
