// Query mini-language parser tests.
#include <gtest/gtest.h>

#include "core/query_parser.h"

namespace zkt::core {
namespace {

TEST(QueryParser, BareCount) {
  auto q = parse_query("count");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().agg, AggKind::count);
  EXPECT_TRUE(q.value().where.empty());
}

TEST(QueryParser, CountWithParens) {
  EXPECT_TRUE(parse_query("count()").ok());
  EXPECT_TRUE(parse_query("COUNT(packets)").ok());
}

TEST(QueryParser, PaperExampleQuery) {
  auto q = parse_query(
      "sum(hop_sum) where src_ip = 1.1.1.1 and dst_ip = 9.9.9.9");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().agg, AggKind::sum);
  EXPECT_EQ(q.value().agg_field, QField::hop_sum);
  ASSERT_EQ(q.value().where.size(), 2u);
  EXPECT_EQ(q.value().where[0][0].field, QField::src_ip);
  EXPECT_EQ(q.value().where[0][0].op, CmpOp::eq);
  EXPECT_EQ(q.value().where[0][0].value, 0x01010101u);
  EXPECT_EQ(q.value().where[1][0].value, 0x09090909u);
}

TEST(QueryParser, AllComparisonOperators) {
  struct Case {
    const char* text;
    CmpOp op;
  };
  const Case cases[] = {{"packets = 5", CmpOp::eq},  {"packets == 5", CmpOp::eq},
                        {"packets != 5", CmpOp::ne}, {"packets < 5", CmpOp::lt},
                        {"packets <= 5", CmpOp::le}, {"packets > 5", CmpOp::gt},
                        {"packets >= 5", CmpOp::ge}};
  for (const auto& c : cases) {
    auto q = parse_query(std::string("count where ") + c.text);
    ASSERT_TRUE(q.ok()) << c.text;
    EXPECT_EQ(q.value().where[0][0].op, c.op) << c.text;
  }
}

TEST(QueryParser, OrClausesWithParens) {
  auto q = parse_query(
      "count where (protocol = 6 or protocol = 17) and packets >= 10");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  ASSERT_EQ(q.value().where.size(), 2u);
  EXPECT_EQ(q.value().where[0].size(), 2u);
  EXPECT_EQ(q.value().where[1].size(), 1u);
}

TEST(QueryParser, OrWithoutParens) {
  auto q = parse_query("count where protocol = 6 or protocol = 17");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().where.size(), 1u);
  EXPECT_EQ(q.value().where[0].size(), 2u);
}

TEST(QueryParser, MinMaxAggregates) {
  auto mn = parse_query("min(rtt_avg_us)");
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn.value().agg, AggKind::min);
  EXPECT_EQ(mn.value().agg_field, QField::rtt_avg_us);
  auto mx = parse_query("max(bytes) where duration_ms > 1000");
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx.value().agg, AggKind::max);
}

TEST(QueryParser, CaseInsensitiveKeywords) {
  auto q = parse_query("SUM(Bytes) WHERE Protocol = 6 AND Packets > 1");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().agg_field, QField::bytes);
}

TEST(QueryParser, RoundTripThroughToString) {
  // parse -> to_string -> parse gives the same digest.
  const char* texts[] = {
      "count",
      "sum(hop_sum) where src_ip = 1.1.1.1 and dst_ip = 9.9.9.9",
      "count where (protocol = 6 or protocol = 17) and packets >= 10",
      "max(rtt_max_us) where lost_packets > 0",
  };
  for (const char* text : texts) {
    auto q1 = parse_query(text);
    ASSERT_TRUE(q1.ok()) << text;
    // to_string emits SQL ("SELECT ... FROM clogs ..."); strip to our
    // grammar: drop the SELECT prefix and FROM clause.
    std::string sql = q1.value().to_string();
    // "SELECT X FROM clogs[ WHERE ...]" -> "X[ where ...]"
    std::string mini = sql.substr(7);
    const size_t from = mini.find(" FROM clogs");
    mini.erase(from, std::string(" FROM clogs").size());
    // COUNT(*) isn't in the grammar; normalize.
    if (mini.starts_with("COUNT(*)")) {
      mini = "count" + mini.substr(8);
    }
    auto q3 = parse_query(mini);
    ASSERT_TRUE(q3.ok()) << mini;
    EXPECT_EQ(q3.value().digest(), q1.value().digest()) << mini;
  }
}

TEST(QueryParser, Rejections) {
  EXPECT_FALSE(parse_query("").ok());
  EXPECT_FALSE(parse_query("avg(packets)").ok());       // unsupported agg
  EXPECT_FALSE(parse_query("sum").ok());                // missing field
  EXPECT_FALSE(parse_query("sum(nosuchfield)").ok());
  EXPECT_FALSE(parse_query("count where").ok());
  EXPECT_FALSE(parse_query("count where packets").ok());
  EXPECT_FALSE(parse_query("count where packets = ").ok());
  EXPECT_FALSE(parse_query("count where packets ! 5").ok());
  EXPECT_FALSE(parse_query("count where packets = 5 garbage").ok());
  EXPECT_FALSE(parse_query("count where src_ip = 1.2.3.4.5").ok());
  EXPECT_FALSE(parse_query("count where (packets = 5").ok());
  EXPECT_FALSE(parse_query("count where packets = 5)").ok());
  EXPECT_FALSE(parse_query("count where packets @ 5").ok());
}

}  // namespace
}  // namespace zkt::core
